//! The recording AVMM.
//!
//! [`Avmm`] wraps a deterministic [`Machine`] and implements the protocol of
//! paper §4.3–§4.4: it answers the guest's clock reads (logging each one),
//! wraps every outgoing packet in a signed, authenticated [`Envelope`],
//! verifies and logs every incoming message before injecting it, emits
//! acknowledgments, takes periodic snapshots and keeps the whole record in a
//! tamper-evident log.

use std::collections::HashMap;

use avm_crypto::keys::{SigningKey, VerifyingKey};
use avm_crypto::sha256::Digest;
use avm_log::{Acknowledgment, Authenticator, EntryKind, TamperEvidentLog};
use avm_vm::devices::InputEvent;
use avm_vm::packet::parse_guest_packet;
use avm_vm::{GuestRegistry, Machine, StopCondition, VmExit, VmImage};
use avm_wire::{Decode, Encode};

use crate::config::AvmmOptions;
use crate::envelope::{Envelope, EnvelopeKind};
use crate::error::CoreError;
use crate::events::{AckRecord, MetaRecord, NdDetail, NdEventRecord, RecvRecord, SendRecord};
use crate::snapshot::{
    capture_with_cache, compute_state_root, SnapshotStore, StateTreeCache, StoredSnapshot,
};

/// The host's clock, in microseconds of simulated real time.
///
/// The runtime advances it; the AVMM samples it to answer guest clock reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostClock {
    now_us: u64,
}

impl HostClock {
    /// Creates a clock at time zero.
    pub fn new() -> HostClock {
        HostClock::default()
    }

    /// Creates a clock at a specific time.
    pub fn at(now_us: u64) -> HostClock {
        HostClock { now_us }
    }

    /// Current time in microseconds.
    pub fn now(&self) -> u64 {
        self.now_us
    }

    /// Advances the clock (time never moves backwards).
    pub fn advance_to(&mut self, now_us: u64) {
        if now_us > self.now_us {
            self.now_us = now_us;
        }
    }
}

/// A message the guest produced, wrapped and ready for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutboundMessage {
    /// The signed envelope to hand to the network.
    pub envelope: Envelope,
    /// Log sequence number of the SEND entry (if the AVMM records).
    pub send_seq: Option<u64>,
}

/// Counters the benchmark harness reads to model CPU and network overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvmmStats {
    /// Clock reads answered (each one a logged nondeterministic input).
    pub clock_reads: u64,
    /// Clock reads that were answered with an artificially delayed value by
    /// the §6.5 optimisation.
    pub clock_reads_delayed: u64,
    /// Guest packets sent.
    pub packets_out: u64,
    /// Guest packets received and injected.
    pub packets_in: u64,
    /// Signatures generated (envelopes, authenticators, acknowledgments).
    pub signatures_made: u64,
    /// Signatures verified on incoming messages and acknowledgments.
    pub signatures_verified: u64,
    /// Snapshots taken.
    pub snapshots_taken: u64,
    /// Guest console bytes produced.
    pub console_bytes: u64,
}

/// The recording accountable virtual machine monitor.
pub struct Avmm {
    name: String,
    machine: Machine,
    image_digest: Digest,
    options: AvmmOptions,
    signing_key: SigningKey,
    peer_keys: HashMap<String, VerifyingKey>,
    log: TamperEvidentLog,
    snapshots: SnapshotStore,
    /// Long-lived Merkle tree over machine state; each snapshot refreshes
    /// only the dirty leaves (O(dirty + log n)) instead of rebuilding.
    state_tree: StateTreeCache,
    outstanding_sends: HashMap<u64, u64>,
    msg_counter: u64,
    entries_at_last_snapshot: u64,
    // Clock-read optimisation state (§6.5).
    last_clock_host: Option<u64>,
    last_clock_value: u64,
    consecutive_clock_reads: u32,
    stats: AvmmStats,
    console: Vec<u8>,
}

impl Avmm {
    /// Creates an AVMM running `image` under the given identity and options.
    ///
    /// The first log entry is a META record committing to the image digest
    /// and configuration.
    pub fn new(
        name: &str,
        image: &VmImage,
        registry: &GuestRegistry,
        signing_key: SigningKey,
        options: AvmmOptions,
    ) -> Result<Avmm, CoreError> {
        let machine = Machine::from_image(image, registry)?;
        let image_digest = image.digest();
        let mut avmm = Avmm {
            name: name.to_string(),
            machine,
            image_digest,
            options,
            signing_key,
            peer_keys: HashMap::new(),
            log: TamperEvidentLog::new(),
            snapshots: SnapshotStore::new(),
            state_tree: StateTreeCache::new(),
            outstanding_sends: HashMap::new(),
            msg_counter: 0,
            entries_at_last_snapshot: 0,
            last_clock_host: None,
            last_clock_value: 0,
            consecutive_clock_reads: 0,
            stats: AvmmStats::default(),
            console: Vec::new(),
        };
        let meta = MetaRecord {
            image_digest,
            node_name: name.to_string(),
            scheme_label: avmm.options.signature_scheme.label(),
        };
        avmm.log.append(EntryKind::Meta, meta.encode_to_vec());
        Ok(avmm)
    }

    /// Rebuilds a live AVMM around state reconstructed by crash recovery:
    /// a machine replayed to the log head, the verified log itself and the
    /// snapshot store rebuilt from durable manifests.
    ///
    /// The private bookkeeping (`outstanding_sends`, message counter,
    /// auto-snapshot cursor, clock monotonicity floor) is itself a pure
    /// function of the log, so it is re-derived here by one scan.  Peer keys
    /// are not logged; callers re-register them via [`Avmm::add_peer`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume(
        name: &str,
        machine: Machine,
        state_tree: StateTreeCache,
        image_digest: Digest,
        signing_key: SigningKey,
        options: AvmmOptions,
        log: TamperEvidentLog,
        snapshots: SnapshotStore,
    ) -> Avmm {
        let mut msg_counter = 0u64;
        let mut outstanding_sends: HashMap<u64, u64> = HashMap::new();
        let mut seq_to_msg: HashMap<u64, u64> = HashMap::new();
        let mut entries_at_last_snapshot = 0u64;
        let mut last_clock_value = 0u64;
        let mut stats = AvmmStats::default();
        for entry in log.entries() {
            match entry.kind {
                EntryKind::Send => {
                    // Message ids are dense in SEND order (see record_send).
                    msg_counter += 1;
                    outstanding_sends.insert(msg_counter, entry.seq);
                    seq_to_msg.insert(entry.seq, msg_counter);
                    stats.packets_out += 1;
                }
                EntryKind::Recv => stats.packets_in += 1,
                EntryKind::Ack => {
                    if let Ok(rec) = AckRecord::decode_exact(&entry.content) {
                        if let Some(msg_id) = seq_to_msg.get(&rec.send_seq) {
                            outstanding_sends.remove(msg_id);
                        }
                    }
                }
                EntryKind::Snapshot => {
                    entries_at_last_snapshot = entry.seq;
                    stats.snapshots_taken += 1;
                }
                EntryKind::NdEvent => {
                    if let Ok(rec) = NdEventRecord::decode_exact(&entry.content) {
                        if let NdDetail::ClockRead { value } = rec.detail {
                            last_clock_value = value;
                            stats.clock_reads += 1;
                        }
                    }
                }
                EntryKind::Meta => {}
            }
        }
        Avmm {
            name: name.to_string(),
            machine,
            image_digest,
            options,
            signing_key,
            peer_keys: HashMap::new(),
            log,
            snapshots,
            state_tree,
            outstanding_sends,
            msg_counter,
            entries_at_last_snapshot,
            last_clock_host: None,
            last_clock_value,
            consecutive_clock_reads: 0,
            stats,
            console: Vec::new(),
        }
    }

    /// The provider's signing key (recovery reuses it for new seals).
    pub(crate) fn signing_key(&self) -> &SigningKey {
        &self.signing_key
    }

    /// Registers a peer's verification key (used to check incoming messages).
    pub fn add_peer(&mut self, name: &str, key: VerifyingKey) {
        self.peer_keys.insert(name.to_string(), key);
    }

    /// This machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This machine's verification key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// The execution log.
    pub fn log(&self) -> &TamperEvidentLog {
        &self.log
    }

    /// The snapshots taken so far.
    pub fn snapshots(&self) -> &SnapshotStore {
        &self.snapshots
    }

    /// Rebases the snapshot chain onto snapshot `id`, dropping older
    /// snapshots and every pooled blob no surviving snapshot references
    /// (bounded retention for long recordings; see
    /// [`SnapshotStore::prune_upto`]).  Returns the payload bytes freed.
    ///
    /// The log is untouched — recorded SNAPSHOT entries for pruned ids stay
    /// tamper-evident; auditors simply can no longer *start* a spot check
    /// before the retained base.
    pub fn prune_snapshots_upto(&mut self, id: u64) -> Result<u64, CoreError> {
        self.snapshots.prune_upto(id)
    }

    /// The wrapped machine (read-only).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the wrapped machine.
    ///
    /// This is the interface a *malicious* operator (Bob) uses to tamper with
    /// the execution — e.g. overwrite guest memory mid-game.  Tests and the
    /// cheat catalogue use it to demonstrate that such tampering is caught by
    /// a subsequent audit.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Digest of the image this AVMM was started from.
    pub fn image_digest(&self) -> Digest {
        self.image_digest
    }

    /// Experiment counters.
    pub fn stats(&self) -> AvmmStats {
        self.stats
    }

    /// Console output the guest has produced so far.
    pub fn console_output(&self) -> &[u8] {
        &self.console
    }

    /// Options in effect.
    pub fn options(&self) -> &AvmmOptions {
        &self.options
    }

    /// Answers one guest clock read, applying the §6.5 optimisation if enabled.
    fn clock_value_for_read(&mut self, clock: &HostClock) -> u64 {
        let host_now = clock.now();
        let mut value = host_now.max(self.last_clock_value);
        if self.options.clock_read_optimization {
            let consecutive = matches!(
                self.last_clock_host,
                Some(prev) if host_now.saturating_sub(prev) < self.options.clock_opt_window_us
            );
            if consecutive {
                self.consecutive_clock_reads += 1;
                // The n-th consecutive read is delayed by 2^(n-2) * base,
                // starting with the second read, capped at the maximum.
                let n = self.consecutive_clock_reads;
                if n >= 2 {
                    let exp = (n - 2).min(20);
                    let delay = self
                        .options
                        .clock_opt_base_delay_us
                        .saturating_mul(1u64 << exp)
                        .min(self.options.clock_opt_max_delay_us);
                    value = value.max(self.last_clock_value.saturating_add(delay));
                    self.stats.clock_reads_delayed += 1;
                }
            } else {
                self.consecutive_clock_reads = 1;
            }
        }
        self.last_clock_host = Some(host_now);
        self.last_clock_value = value;
        value
    }

    /// Runs the guest until it goes idle, halts, or `max_steps` additional
    /// steps have executed; returns the outbound messages it produced.
    pub fn run_slice(
        &mut self,
        clock: &HostClock,
        max_steps: u64,
    ) -> Result<Vec<OutboundMessage>, CoreError> {
        let mut outbound = Vec::new();
        let stop = StopCondition::AtStep(self.machine.step_count().saturating_add(max_steps));
        loop {
            let exit = self.machine.run(stop)?;
            match exit {
                VmExit::ClockRead => {
                    let value = self.clock_value_for_read(clock);
                    let step = self.machine.step_count();
                    let rec = NdEventRecord {
                        step,
                        detail: NdDetail::ClockRead { value },
                    };
                    self.log.append(EntryKind::NdEvent, rec.encode_to_vec());
                    self.machine.provide_clock(value)?;
                    self.stats.clock_reads += 1;
                }
                VmExit::NetTx(payload) => {
                    outbound.push(self.record_send(payload));
                }
                VmExit::ConsoleOut(data) => {
                    self.stats.console_bytes += data.len() as u64;
                    self.console.extend_from_slice(&data);
                }
                VmExit::Idle | VmExit::StepLimit | VmExit::Halted => break,
            }
            self.maybe_auto_snapshot();
        }
        Ok(outbound)
    }

    /// Logs a SEND entry for `payload` and wraps it in a signed envelope.
    fn record_send(&mut self, payload: Vec<u8>) -> OutboundMessage {
        let step = self.machine.step_count();
        let dest = parse_guest_packet(&payload)
            .map(|(d, _)| d)
            .unwrap_or_default();
        self.stats.packets_out += 1;
        self.msg_counter += 1;
        let msg_id = self.msg_counter;

        let rec = SendRecord {
            step,
            dest: dest.clone(),
            payload: payload.clone(),
        };
        let (entry, auth) = if self.options.tamper_evident {
            let (entry, auth) = self.log.append_authenticated(
                EntryKind::Send,
                rec.encode_to_vec(),
                &self.signing_key,
            );
            self.stats.signatures_made += 1;
            (entry.seq, Some(auth))
        } else {
            let seq = self.log.append(EntryKind::Send, rec.encode_to_vec()).seq;
            (seq, None)
        };
        self.outstanding_sends.insert(msg_id, entry);

        let envelope = Envelope::create(
            EnvelopeKind::Data,
            &self.name,
            &dest,
            msg_id,
            payload,
            &self.signing_key,
            auth,
        );
        self.stats.signatures_made += 1;
        OutboundMessage {
            envelope,
            send_seq: Some(entry),
        }
    }

    /// Delivers an incoming envelope.
    ///
    /// For Data envelopes: verifies the sender's signature, logs RECV and the
    /// injection event, injects the payload into the guest NIC, and returns
    /// the acknowledgment envelope to transmit back.  For Ack envelopes:
    /// verifies and logs the acknowledgment.  Challenge traffic is not
    /// handled here (see [`crate::multiparty`]).
    pub fn deliver(&mut self, envelope: &Envelope) -> Result<Option<Envelope>, CoreError> {
        match envelope.kind {
            EnvelopeKind::Data => self.deliver_data(envelope),
            EnvelopeKind::Ack => {
                self.deliver_ack(envelope)?;
                Ok(None)
            }
            EnvelopeKind::Challenge | EnvelopeKind::ChallengeResponse => {
                Err(CoreError::InvalidConfiguration(
                    "challenge traffic must go through the runtime".into(),
                ))
            }
        }
    }

    fn deliver_data(&mut self, envelope: &Envelope) -> Result<Option<Envelope>, CoreError> {
        // Verify the sender's signature if we know the sender; unknown
        // senders are rejected outright when tamper evidence is on.
        if let Some(key) = self.peer_keys.get(&envelope.from) {
            self.stats.signatures_verified += 1;
            envelope
                .verify_signature(key)
                .map_err(|_| CoreError::BadMessageSignature)?;
        } else if self.options.tamper_evident {
            return Err(CoreError::BadMessageSignature);
        }

        let rec = RecvRecord {
            source: envelope.from.clone(),
            payload: envelope.payload.clone(),
            signature: envelope.signature.clone(),
        };
        let payload_hash = rec.payload_hash();
        let recv_entry_seq;
        let recv_auth;
        if self.options.tamper_evident {
            let (entry, auth) = self.log.append_authenticated(
                EntryKind::Recv,
                rec.encode_to_vec(),
                &self.signing_key,
            );
            self.stats.signatures_made += 1;
            recv_entry_seq = entry.seq;
            recv_auth = Some(auth);
        } else {
            recv_entry_seq = self.log.append(EntryKind::Recv, rec.encode_to_vec()).seq;
            recv_auth = None;
        }

        // Inject into the guest (the signature was already stripped: the
        // guest sees only the payload the sender's guest produced).
        let step = self.machine.inject_packet(envelope.payload.clone());
        self.stats.packets_in += 1;
        let nd = NdEventRecord {
            step,
            detail: NdDetail::PacketInjected {
                recv_seq: recv_entry_seq,
                payload_hash,
            },
        };
        self.log.append(EntryKind::NdEvent, nd.encode_to_vec());
        self.maybe_auto_snapshot();

        if !self.options.tamper_evident {
            return Ok(None);
        }
        // Build the acknowledgment carrying our RECV authenticator.
        let auth = recv_auth.expect("tamper evident implies authenticator");
        let ack = Acknowledgment::avmm_ack(&self.signing_key, &envelope.payload, auth);
        self.stats.signatures_made += 1;
        let ack_env = Envelope::ack(
            &self.name,
            &envelope.from,
            envelope.msg_id,
            &ack,
            &self.signing_key,
        );
        self.stats.signatures_made += 1;
        Ok(Some(ack_env))
    }

    fn deliver_ack(&mut self, envelope: &Envelope) -> Result<(), CoreError> {
        let send_seq = self
            .outstanding_sends
            .remove(&envelope.msg_id)
            .ok_or(CoreError::UnknownAck)?;
        if let Some(key) = self.peer_keys.get(&envelope.from) {
            self.stats.signatures_verified += 1;
            envelope
                .verify_signature(key)
                .map_err(|_| CoreError::BadMessageSignature)?;
        }
        if self.options.tamper_evident {
            let rec = AckRecord {
                send_seq,
                ack_bytes: envelope.payload.clone(),
            };
            self.log.append(EntryKind::Ack, rec.encode_to_vec());
        }
        Ok(())
    }

    /// Injects a local input event (keyboard/mouse), logging it as a
    /// nondeterministic input.
    pub fn inject_input(&mut self, event: InputEvent) {
        let step = self.machine.inject_input(event);
        let rec = NdEventRecord {
            step,
            detail: NdDetail::InputInjected { event },
        };
        self.log.append(EntryKind::NdEvent, rec.encode_to_vec());
    }

    /// Message ids for which no acknowledgment has arrived yet.
    pub fn unacknowledged(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.outstanding_sends.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Takes a snapshot now, logging its state root.
    pub fn take_snapshot(&mut self) -> &StoredSnapshot {
        let id = self.snapshots.next_id();
        let snap = capture_with_cache(
            &mut self.machine,
            &mut self.state_tree,
            id,
            self.options.full_memory_snapshots,
        );
        let rec = crate::events::SnapshotRecord {
            step: snap.step,
            snapshot_id: id,
            state_root: snap.state_root,
        };
        self.log.append(EntryKind::Snapshot, rec.encode_to_vec());
        self.stats.snapshots_taken += 1;
        self.entries_at_last_snapshot = self.log.len() as u64;
        self.snapshots.push(snap);
        self.snapshots.get(id).expect("just pushed")
    }

    fn maybe_auto_snapshot(&mut self) {
        if let Some(every) = self.options.snapshot_every_entries {
            if self.log.len() as u64 - self.entries_at_last_snapshot >= every {
                self.take_snapshot();
            }
        }
    }

    /// Authenticator for the current log head (handed to auditors on demand).
    pub fn head_authenticator(&self) -> Option<Authenticator> {
        self.log.authenticate_last(&self.signing_key)
    }

    /// Current state root of the machine (diagnostics and tests).
    pub fn current_state_root(&self) -> Digest {
        compute_state_root(&self.machine)
    }

    /// Total log size in bytes, as it would be stored or transferred.
    pub fn log_bytes(&self) -> u64 {
        self.log.total_wire_size()
    }
}

impl core::fmt::Debug for Avmm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Avmm")
            .field("name", &self.name)
            .field("log_entries", &self.log.len())
            .field("step_count", &self.machine.step_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_crypto::keys::SignatureScheme;
    use avm_vm::bytecode::assemble;
    use avm_vm::packet::encode_guest_packet;
    use avm_wire::Decode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A guest that reads the clock, then echoes every received packet back
    /// to a peer named "peer".
    fn echo_image() -> VmImage {
        // Packet layout used by the guest: it simply re-sends whatever it
        // received (which already carries an addressing header).
        let src = r"
                movi r1, 0x8000
                movi r2, 512
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                send r1, r0
                jmp loop
            ";
        let code = assemble(src, 0).unwrap();
        VmImage::bytecode("echo", 128 * 1024, code, 0, 0)
    }

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn opts() -> AvmmOptions {
        AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512))
    }

    #[test]
    fn meta_entry_written_at_startup() {
        let avmm = Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        assert_eq!(avmm.log().len(), 1);
        let entry = avmm.log().entry(1).unwrap();
        assert_eq!(entry.kind, EntryKind::Meta);
        let meta = MetaRecord::decode_exact(&entry.content).unwrap();
        assert_eq!(meta.image_digest, echo_image().digest());
        assert_eq!(meta.node_name, "bob");
    }

    #[test]
    fn clock_reads_are_logged_with_steps() {
        let mut avmm =
            Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        let clock = HostClock::at(1_000);
        avmm.run_slice(&clock, 10_000).unwrap();
        assert!(avmm.stats().clock_reads >= 1);
        let nd_entries: Vec<_> = avmm
            .log()
            .entries()
            .iter()
            .filter(|e| e.kind == EntryKind::NdEvent)
            .collect();
        assert!(!nd_entries.is_empty());
        let rec = NdEventRecord::decode_exact(&nd_entries[0].content).unwrap();
        assert!(matches!(rec.detail, NdDetail::ClockRead { value: 1_000 }));
        assert!(rec.step > 0);
    }

    #[test]
    fn deliver_and_echo_produces_send_entry_and_ack() {
        let alice_key = key(2);
        let mut bob =
            Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());

        let clock = HostClock::at(500);
        bob.run_slice(&clock, 10_000).unwrap();

        // Alice sends a message addressed back to her.
        let payload = encode_guest_packet("alice", b"hello bob");
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            1,
            payload.clone(),
            &alice_key,
            None,
        );
        let ack = bob.deliver(&env).unwrap().expect("ack expected");
        assert_eq!(ack.kind, EnvelopeKind::Ack);
        assert_eq!(ack.to, "alice");
        let decoded_ack = ack.decode_ack().unwrap();
        decoded_ack.verify(&bob.verifying_key(), &payload).unwrap();

        // The guest echoes the packet on its next slice.
        let out = bob.run_slice(&clock, 50_000).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].envelope.payload, payload);
        assert_eq!(out[0].envelope.to, "alice");
        out[0]
            .envelope
            .verify_signature(&bob.verifying_key())
            .unwrap();
        let auth = out[0]
            .envelope
            .authenticator
            .as_ref()
            .expect("authenticator");
        auth.verify_signature(&bob.verifying_key()).unwrap();

        // Log now contains META, NDEVENT(s), RECV, NDEVENT(inject), SEND ...
        let kinds: Vec<EntryKind> = bob.log().entries().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EntryKind::Recv));
        assert!(kinds.contains(&EntryKind::Send));
        assert!(bob.stats().packets_in == 1 && bob.stats().packets_out == 1);
        assert_eq!(bob.unacknowledged().len(), 1);
    }

    #[test]
    fn bad_sender_signature_rejected() {
        let alice_key = key(2);
        let mallory_key = key(3);
        let mut bob =
            Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        // Mallory forges a message claiming to be from alice.
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            1,
            encode_guest_packet("alice", b"forged"),
            &mallory_key,
            None,
        );
        assert_eq!(
            bob.deliver(&env).unwrap_err(),
            CoreError::BadMessageSignature
        );
        // Unknown senders are rejected too.
        let env2 = Envelope::create(
            EnvelopeKind::Data,
            "unknown",
            "bob",
            1,
            vec![],
            &mallory_key,
            None,
        );
        assert_eq!(
            bob.deliver(&env2).unwrap_err(),
            CoreError::BadMessageSignature
        );
    }

    #[test]
    fn ack_handling_clears_outstanding_sends() {
        let alice_key = key(2);
        let mut bob =
            Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let clock = HostClock::new();
        bob.run_slice(&clock, 10_000).unwrap();
        let payload = encode_guest_packet("alice", b"x");
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            1,
            payload,
            &alice_key,
            None,
        );
        bob.deliver(&env).unwrap();
        let out = bob.run_slice(&clock, 50_000).unwrap();
        assert_eq!(out.len(), 1);
        let msg_id = out[0].envelope.msg_id;

        // Alice acknowledges.
        let ack = Acknowledgment::user_ack(&alice_key, &out[0].envelope.payload);
        let ack_env = Envelope::ack("alice", "bob", msg_id, &ack, &alice_key);
        bob.deliver(&ack_env).unwrap();
        assert!(bob.unacknowledged().is_empty());
        // A duplicate / unknown ack is rejected.
        assert_eq!(bob.deliver(&ack_env).unwrap_err(), CoreError::UnknownAck);
        // An ACK entry was logged.
        assert!(bob.log().entries().iter().any(|e| e.kind == EntryKind::Ack));
    }

    #[test]
    fn input_injection_logged() {
        let mut bob =
            Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        bob.inject_input(InputEvent {
            device: 0,
            code: 17,
            value: 1,
        });
        let nd = bob
            .log()
            .entries()
            .iter()
            .rfind(|e| e.kind == EntryKind::NdEvent)
            .unwrap();
        let rec = NdEventRecord::decode_exact(&nd.content).unwrap();
        assert!(matches!(rec.detail, NdDetail::InputInjected { .. }));
    }

    #[test]
    fn snapshots_record_state_root() {
        let mut bob =
            Avmm::new("bob", &echo_image(), &GuestRegistry::new(), key(1), opts()).unwrap();
        let clock = HostClock::new();
        bob.run_slice(&clock, 5_000).unwrap();
        let root_before = bob.current_state_root();
        let snap = bob.take_snapshot();
        assert_eq!(snap.state_root, root_before);
        assert_eq!(bob.snapshots().len(), 1);
        assert_eq!(bob.stats().snapshots_taken, 1);
        let entry = bob.log().entries().last().unwrap();
        assert_eq!(entry.kind, EntryKind::Snapshot);
    }

    #[test]
    fn auto_snapshot_interval_respected() {
        let mut bob = Avmm::new(
            "bob",
            &echo_image(),
            &GuestRegistry::new(),
            key(1),
            opts().with_snapshot_every(3),
        )
        .unwrap();
        let clock = HostClock::new();
        // Each slice logs at least one clock read; after enough entries a
        // snapshot should appear automatically.
        for t in 0..12 {
            bob.run_slice(&HostClock::at(clock.now() + t * 100), 5_000)
                .unwrap();
        }
        assert!(bob.stats().snapshots_taken >= 1);
    }

    #[test]
    fn clock_optimization_reduces_logged_reads() {
        // Without optimisation the busy-wait guest logs one entry per read;
        // with it, consecutive reads jump forward exponentially.
        let busy_image = {
            // Busy-wait until the clock reaches 100_000 µs, then halt.
            let src = r"
                    movi r2, 100000
                wait:
                    clock r1
                    cmp r1, r2
                    jlt wait
                    halt
                ";
            let code = assemble(src, 0).unwrap();
            VmImage::bytecode("busy", 64 * 1024, code, 0, 0)
        };
        let run = |optimize: bool| -> u64 {
            let options = if optimize {
                opts().with_clock_optimization()
            } else {
                opts()
            };
            let mut avmm =
                Avmm::new("bob", &busy_image, &GuestRegistry::new(), key(1), options).unwrap();
            // Host time stands nearly still, like a tight busy-wait loop.
            let clock = HostClock::at(10);
            for _ in 0..200 {
                avmm.run_slice(&clock, 2_000).unwrap();
                if avmm.machine().is_halted() {
                    break;
                }
            }
            avmm.stats().clock_reads
        };
        let unoptimized = run(false);
        let optimized = run(true);
        assert!(
            optimized < unoptimized / 5,
            "optimized={optimized} unoptimized={unoptimized}"
        );
    }
}
