//! The accountable virtual machine monitor (AVMM).
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Haeberlen, Aditya, Rodrigues, Druschel: *Accountable Virtual Machines*,
//! OSDI 2010): a virtual machine monitor that
//!
//! 1. executes a guest inside a deterministic virtual machine (`avm-vm`),
//! 2. records every nondeterministic input, stamped with its position in the
//!    instruction stream, in a tamper-evident log (`avm-log`),
//! 3. signs every outgoing network message and attaches an authenticator — a
//!    signed commitment to the log prefix — so the log cannot later be
//!    rewritten, and
//! 4. lets any auditor with a reference copy of the VM image verify the log
//!    *syntactically* (hash chain + authenticators + acknowledgments) and
//!    *semantically* (deterministic replay), producing transferable evidence
//!    when the two disagree.
//!
//! Module map:
//!
//! * [`attest`] — accountable attestation: building/serving the launch
//!   envelopes of `avm-attest` for a recording AVMM, and the auditor's
//!   [`attest::LaunchPolicy`] verifying them before spot checks begin.
//! * [`config`] — the five measurement configurations of the paper's
//!   evaluation (bare-hw … avmm-rsa768) and the AVMM options.
//! * [`events`] — the content formats of log entries (clock reads, packet
//!   injections, send/receive records, snapshot records).
//! * [`envelope`] — the signed, authenticated wire format exchanged between
//!   machines.
//! * [`recorder`] — the recording AVMM ([`recorder::Avmm`]).
//! * [`snapshot`] — incremental snapshots with Merkle roots, stored
//!   content-addressed ([`snapshot::SnapshotStore`]).
//! * [`replay`] — the deterministic replayer (semantic check).
//! * [`audit`] — the audit tool combining the syntactic and semantic checks,
//!   and the evidence objects third parties can verify.
//! * [`spotcheck`] — partial audits of `k`-chunks between snapshots (§3.5,
//!   §6.12).
//! * [`ondemand`] — the digest-addressed snapshot transfer protocol and
//!   on-demand partial-state replay ("request the parts of the state that
//!   are accessed", §3.5).
//! * [`endpoint`] — the auditor/provider endpoints ([`endpoint::AuditClient`]
//!   / [`endpoint::AuditServer`]) speaking the audit protocol of
//!   [`avm_wire::audit`] over pluggable transports: in-process and
//!   RTT-modelled ([`endpoint::DirectTransport`]) or over the simulated
//!   network with retransmission ([`endpoint::SimNetTransport`]).
//! * [`fleet`] — fleet-scale auditing: the sessionful [`fleet::ProviderNode`]
//!   serving N concurrent [`fleet::FleetAuditor`] sessions over one shared
//!   simulated network, with round-robin scheduling, a shared response cache
//!   and idle-session expiry.
//! * [`paraudit`] — segment-parallel audit replay (§6): partition a chunk
//!   at its snapshot boundaries, replay the units concurrently on the
//!   [`avm_crypto::parallel`] pool, merge to the serial verdict.
//! * [`online`] — online (concurrent-with-execution) auditing (§6.11).
//! * [`multiparty`] — authenticator collection, the challenge protocol and
//!   evidence distribution for multi-party scenarios (§4.6).
//! * [`runtime`] — a host runtime tying AVMM nodes to the simulated network,
//!   with acknowledgment handling and retransmission.
//!
//! # Quickstart: record an accountable execution and audit it
//!
//! Bob runs a guest everyone has agreed on; Alice exchanges a message with
//! it and then audits Bob's log against the reference image (a compact
//! version of `examples/quickstart.rs`):
//!
//! ```
//! use avm_core::audit::audit_log;
//! use avm_core::config::AvmmOptions;
//! use avm_core::envelope::{Envelope, EnvelopeKind};
//! use avm_core::recorder::{Avmm, HostClock};
//! use avm_crypto::keys::{Identity, SignatureScheme};
//! use avm_vm::bytecode::assemble;
//! use avm_vm::packet::encode_guest_packet;
//! use avm_vm::{GuestRegistry, VmImage};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1. The agreed-upon software: a tiny guest that echoes every packet.
//! let source = r"
//!         movi r1, 0x8000
//!         movi r2, 512
//!     loop:
//!         clock r4
//!         recv r0, r1, r2
//!         cmp r0, r6
//!         jne got
//!         idle
//!         jmp loop
//!     got:
//!         send r1, r0
//!         jmp loop
//!     ";
//! let image = VmImage::bytecode("echo", 128 * 1024, assemble(source, 0).unwrap(), 0, 0);
//! let registry = GuestRegistry::new();
//!
//! // 2. Identities: Bob operates the machine, Alice uses and audits it.
//! let mut rng = StdRng::seed_from_u64(42);
//! let bob = Identity::generate(&mut rng, "bob", SignatureScheme::Rsa(512));
//! let alice = Identity::generate(&mut rng, "alice", SignatureScheme::Rsa(512));
//!
//! // 3. Bob starts an AVMM around the image; it logs every
//! //    nondeterministic input and signs every outgoing message.
//! let opts = AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512));
//! let mut avmm = Avmm::new("bob", &image, &registry, bob.signing_key.clone(), opts).unwrap();
//! avmm.add_peer("alice", alice.verifying_key());
//!
//! // 4. Alice sends a request; Bob's AVMM logs, acknowledges and the guest
//! //    echoes it back inside a signed envelope.
//! let mut clock = HostClock::at(1_000);
//! avmm.run_slice(&clock, 20_000).unwrap();
//! let payload = encode_guest_packet("alice", b"request");
//! let env = Envelope::create(EnvelopeKind::Data, "alice", "bob", 1, payload,
//!                            &alice.signing_key, None);
//! let ack = avmm.deliver(&env).unwrap().expect("ack");
//! assert_eq!(ack.kind, EnvelopeKind::Ack);
//! let echoed = avmm.run_slice(&clock, 100_000).unwrap();
//! assert_eq!(echoed.len(), 1);
//!
//! // 5. Alice audits Bob: syntactic check (hash chain + signatures) plus
//! //    deterministic replay against the reference image.
//! let (prev, segment) = avmm.log().segment(1, avmm.log().len() as u64).unwrap();
//! let report = audit_log("bob", &prev, &segment, &[], &bob.verifying_key(),
//!                        &image, &registry);
//! assert!(report.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod audit;
pub mod config;
pub mod endpoint;
pub mod envelope;
pub mod error;
pub mod events;
pub mod fleet;
pub mod multiparty;
pub mod ondemand;
pub mod online;
pub mod paraudit;
pub mod persist;
pub mod recorder;
pub mod replay;
pub mod runtime;
pub mod snapshot;
pub mod spotcheck;
#[cfg(test)]
pub(crate) mod testutil;

pub use attest::{build_envelope, challenge_nonce, expected_launch, Attestor, LaunchPolicy};
pub use audit::{audit_log, AuditOutcome, AuditReport, Evidence};
pub use config::{AvmmOptions, ExecConfig};
pub use endpoint::{
    AuditClient, AuditServer, AuditTransport, DirectTransport, SimNetTransport, TransportStats,
};
pub use envelope::{Envelope, EnvelopeKind};
pub use error::{CoreError, FaultReason};
pub use events::{NdDetail, NdEventRecord, RecvRecord, SendRecord, SnapshotRecord};
pub use ondemand::{
    dedup_transfer_upto, fetch_blobs, fetch_blobs_with, materialize_on_demand,
    materialize_with_manifest, AuditorBlobCache, BlobProvider, ChainManifest, DedupTransfer,
    OnDemandCost, OnDemandSession,
};
pub use persist::{PersistConfig, PersistError, Provider, RecoveryReport, SnapshotManifest};
pub use recorder::{Avmm, HostClock, OutboundMessage};
pub use replay::{ReplayOutcome, Replayer};
pub use snapshot::{Snapshot, SnapshotStore, StoredSnapshot, TransferCost};
