//! The accountable virtual machine monitor (AVMM).
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Haeberlen, Aditya, Rodrigues, Druschel: *Accountable Virtual Machines*,
//! OSDI 2010): a virtual machine monitor that
//!
//! 1. executes a guest inside a deterministic virtual machine (`avm-vm`),
//! 2. records every nondeterministic input, stamped with its position in the
//!    instruction stream, in a tamper-evident log (`avm-log`),
//! 3. signs every outgoing network message and attaches an authenticator — a
//!    signed commitment to the log prefix — so the log cannot later be
//!    rewritten, and
//! 4. lets any auditor with a reference copy of the VM image verify the log
//!    *syntactically* (hash chain + authenticators + acknowledgments) and
//!    *semantically* (deterministic replay), producing transferable evidence
//!    when the two disagree.
//!
//! Module map:
//!
//! * [`config`] — the five measurement configurations of the paper's
//!   evaluation (bare-hw … avmm-rsa768) and the AVMM options.
//! * [`events`] — the content formats of log entries (clock reads, packet
//!   injections, send/receive records, snapshot records).
//! * [`envelope`] — the signed, authenticated wire format exchanged between
//!   machines.
//! * [`recorder`] — the recording AVMM ([`recorder::Avmm`]).
//! * [`snapshot`] — incremental snapshots with Merkle roots.
//! * [`replay`] — the deterministic replayer (semantic check).
//! * [`audit`] — the audit tool combining the syntactic and semantic checks,
//!   and the evidence objects third parties can verify.
//! * [`spotcheck`] — partial audits of `k`-chunks between snapshots (§3.5,
//!   §6.12).
//! * [`online`] — online (concurrent-with-execution) auditing (§6.11).
//! * [`multiparty`] — authenticator collection, the challenge protocol and
//!   evidence distribution for multi-party scenarios (§4.6).
//! * [`runtime`] — a host runtime tying AVMM nodes to the simulated network,
//!   with acknowledgment handling and retransmission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod envelope;
pub mod error;
pub mod events;
pub mod multiparty;
pub mod online;
pub mod recorder;
pub mod replay;
pub mod runtime;
pub mod snapshot;
pub mod spotcheck;

pub use audit::{audit_log, AuditOutcome, AuditReport, Evidence};
pub use config::{AvmmOptions, ExecConfig};
pub use envelope::{Envelope, EnvelopeKind};
pub use error::{CoreError, FaultReason};
pub use events::{NdDetail, NdEventRecord, RecvRecord, SendRecord, SnapshotRecord};
pub use recorder::{Avmm, HostClock, OutboundMessage};
pub use replay::{ReplayOutcome, Replayer};
pub use snapshot::{Snapshot, SnapshotStore, StoredSnapshot, TransferCost};
