//! Content formats of AVMM log entries.
//!
//! The tamper-evident log carries "two parallel streams of information:
//! message exchanges and nondeterministic inputs" (paper §4.4).  This module
//! defines the byte-level content (`c_i`) of every entry type the recorder
//! writes, plus the classification used to reproduce the log-composition
//! breakdown of Figure 4 (TimeTracker vs MAC-layer vs other vs
//! tamper-evident overhead).

use avm_crypto::sha256::{sha256, Digest};
use avm_log::EntryKind;
use avm_vm::devices::InputEvent;
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// Content of a SEND entry: an outgoing message and the instruction-stream
/// position at which the guest emitted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendRecord {
    /// Machine step count when the packet left the guest.
    pub step: u64,
    /// Destination node name (application-level addressing).
    pub dest: String,
    /// Packet payload exactly as the guest produced it.
    pub payload: Vec<u8>,
}

impl Encode for SendRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.step);
        w.put_str(&self.dest);
        w.put_bytes(&self.payload);
    }
}

impl Decode for SendRecord {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(SendRecord {
            step: r.get_varint()?,
            dest: r.get_string()?,
            payload: r.get_bytes()?.to_vec(),
        })
    }
}

/// Content of a RECV entry: an incoming message, logged together with the
/// sender's signature (which the AVMM strips before injection, §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvRecord {
    /// Name of the sending node.
    pub source: String,
    /// Message payload.
    pub payload: Vec<u8>,
    /// The sender's signature over the message.
    pub signature: Vec<u8>,
}

impl RecvRecord {
    /// Hash of the payload, used to cross-reference the later injection.
    pub fn payload_hash(&self) -> Digest {
        sha256(&self.payload)
    }
}

impl Encode for RecvRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.source);
        w.put_bytes(&self.payload);
        w.put_bytes(&self.signature);
    }
}

impl Decode for RecvRecord {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(RecvRecord {
            source: r.get_string()?,
            payload: r.get_bytes()?.to_vec(),
            signature: r.get_bytes()?.to_vec(),
        })
    }
}

/// Content of an ACK entry: the acknowledgment we received for one of our
/// SEND entries (the auditor checks that every message was acknowledged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckRecord {
    /// Sequence number of the SEND entry being acknowledged.
    pub send_seq: u64,
    /// The peer's acknowledgment, encoded.
    pub ack_bytes: Vec<u8>,
}

impl Encode for AckRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.send_seq);
        w.put_bytes(&self.ack_bytes);
    }
}

impl Decode for AckRecord {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(AckRecord {
            send_seq: r.get_varint()?,
            ack_bytes: r.get_bytes()?.to_vec(),
        })
    }
}

/// The nondeterministic input classes the AVMM records (paper §4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdDetail {
    /// The guest read the virtual clock and was given `value`
    /// (the paper's `TimeTracker` entries).
    ClockRead {
        /// Microsecond value delivered to the guest.
        value: u64,
    },
    /// A received message was injected into the guest NIC.  Cross-references
    /// the RECV entry so forged injections are detectable.
    PacketInjected {
        /// Sequence number of the corresponding RECV entry.
        recv_seq: u64,
        /// Hash of the injected payload (must equal the RECV payload hash).
        payload_hash: Digest,
    },
    /// A local input event (keyboard/mouse) was injected.
    InputInjected {
        /// The injected event.
        event: InputEvent,
    },
}

/// Content of an NDEVENT entry: one nondeterministic input with its
/// instruction-stream position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdEventRecord {
    /// Machine step count at which the input was (or will be) visible to the
    /// guest.
    pub step: u64,
    /// What was injected.
    pub detail: NdDetail,
}

impl Encode for NdEventRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.step);
        match &self.detail {
            NdDetail::ClockRead { value } => {
                w.put_u8(1);
                w.put_varint(*value);
            }
            NdDetail::PacketInjected {
                recv_seq,
                payload_hash,
            } => {
                w.put_u8(2);
                w.put_varint(*recv_seq);
                w.put_raw(payload_hash.as_bytes());
            }
            NdDetail::InputInjected { event } => {
                w.put_u8(3);
                event.encode(w);
            }
        }
    }
}

impl Decode for NdEventRecord {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let step = r.get_varint()?;
        let tag = r.get_u8()?;
        let detail = match tag {
            1 => NdDetail::ClockRead {
                value: r.get_varint()?,
            },
            2 => NdDetail::PacketInjected {
                recv_seq: r.get_varint()?,
                payload_hash: Digest::from_slice(r.get_raw(32)?)
                    .ok_or(WireError::Corrupt("digest"))?,
            },
            3 => NdDetail::InputInjected {
                event: InputEvent::decode(r)?,
            },
            other => {
                return Err(WireError::InvalidTag {
                    what: "NdDetail",
                    tag: other as u64,
                })
            }
        };
        Ok(NdEventRecord { step, detail })
    }
}

/// Content of a SNAPSHOT entry: the top-level hash of the AVM state at a
/// given point, recorded so auditors can verify downloaded snapshots and so
/// replay can be checked mid-stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Machine step count at which the snapshot was taken.
    pub step: u64,
    /// Snapshot identifier (dense, starting at 0).
    pub snapshot_id: u64,
    /// Merkle root over the AVM state (memory pages, disk blocks, CPU and
    /// device state).
    pub state_root: Digest,
}

impl Encode for SnapshotRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.step);
        w.put_varint(self.snapshot_id);
        w.put_raw(self.state_root.as_bytes());
    }
}

impl Decode for SnapshotRecord {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(SnapshotRecord {
            step: r.get_varint()?,
            snapshot_id: r.get_varint()?,
            state_root: Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?,
        })
    }
}

/// Content of the initial META entry: which image this execution claims to
/// run, under which configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaRecord {
    /// Digest of the VM image.
    pub image_digest: Digest,
    /// Name of the machine/owner.
    pub node_name: String,
    /// Label of the signature scheme in use.
    pub scheme_label: String,
}

impl Encode for MetaRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self.image_digest.as_bytes());
        w.put_str(&self.node_name);
        w.put_str(&self.scheme_label);
    }
}

impl Decode for MetaRecord {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(MetaRecord {
            image_digest: Digest::from_slice(r.get_raw(32)?).ok_or(WireError::Corrupt("digest"))?,
            node_name: r.get_string()?,
            scheme_label: r.get_string()?,
        })
    }
}

/// Log-content classes used by the Figure 4 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryClass {
    /// Clock/timing entries (the paper's `TimeTracker`, ~59% of the log).
    TimeTracker,
    /// Network packet payloads entering or leaving the AVM (~14%).
    MacLayer,
    /// Everything else needed for replay (other nondeterministic events,
    /// snapshots, metadata).
    Other,
    /// Data only needed for tamper evidence (acknowledgments; the harness
    /// additionally accounts authenticators and signatures here).
    TamperEvident,
}

impl EntryClass {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EntryClass::TimeTracker => "timetracker",
            EntryClass::MacLayer => "mac-layer",
            EntryClass::Other => "other",
            EntryClass::TamperEvident => "tamper-evident",
        }
    }
}

/// Classifies a log entry for the Figure 4 breakdown.
pub fn classify_entry(kind: EntryKind, content: &[u8]) -> EntryClass {
    match kind {
        EntryKind::NdEvent => match NdEventRecord::decode_exact(content) {
            Ok(rec) => match rec.detail {
                NdDetail::ClockRead { .. } => EntryClass::TimeTracker,
                NdDetail::PacketInjected { .. } => EntryClass::MacLayer,
                NdDetail::InputInjected { .. } => EntryClass::Other,
            },
            Err(_) => EntryClass::Other,
        },
        EntryKind::Send | EntryKind::Recv => EntryClass::MacLayer,
        EntryKind::Ack => EntryClass::TamperEvident,
        EntryKind::Snapshot | EntryKind::Meta => EntryClass::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_record_roundtrip() {
        let rec = SendRecord {
            step: 12345,
            dest: "bob".into(),
            payload: vec![1, 2, 3],
        };
        assert_eq!(SendRecord::decode_exact(&rec.encode_to_vec()).unwrap(), rec);
    }

    #[test]
    fn recv_record_roundtrip_and_hash() {
        let rec = RecvRecord {
            source: "alice".into(),
            payload: b"hello".to_vec(),
            signature: vec![9; 64],
        };
        assert_eq!(RecvRecord::decode_exact(&rec.encode_to_vec()).unwrap(), rec);
        assert_eq!(rec.payload_hash(), sha256(b"hello"));
    }

    #[test]
    fn ack_record_roundtrip() {
        let rec = AckRecord {
            send_seq: 88,
            ack_bytes: vec![1, 2, 3, 4],
        };
        assert_eq!(AckRecord::decode_exact(&rec.encode_to_vec()).unwrap(), rec);
    }

    #[test]
    fn nd_event_variants_roundtrip() {
        let records = vec![
            NdEventRecord {
                step: 1,
                detail: NdDetail::ClockRead { value: 5_000_000 },
            },
            NdEventRecord {
                step: 2,
                detail: NdDetail::PacketInjected {
                    recv_seq: 7,
                    payload_hash: sha256(b"pkt"),
                },
            },
            NdEventRecord {
                step: 3,
                detail: NdDetail::InputInjected {
                    event: InputEvent {
                        device: 0,
                        code: 32,
                        value: 1,
                    },
                },
            },
        ];
        for rec in records {
            assert_eq!(
                NdEventRecord::decode_exact(&rec.encode_to_vec()).unwrap(),
                rec
            );
        }
    }

    #[test]
    fn invalid_nd_tag_rejected() {
        let rec = NdEventRecord {
            step: 1,
            detail: NdDetail::ClockRead { value: 3 },
        };
        let mut bytes = rec.encode_to_vec();
        bytes[1] = 9;
        assert!(NdEventRecord::decode_exact(&bytes).is_err());
    }

    #[test]
    fn snapshot_and_meta_roundtrip() {
        let s = SnapshotRecord {
            step: 500,
            snapshot_id: 3,
            state_root: sha256(b"root"),
        };
        assert_eq!(SnapshotRecord::decode_exact(&s.encode_to_vec()).unwrap(), s);
        let m = MetaRecord {
            image_digest: sha256(b"image"),
            node_name: "bob".into(),
            scheme_label: "rsa768".into(),
        };
        assert_eq!(MetaRecord::decode_exact(&m.encode_to_vec()).unwrap(), m);
    }

    #[test]
    fn classification_matches_figure4_categories() {
        let clock = NdEventRecord {
            step: 1,
            detail: NdDetail::ClockRead { value: 1 },
        };
        assert_eq!(
            classify_entry(EntryKind::NdEvent, &clock.encode_to_vec()),
            EntryClass::TimeTracker
        );
        let pkt = NdEventRecord {
            step: 1,
            detail: NdDetail::PacketInjected {
                recv_seq: 1,
                payload_hash: sha256(b"x"),
            },
        };
        assert_eq!(
            classify_entry(EntryKind::NdEvent, &pkt.encode_to_vec()),
            EntryClass::MacLayer
        );
        assert_eq!(classify_entry(EntryKind::Send, &[]), EntryClass::MacLayer);
        assert_eq!(classify_entry(EntryKind::Recv, &[]), EntryClass::MacLayer);
        assert_eq!(
            classify_entry(EntryKind::Ack, &[]),
            EntryClass::TamperEvident
        );
        assert_eq!(classify_entry(EntryKind::Meta, &[]), EntryClass::Other);
        assert_eq!(
            classify_entry(EntryKind::NdEvent, &[255]),
            EntryClass::Other
        );
        assert_eq!(EntryClass::TimeTracker.label(), "timetracker");
    }
}
