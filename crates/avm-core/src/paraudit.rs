//! Segment-parallel audit replay — the paper's multicore claim (§6).
//!
//! "Since the log segments between snapshots can be replayed independently,
//! the auditor can replay different segments in parallel on multiple cores."
//! A §3.5 chunk downloaded for a spot check already carries its own
//! partition: every SNAPSHOT entry inside the chunk is a point whose state
//! the auditor can reconstruct and whose recorded root the previous segment
//! verifies.  This module cuts the chunk at those boundaries into
//! independent `(start snapshot, segment)` **replay units**, executes them
//! concurrently on the generalized [`avm_crypto::parallel`] worker pool,
//! and merges the per-unit outcomes into exactly the verdict, fault and
//! progress counters a serial replay of the whole chunk produces.
//!
//! Field-identity with the serial path is not best-effort — it is the
//! contract (pinned by unit and property tests):
//!
//! * **Units start root-pinned.**  An interior unit's machine materializes
//!   from the accounting plane (the same [`SnapshotStore`] the serial check
//!   materializes its *start* snapshot from) and its state root is compared
//!   against the root the log records at that boundary *before* any unit
//!   runs.  A mismatch — a store whose snapshot diverges from what the log
//!   claims — falls back to full serial replay, so the adversarial case
//!   where serial replay would have passed (or faulted elsewhere) cannot
//!   produce a divergent parallel verdict.
//! * **Cross-segment context is preserved.**  Each unit pre-seeds its RECV
//!   cross-reference table from the chunk entries before its range
//!   ([`Replayer::preload_recvs`]), so an injection referencing a RECV from
//!   an earlier segment resolves exactly as it does serially.
//! * **Fault attribution is deterministic.**  The lowest-index faulting
//!   unit wins; counters merge as the sum of every earlier unit's full
//!   progress plus the faulting unit's truthful partial progress — the
//!   same totals the serial replayer reports, because units chain
//!   end-step to start-step at verified snapshot boundaries.
//!
//! [`ReplayCpuModel`] prices replay CPU in simulated microseconds the same
//! way [`avm_wire::RttModel`] prices round trips: deterministic modelled
//! time, calibrated from measurement by the benchmarks, so pipelined-fetch
//! experiments ([`crate::fleet`]) can overlap wire wait with replay work on
//! a simulated clock.

use std::time::Instant;

use avm_crypto::parallel::global_pool;
use avm_crypto::sha256::Digest;
use avm_log::LogEntry;
use avm_vm::{GuestRegistry, VmImage};

use crate::error::{CoreError, FaultReason};
use crate::replay::{ReplayOutcome, ReplaySummary, Replayer};
use crate::snapshot::SnapshotStore;
use crate::spotcheck::snapshot_positions_in;

/// One independent replay unit of a partitioned chunk: a contiguous entry
/// range and the snapshot it starts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayUnit {
    /// Entry range within the chunk (`range.end` exclusive).
    pub range: core::ops::Range<usize>,
    /// `None`: the unit starts from the chunk's start snapshot (unit 0).
    /// `Some((id, root))`: the unit starts from an interior snapshot whose
    /// SNAPSHOT entry (the last entry of the previous unit) records `root`.
    pub boundary: Option<(u64, Digest)>,
}

/// Cuts a downloaded chunk at its interior snapshot boundaries.
///
/// `positions` must be [`snapshot_positions_in`] of `entries`.  A SNAPSHOT
/// entry ends the unit containing it (the unit replays and verifies it);
/// the next unit starts from that snapshot.  A SNAPSHOT entry that is the
/// chunk's last entry closes the chunk and opens nothing.  A chunk with no
/// interior snapshots (k=1, or a trailing open chunk) is one unit — the
/// serial case.
pub fn partition_chunk(
    entries: &[LogEntry],
    positions: &[(usize, u64, Digest)],
) -> Vec<ReplayUnit> {
    if entries.is_empty() {
        return Vec::new();
    }
    let mut units = Vec::new();
    let mut start = 0usize;
    let mut boundary = None;
    for &(pos, id, root) in positions {
        if pos + 1 >= entries.len() {
            break; // closes the chunk; nothing follows
        }
        units.push(ReplayUnit {
            range: start..pos + 1,
            boundary,
        });
        start = pos + 1;
        boundary = Some((id, root));
    }
    units.push(ReplayUnit {
        range: start..entries.len(),
        boundary,
    });
    units
}

/// How a parallel chunk replay executed — telemetry beside the merged
/// verdict (never part of the field-identity contract).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParallelReplayStats {
    /// Replay units the chunk partitioned into (1 = serial case).
    pub units: usize,
    /// Concurrent lanes the units were distributed over (≤ requested
    /// workers; the calling thread drives lane 0).
    pub lanes: usize,
    /// True when a boundary precondition failed (an interior snapshot that
    /// does not materialize, or materializes to a root other than the log
    /// records) and the whole chunk was replayed serially instead.
    pub fell_back_serial: bool,
    /// Measured replay CPU per unit, in µs, unit order — the makespan
    /// inputs for modelling wall time at other worker counts.
    pub unit_cpu_micros: Vec<u64>,
}

/// Merged outcome of a (possibly parallel) chunk replay: exactly the
/// verdict/fault/progress triple the serial replayer yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkReplayOutcome {
    /// True when every unit replayed consistently.
    pub consistent: bool,
    /// The lowest-index fault, if any.
    pub fault: Option<FaultReason>,
    /// Merged progress counters (truthful partial progress on a fault).
    pub progress: ReplaySummary,
    /// Execution telemetry.
    pub stats: ParallelReplayStats,
}

/// Outcome of one replay unit, in unit order.
struct UnitResult {
    fault: Option<FaultReason>,
    summary: ReplaySummary,
    cpu_micros: u64,
}

/// One lane's boxed work: replays its contiguous run of units and returns
/// `(unit index, result)` pairs.
type LaneTask = Box<dyn FnOnce() -> Vec<(usize, UnitResult)> + Send>;

fn run_unit(mut replayer: Replayer, entries: Vec<LogEntry>) -> UnitResult {
    let started = Instant::now();
    let fault = match replayer.replay(&entries) {
        ReplayOutcome::Consistent(_) => None,
        ReplayOutcome::Fault(f) => Some(f),
    };
    UnitResult {
        fault,
        summary: replayer.summary(),
        cpu_micros: started.elapsed().as_micros() as u64,
    }
}

fn serial_outcome(
    image: &VmImage,
    registry: &GuestRegistry,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    entries: &[LogEntry],
    fell_back: bool,
) -> Result<ChunkReplayOutcome, CoreError> {
    let replayer = Replayer::from_snapshot(image, registry, snapshots, start_snapshot)?;
    let result = run_unit(replayer, entries.to_vec());
    Ok(ChunkReplayOutcome {
        consistent: result.fault.is_none(),
        fault: result.fault,
        progress: result.summary,
        stats: ParallelReplayStats {
            units: 1,
            lanes: 1,
            fell_back_serial: fell_back,
            unit_cpu_micros: vec![result.cpu_micros],
        },
    })
}

/// Replays a downloaded §3.5 chunk with its segments distributed over up to
/// `workers` concurrent lanes (including the calling thread), merging the
/// per-unit outcomes into the serial verdict (see the module docs for the
/// identity argument).
///
/// `snapshots` is the accounting plane the serial check materializes its
/// start snapshot from; interior units materialize from the same store at
/// zero wire cost — the §3.5 byte and round-trip accounting is untouched.
/// Lanes run on the process-wide [`avm_crypto::parallel`] pool; actual
/// concurrency is additionally bounded by its worker count.
pub fn replay_chunk_parallel(
    entries: &[LogEntry],
    image: &VmImage,
    registry: &GuestRegistry,
    snapshots: &SnapshotStore,
    start_snapshot: u64,
    workers: usize,
) -> Result<ChunkReplayOutcome, CoreError> {
    let positions = match snapshot_positions_in(entries) {
        Ok(positions) => positions,
        Err(fault) => {
            // The serial spot check returns this verdict before replaying
            // anything; mirror it for callers that skip the pre-scan.
            return Ok(ChunkReplayOutcome {
                consistent: false,
                fault: Some(fault),
                progress: ReplaySummary::default(),
                stats: ParallelReplayStats {
                    units: 0,
                    lanes: 0,
                    fell_back_serial: false,
                    unit_cpu_micros: Vec::new(),
                },
            });
        }
    };
    let units = partition_chunk(entries, &positions);
    if units.len() <= 1 {
        return serial_outcome(image, registry, snapshots, start_snapshot, entries, false);
    }

    // Prepare every unit on the calling thread: materialize its machine,
    // pin interior boundaries to the log-recorded root, seed cross-segment
    // RECV context, and take an owned copy of its entry range (parked pool
    // workers cannot borrow the caller's slices — the workspace forbids
    // `unsafe`).
    let mut prepared: Vec<(Replayer, Vec<LogEntry>)> = Vec::with_capacity(units.len());
    for unit in &units {
        let mut replayer = match unit.boundary {
            None => Replayer::from_snapshot(image, registry, snapshots, start_snapshot)?,
            Some((id, recorded_root)) => {
                let Ok(mut replayer) = Replayer::from_snapshot(image, registry, snapshots, id)
                else {
                    // Serial replay never materializes interior snapshots;
                    // a store that cannot serve one must not surface here.
                    return serial_outcome(
                        image,
                        registry,
                        snapshots,
                        start_snapshot,
                        entries,
                        true,
                    );
                };
                if replayer.current_state_root() != recorded_root {
                    // The store's snapshot diverges from what the signed log
                    // records at this boundary: starting a unit from it
                    // could diverge from the serial traversal.
                    return serial_outcome(
                        image,
                        registry,
                        snapshots,
                        start_snapshot,
                        entries,
                        true,
                    );
                }
                replayer
            }
        };
        replayer.preload_recvs(&entries[..unit.range.start]);
        prepared.push((replayer, entries[unit.range.clone()].to_vec()));
    }

    // Distribute units over lanes in contiguous runs (unit order within a
    // lane is preserved; results are re-indexed, so distribution affects
    // wall time only, never the merge).
    let lanes = workers.max(1).min(prepared.len());
    let per = prepared.len() / lanes;
    let rem = prepared.len() % lanes;
    let mut tasks: Vec<LaneTask> = Vec::with_capacity(lanes);
    let mut next_index = 0usize;
    let mut iter = prepared.into_iter();
    for lane in 0..lanes {
        let take = per + usize::from(lane < rem);
        let lane_units: Vec<(usize, Replayer, Vec<LogEntry>)> = (0..take)
            .map(|offset| {
                let (replayer, entries) = iter.next().expect("lane distribution exact");
                (next_index + offset, replayer, entries)
            })
            .collect();
        next_index += take;
        tasks.push(Box::new(move || {
            lane_units
                .into_iter()
                .map(|(index, replayer, entries)| (index, run_unit(replayer, entries)))
                .collect()
        }));
    }
    let mut results: Vec<Option<UnitResult>> = (0..units.len()).map(|_| None).collect();
    for (index, result) in global_pool().run_tasks(tasks).into_iter().flatten() {
        results[index] = Some(result);
    }

    // Merge in unit order: lowest-index fault wins, counters sum across
    // every unit up to and including the faulting one.
    let mut progress = ReplaySummary::default();
    let mut fault = None;
    let mut unit_cpu_micros = Vec::with_capacity(units.len());
    for result in results.iter_mut() {
        let result = result.take().expect("every unit ran");
        unit_cpu_micros.push(result.cpu_micros);
        if fault.is_none() {
            progress.entries_replayed += result.summary.entries_replayed;
            progress.steps_executed += result.summary.steps_executed;
            progress.outputs_matched += result.summary.outputs_matched;
            progress.inputs_reinjected += result.summary.inputs_reinjected;
            progress.snapshots_verified += result.summary.snapshots_verified;
            progress.final_state = result.summary.final_state;
            fault = result.fault;
        }
    }
    if fault.is_some() {
        progress.final_state = None;
    }
    Ok(ChunkReplayOutcome {
        consistent: fault.is_none(),
        fault,
        progress,
        stats: ParallelReplayStats {
            units: units.len(),
            lanes,
            fell_back_serial: false,
            unit_cpu_micros,
        },
    })
}

/// Deterministic makespan of scheduling `unit_cpu_micros` over `workers`
/// lanes with longest-processing-time-first greedy assignment — the wall
/// time a `workers`-core auditor needs for the same units.  The modelled
/// companion to the measured single-core numbers, like
/// [`avm_wire::RttModel`] for round trips.
pub fn schedule_makespan_micros(unit_cpu_micros: &[u64], workers: usize) -> u64 {
    let workers = workers.max(1);
    let mut order: Vec<u64> = unit_cpu_micros.to_vec();
    order.sort_unstable_by(|a, b| b.cmp(a));
    let mut lanes = vec![0u64; workers];
    for cost in order {
        let lane = lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| **load)
            .map(|(i, _)| i)
            .expect("at least one lane");
        lanes[lane] += cost;
    }
    lanes.into_iter().max().unwrap_or(0)
}

/// Prices replay CPU in simulated microseconds — the deterministic model
/// the fleet's pipelined-fetch mode charges to the event-loop clock, so
/// "replay segment i while the batch for segment i-1 is on the wire"
/// becomes a measurable overlap instead of a zero-time artefact.
///
/// Calibrate from a measured serial replay with
/// [`ReplayCpuModel::calibrated`], or use [`ReplayCpuModel::DEFAULT`] for
/// pinned-trajectory determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayCpuModel {
    /// Modelled cost per machine step, in nanoseconds.
    pub ns_per_step: u64,
    /// Modelled fixed cost per log entry (decode + cross-reference), in
    /// nanoseconds.
    pub ns_per_entry: u64,
}

impl ReplayCpuModel {
    /// A deterministic default in the measured ballpark of the bytecode
    /// interpreter with incremental root verification.
    pub const DEFAULT: ReplayCpuModel = ReplayCpuModel {
        ns_per_step: 200,
        ns_per_entry: 2_000,
    };

    /// A model matching a measured replay: `cpu_micros` of CPU over
    /// `steps` machine steps (per-entry cost folded into the per-step
    /// rate).
    pub fn calibrated(cpu_micros: u64, steps: u64) -> ReplayCpuModel {
        ReplayCpuModel {
            ns_per_step: (cpu_micros * 1_000) / steps.max(1),
            ns_per_entry: 0,
        }
    }

    /// Modelled CPU cost of replaying `entries` log entries over `steps`
    /// machine steps, in microseconds.
    pub fn cost_micros(&self, steps: u64, entries: u64) -> u64 {
        (steps * self.ns_per_step + entries * self.ns_per_entry) / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spotcheck::snapshot_positions;
    use crate::testutil::record_with_snapshots;
    use avm_log::EntryKind;
    use avm_vm::GuestRegistry;
    use avm_wire::{Decode, Encode};

    /// The chunk an auditor downloads for `(start, k)`: entries strictly
    /// after the start SNAPSHOT entry, through the SNAPSHOT entry `k`
    /// snapshots later (or end of log).
    fn chunk_entries(log: &avm_log::TamperEvidentLog, start: u64, k: u64) -> Vec<LogEntry> {
        let positions = snapshot_positions(log).unwrap();
        let start_pos = positions.iter().find(|(_, id, _)| *id == start).unwrap().0;
        let end_pos = positions
            .iter()
            .find(|(_, id, _)| *id == start + k)
            .map(|(i, _, _)| *i);
        match end_pos {
            Some(end) => log.entries()[start_pos + 1..=end].to_vec(),
            None => log.entries()[start_pos + 1..].to_vec(),
        }
    }

    #[test]
    fn partition_degenerate_chunks() {
        let (bob, _image) = record_with_snapshots(4);

        // k=1: exactly one unit covering the whole chunk — the closing
        // SNAPSHOT entry opens nothing.
        let one = chunk_entries(bob.log(), 1, 1);
        let positions = snapshot_positions_in(&one).unwrap();
        assert_eq!(positions.len(), 1);
        let units = partition_chunk(&one, &positions);
        assert_eq!(
            units,
            vec![ReplayUnit {
                range: 0..one.len(),
                boundary: None
            }]
        );

        // An open chunk with zero interior snapshots (a trailing chunk cut
        // before the provider's next snapshot): still one unit, covering
        // everything.
        let mut tail = chunk_entries(bob.log(), 2, 1);
        assert_eq!(tail.pop().unwrap().kind, EntryKind::Snapshot);
        assert!(!tail.is_empty());
        let positions = snapshot_positions_in(&tail).unwrap();
        assert!(positions.is_empty());
        let units = partition_chunk(&tail, &positions);
        assert_eq!(
            units,
            vec![ReplayUnit {
                range: 0..tail.len(),
                boundary: None
            }]
        );

        // Empty chunk: no units at all.
        assert!(partition_chunk(&[], &[]).is_empty());
    }

    #[test]
    fn partition_cuts_at_every_interior_snapshot() {
        let (bob, _image) = record_with_snapshots(4);
        let chunk = chunk_entries(bob.log(), 0, 3);
        let positions = snapshot_positions_in(&chunk).unwrap();
        assert_eq!(positions.len(), 3);
        let units = partition_chunk(&chunk, &positions);
        assert_eq!(units.len(), 3);
        // Contiguous, gapless cover of the chunk.
        assert_eq!(units[0].range.start, 0);
        assert_eq!(units.last().unwrap().range.end, chunk.len());
        for pair in units.windows(2) {
            assert_eq!(pair[0].range.end, pair[1].range.start);
        }
        // Every unit but the first starts at the snapshot its predecessor's
        // closing SNAPSHOT entry records.
        assert_eq!(units[0].boundary, None);
        for (unit, &(pos, id, root)) in units[1..].iter().zip(&positions) {
            assert_eq!(unit.range.start, pos + 1);
            assert_eq!(unit.boundary, Some((id, root)));
            assert_eq!(chunk[pos].kind, EntryKind::Snapshot);
        }
    }

    #[test]
    fn parallel_replay_matches_serial_for_every_worker_count() {
        let (bob, image) = record_with_snapshots(5);
        let registry = GuestRegistry::new();
        let chunk = chunk_entries(bob.log(), 0, 4);
        let serial = serial_outcome(&image, &registry, bob.snapshots(), 0, &chunk, false).unwrap();
        assert!(serial.consistent);
        for workers in 1..=8 {
            let parallel =
                replay_chunk_parallel(&chunk, &image, &registry, bob.snapshots(), 0, workers)
                    .unwrap();
            assert_eq!(parallel.consistent, serial.consistent, "workers={workers}");
            assert_eq!(parallel.fault, serial.fault);
            assert_eq!(parallel.progress, serial.progress, "workers={workers}");
            assert_eq!(parallel.stats.units, 4);
            assert_eq!(parallel.stats.lanes, workers.min(4));
            assert!(!parallel.stats.fell_back_serial);
        }
    }

    #[test]
    fn fault_in_segment_zero_attributes_identically() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        // Tamper with the FIRST send after snapshot 0 — the fault lands in
        // unit 0, and later units' (consistent) replays must be discarded.
        let positions = snapshot_positions(bob.log()).unwrap();
        let start_pos = positions.iter().find(|(_, id, _)| *id == 0).unwrap().0;
        let first_send_seq = bob.log().entries()[start_pos + 1..]
            .iter()
            .find(|e| e.kind == EntryKind::Send)
            .unwrap()
            .seq;
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in bob.log().entries() {
            let content = if e.seq == first_send_seq {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = avm_vm::packet::encode_guest_packet("alice", b"cheated");
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let chunk = chunk_entries(&rebuilt, 0, 3);
        let serial = serial_outcome(&image, &registry, bob.snapshots(), 0, &chunk, false).unwrap();
        assert!(!serial.consistent);
        for workers in [1usize, 2, 4, 8] {
            let parallel =
                replay_chunk_parallel(&chunk, &image, &registry, bob.snapshots(), 0, workers)
                    .unwrap();
            assert_eq!(parallel.consistent, serial.consistent);
            assert_eq!(parallel.fault, serial.fault, "workers={workers}");
            assert_eq!(parallel.progress, serial.progress, "workers={workers}");
        }
    }

    #[test]
    fn boundary_root_mismatch_falls_back_to_serial() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        // Rewrite an interior SNAPSHOT entry's recorded id to one whose
        // store snapshot holds a different root: serial replay faults at
        // that entry (root check), and the parallel path must not let a
        // unit start from the divergent store state.  Rebuilding the log
        // keeps the chain syntactically intact.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let mut snapshot_entries_seen = 0;
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Snapshot {
                snapshot_entries_seen += 1;
                if snapshot_entries_seen == 2 {
                    let mut rec = crate::events::SnapshotRecord::decode_exact(&e.content).unwrap();
                    rec.snapshot_id = 0; // store snapshot 0's root differs
                    rec.encode_to_vec()
                } else {
                    e.content.clone()
                }
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let chunk = chunk_entries(&rebuilt, 0, 3);
        let serial = serial_outcome(&image, &registry, bob.snapshots(), 0, &chunk, false).unwrap();
        let parallel =
            replay_chunk_parallel(&chunk, &image, &registry, bob.snapshots(), 0, 4).unwrap();
        assert_eq!(parallel.consistent, serial.consistent);
        assert_eq!(parallel.fault, serial.fault);
        assert_eq!(parallel.progress, serial.progress);
        assert!(parallel.stats.fell_back_serial);
    }

    #[test]
    fn malformed_snapshot_record_short_circuits() {
        let outcome = replay_chunk_parallel(
            &[],
            &record_with_snapshots(1).1,
            &GuestRegistry::new(),
            &SnapshotStore::new(),
            0,
            4,
        );
        // An empty chunk has no snapshot to start from — the serial path
        // errors identically, so either way is acceptable as long as it is
        // an error, not a bogus verdict.
        assert!(outcome.is_err() || outcome.unwrap().stats.units <= 1);
    }

    #[test]
    fn makespan_schedules_longest_first() {
        assert_eq!(schedule_makespan_micros(&[], 4), 0);
        assert_eq!(schedule_makespan_micros(&[10, 20, 30], 1), 60);
        // LPT on {30,20,10} over 2 lanes: {30} vs {20,10}.
        assert_eq!(schedule_makespan_micros(&[10, 20, 30], 2), 30);
        // More lanes than units: bounded by the largest unit.
        assert_eq!(schedule_makespan_micros(&[10, 20, 30], 8), 30);
    }

    #[test]
    fn cpu_model_prices_steps_and_entries() {
        let model = ReplayCpuModel {
            ns_per_step: 100,
            ns_per_entry: 1_000,
        };
        assert_eq!(model.cost_micros(10_000, 5), 1_005);
        let calibrated = ReplayCpuModel::calibrated(2_000, 10_000);
        assert_eq!(calibrated.ns_per_step, 200);
        assert_eq!(calibrated.cost_micros(10_000, 999), 2_000);
    }
}
