//! Execution configurations and AVMM options.
//!
//! The paper's evaluation (§6.2) measures five configurations:
//!
//! | label          | virtualized | replay recording | tamper-evident log | signatures |
//! |----------------|-------------|------------------|--------------------|------------|
//! | `bare-hw`      | no          | no               | no                 | no         |
//! | `vmware-norec` | yes         | no               | no                 | no         |
//! | `vmware-rec`   | yes         | yes              | no                 | no         |
//! | `avmm-nosig`   | yes         | yes              | yes                | no         |
//! | `avmm-rsa768`  | yes         | yes              | yes                | RSA-768    |
//!
//! [`ExecConfig`] reproduces that matrix; the benchmark harness sweeps it to
//! regenerate Figures 5–8.

use avm_crypto::keys::SignatureScheme;

/// One of the paper's five measurement configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecConfig {
    /// The game runs directly on the hardware; no VMM at all.
    BareHw,
    /// Plain virtualization, no recording (`vmware-norec`).
    Vmm,
    /// Virtualization plus deterministic-replay recording (`vmware-rec`).
    VmmRecord,
    /// Full AVMM but with the null signature scheme (`avmm-nosig`).
    AvmmNoSig,
    /// The full system with 768-bit RSA signatures (`avmm-rsa768`).
    AvmmRsa768,
}

impl ExecConfig {
    /// All five configurations in the order the paper plots them.
    pub const ALL: [ExecConfig; 5] = [
        ExecConfig::BareHw,
        ExecConfig::Vmm,
        ExecConfig::VmmRecord,
        ExecConfig::AvmmNoSig,
        ExecConfig::AvmmRsa768,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ExecConfig::BareHw => "bare-hw",
            ExecConfig::Vmm => "vmware-norec",
            ExecConfig::VmmRecord => "vmware-rec",
            ExecConfig::AvmmNoSig => "avmm-nosig",
            ExecConfig::AvmmRsa768 => "avmm-rsa768",
        }
    }

    /// Whether the guest runs under a VMM.
    pub fn virtualized(&self) -> bool {
        !matches!(self, ExecConfig::BareHw)
    }

    /// Whether nondeterministic inputs are recorded for replay.
    pub fn records_replay_log(&self) -> bool {
        matches!(
            self,
            ExecConfig::VmmRecord | ExecConfig::AvmmNoSig | ExecConfig::AvmmRsa768
        )
    }

    /// Whether the tamper-evident log (authenticators, acks) is maintained.
    pub fn tamper_evident(&self) -> bool {
        matches!(self, ExecConfig::AvmmNoSig | ExecConfig::AvmmRsa768)
    }

    /// The signature scheme this configuration uses.
    pub fn signature_scheme(&self) -> SignatureScheme {
        match self {
            ExecConfig::AvmmRsa768 => SignatureScheme::Rsa(768),
            _ => SignatureScheme::Null,
        }
    }
}

impl core::fmt::Display for ExecConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Tunable options of the recording AVMM.
#[derive(Debug, Clone)]
pub struct AvmmOptions {
    /// Signature scheme used for authenticators and per-packet signatures.
    pub signature_scheme: SignatureScheme,
    /// Whether the tamper-evident layer (authenticators, acknowledgments) is
    /// active.  When false, the AVMM still records replay information — this
    /// is the `vmware-rec` configuration.
    pub tamper_evident: bool,
    /// Enable the clock-read optimisation of §6.5: consecutive reads within
    /// [`AvmmOptions::clock_opt_window_us`] are answered with exponentially
    /// increasing artificial delays, collapsing busy-wait loops.
    pub clock_read_optimization: bool,
    /// Window within which a subsequent read counts as "consecutive" (5 µs in
    /// the paper).
    pub clock_opt_window_us: u64,
    /// Base artificial delay (50 µs in the paper).
    pub clock_opt_base_delay_us: u64,
    /// Cap on the artificial delay (5 ms in the paper).
    pub clock_opt_max_delay_us: u64,
    /// Take a snapshot automatically every this many log entries
    /// (`None` disables automatic snapshots; they can still be requested).
    pub snapshot_every_entries: Option<u64>,
    /// Whether snapshots carry a full memory dump (`true`, the paper
    /// prototype's behaviour reported in §6.12) or only the chunks dirtied
    /// since the previous snapshot (`false`, the optimised variant — sparse
    /// writers then log, store and ship O(dirty chunks) per capture).
    pub full_memory_snapshots: bool,
}

impl Default for AvmmOptions {
    fn default() -> Self {
        AvmmOptions {
            signature_scheme: SignatureScheme::Rsa(768),
            tamper_evident: true,
            clock_read_optimization: false,
            clock_opt_window_us: 5,
            clock_opt_base_delay_us: 50,
            clock_opt_max_delay_us: 5_000,
            snapshot_every_entries: None,
            full_memory_snapshots: true,
        }
    }
}

impl AvmmOptions {
    /// Options matching a given measurement configuration.
    ///
    /// `BareHw` and `Vmm` do not record at all; callers normally skip the
    /// AVMM entirely for those, but the returned options (recording, no
    /// tamper evidence, no signatures) are still usable for harness code that
    /// wants a uniform code path.
    pub fn for_config(config: ExecConfig) -> AvmmOptions {
        AvmmOptions {
            signature_scheme: config.signature_scheme(),
            tamper_evident: config.tamper_evident(),
            ..AvmmOptions::default()
        }
    }

    /// Returns options with the clock-read optimisation enabled.
    pub fn with_clock_optimization(mut self) -> AvmmOptions {
        self.clock_read_optimization = true;
        self
    }

    /// Returns options with automatic snapshots every `n` log entries.
    pub fn with_snapshot_every(mut self, n: u64) -> AvmmOptions {
        self.snapshot_every_entries = Some(n);
        self
    }

    /// Returns options using the given signature scheme.
    pub fn with_scheme(mut self, scheme: SignatureScheme) -> AvmmOptions {
        self.signature_scheme = scheme;
        self
    }

    /// Returns options taking incremental (dirty-chunk-only) snapshots
    /// instead of full memory dumps.
    pub fn with_incremental_snapshots(mut self) -> AvmmOptions {
        self.full_memory_snapshots = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_matrix_matches_paper() {
        assert_eq!(ExecConfig::ALL.len(), 5);
        assert!(!ExecConfig::BareHw.virtualized());
        assert!(ExecConfig::Vmm.virtualized());
        assert!(!ExecConfig::Vmm.records_replay_log());
        assert!(ExecConfig::VmmRecord.records_replay_log());
        assert!(!ExecConfig::VmmRecord.tamper_evident());
        assert!(ExecConfig::AvmmNoSig.tamper_evident());
        assert_eq!(
            ExecConfig::AvmmNoSig.signature_scheme(),
            SignatureScheme::Null
        );
        assert_eq!(
            ExecConfig::AvmmRsa768.signature_scheme(),
            SignatureScheme::Rsa(768)
        );
        assert_eq!(ExecConfig::AvmmRsa768.label(), "avmm-rsa768");
        assert_eq!(ExecConfig::BareHw.to_string(), "bare-hw");
    }

    #[test]
    fn options_builders() {
        let o = AvmmOptions::default();
        assert!(o.tamper_evident);
        assert!(!o.clock_read_optimization);
        assert_eq!(o.clock_opt_window_us, 5);
        assert_eq!(o.clock_opt_max_delay_us, 5_000);

        let o = AvmmOptions::for_config(ExecConfig::AvmmNoSig)
            .with_clock_optimization()
            .with_snapshot_every(100);
        assert_eq!(o.signature_scheme, SignatureScheme::Null);
        assert!(o.clock_read_optimization);
        assert_eq!(o.snapshot_every_entries, Some(100));

        let o = AvmmOptions::for_config(ExecConfig::VmmRecord);
        assert!(!o.tamper_evident);

        let o = AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512));
        assert_eq!(o.signature_scheme, SignatureScheme::Rsa(512));
    }
}
