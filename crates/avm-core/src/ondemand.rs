//! Digest-addressed snapshot transfer and on-demand partial-state replay.
//!
//! Paper §3.5: an auditor starting a spot check "can either download an
//! entire snapshot or incrementally request the parts of the state that are
//! accessed during replay".  This module implements both halves of that
//! sentence on top of the content-addressed [`SnapshotStore`]:
//!
//! 1. **Digest-addressed transfer.**  The auditor first downloads a
//!    [`ChainManifest`] — snapshot metadata plus the `(index, SHA-256)`
//!    references of the complete state at the starting snapshot — and then
//!    requests payload *blobs by digest* ([`avm_wire::BlobRequest`] /
//!    [`avm_wire::BlobResponse`]).  Digests the auditor can already produce
//!    (from its persistent [`AuditorBlobCache`] or by hashing state derived
//!    from the public reference image) are never transferred, and duplicate
//!    content (every zero chunk, say) is transferred at most once.
//!    [`dedup_transfer_upto`] models a *full-state* download in this mode —
//!    the "dedup" column of the spot-check accounting.
//!
//! 2. **On-demand replay.**  [`materialize_on_demand`] goes further: it
//!    builds the starting machine from the manifest *only*.  Memory chunks
//!    and disk blocks whose manifest digest differs from what the local
//!    reference image yields are staged for demand paging
//!    ([`avm_vm::GuestMemory::stage_lazy_chunk`]) and fault in lazily as the
//!    replayed workload touches them, so the auditor downloads exactly the
//!    512 B chunks the execution accesses — not the 4 KiB pages around
//!    them.  [`OnDemandSession::finish`] turns the fault lists into the
//!    actual blob exchange and its raw + compressed byte cost — the
//!    "on-demand" column.
//!
//! # Round trips and batching
//!
//! Bytes are not the whole price of on-demand transfer: a naive auditor
//! pays one network round trip per faulted blob.  The blob exchange here is
//! therefore **batched** — up to [`avm_wire::DEFAULT_BLOB_BATCH`] digests
//! per [`BlobRequest`] — and every accounting struct reports the exchange's
//! round-trip counts both ways ([`BlobFetch::round_trips`],
//! [`OnDemandCost::round_trips`] vs [`OnDemandCost::round_trips_unbatched`]),
//! priced in modelled wall time by a configurable [`avm_wire::RttModel`].
//!
//! Authentication never weakens in either mode: the manifest is verified by
//! rebuilding the Merkle state root from its leaf hashes and comparing
//! against the recorded root, and every blob is verified against the digest
//! it was requested under (which the root covers) before it is used or
//! cached — a tampered manifest or substituted blob is rejected exactly like
//! a tampered full snapshot.

use std::collections::{BTreeMap, HashMap, HashSet};

use avm_compress::{CompressionLevel, CompressionStats};
use avm_crypto::parallel::sha256_batch;
use avm_crypto::sha256::{sha256, Digest};
use avm_vm::{GuestRegistry, Machine, VmImage};
use avm_wire::{
    BlobRequest, BlobResponse, Decode, Encode, Reader, RttModel, WireResult, Writer,
    DEFAULT_BLOB_BATCH,
};

use crate::error::CoreError;
use crate::snapshot::{SnapshotStore, TransferCost};

/// Snapshot metadata an auditor downloads to begin an on-demand (or
/// dedup-transfer) reconstruction: everything about the state at a snapshot
/// *except* the payload bytes, which are referenced by digest.
///
/// `mem_refs` and `disk_refs` are the *effective* references of the complete
/// state — the snapshot chain already collapsed (last write per index wins,
/// memory sections superseded by a later full dump dropped), sorted by
/// index.  Memory references address 512 B chunks; disk references address
/// whole blocks.  Indices absent from the lists are state the reference
/// image already determines, which the auditor derives locally at zero
/// transfer cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainManifest {
    /// Id of the snapshot this manifest reconstructs.
    pub snapshot_id: u64,
    /// Machine step count at capture time.
    pub step: u64,
    /// Whether the guest had halted.
    pub halted: bool,
    /// Merkle root over the complete machine state; the manifest
    /// authenticates against it (see [`materialize_on_demand`]).
    pub state_root: Digest,
    /// Serialized CPU state at the snapshot.
    pub cpu_state: Vec<u8>,
    /// Serialized volatile device state at the snapshot.
    pub dev_state: Vec<u8>,
    /// Effective `(chunk index, content hash)` references, sorted by index.
    pub mem_refs: Vec<(u32, Digest)>,
    /// Effective `(block index, content hash)` references, sorted by index.
    pub disk_refs: Vec<(u32, Digest)>,
}

fn encode_refs(w: &mut Writer, refs: &[(u32, Digest)]) {
    w.put_varint(refs.len() as u64);
    for (idx, hash) in refs {
        w.put_u32(*idx);
        w.put_raw(hash.as_bytes());
    }
}

fn decode_refs(r: &mut Reader<'_>) -> WireResult<Vec<(u32, Digest)>> {
    let n = r.get_varint()?;
    let max = (r.remaining() / 36) as u64; // 4-byte index + 32-byte digest
    if n > max {
        return Err(avm_wire::WireError::LengthOverflow { declared: n, max });
    }
    let mut refs = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let idx = r.get_u32()?;
        let hash =
            Digest::from_slice(r.get_raw(32)?).ok_or(avm_wire::WireError::Corrupt("digest"))?;
        refs.push((idx, hash));
    }
    Ok(refs)
}

impl Encode for ChainManifest {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.snapshot_id);
        w.put_varint(self.step);
        w.put_bool(self.halted);
        w.put_raw(self.state_root.as_bytes());
        w.put_bytes(&self.cpu_state);
        w.put_bytes(&self.dev_state);
        encode_refs(w, &self.mem_refs);
        encode_refs(w, &self.disk_refs);
    }
}

impl Decode for ChainManifest {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(ChainManifest {
            snapshot_id: r.get_varint()?,
            step: r.get_varint()?,
            halted: r.get_bool()?,
            state_root: Digest::from_slice(r.get_raw(32)?)
                .ok_or(avm_wire::WireError::Corrupt("digest"))?,
            cpu_state: r.get_bytes()?.to_vec(),
            dev_state: r.get_bytes()?.to_vec(),
            mem_refs: decode_refs(r)?,
            disk_refs: decode_refs(r)?,
        })
    }
}

impl SnapshotStore {
    /// Builds the [`ChainManifest`] for the state at snapshot `upto_id`:
    /// walks the chain once, collapsing references the same way
    /// [`SnapshotStore::materialize`] applies sections (later writes win,
    /// memory sections before the last full dump are superseded).
    pub fn chain_manifest_upto(&self, upto_id: u64) -> Result<ChainManifest, CoreError> {
        let target = self
            .get(upto_id)
            .ok_or_else(|| CoreError::Snapshot(format!("snapshot {upto_id} not found")))?;
        // The shared supersession predicate: manifest, materialize and the
        // transfer accounting must agree on which memory sections count.
        let base = self.memory_base(upto_id);
        let mut mem: BTreeMap<u32, Digest> = BTreeMap::new();
        let mut disk: BTreeMap<u32, Digest> = BTreeMap::new();
        for s in self.chain_upto(upto_id) {
            if s.id >= base {
                for (idx, hash) in s.mem_chunk_refs() {
                    mem.insert(*idx, *hash);
                }
            }
            for (idx, hash) in s.disk_block_refs() {
                disk.insert(*idx, *hash);
            }
        }
        Ok(ChainManifest {
            snapshot_id: target.id,
            step: target.step,
            halted: target.halted,
            state_root: target.state_root,
            cpu_state: target.cpu_state.clone(),
            dev_state: target.dev_state.clone(),
            mem_refs: mem.into_iter().collect(),
            disk_refs: disk.into_iter().collect(),
        })
    }

    /// Operator side of the blob exchange: serves each requested digest from
    /// the content-addressed pool, in request order.
    pub fn serve_blobs(&self, request: &BlobRequest) -> BlobResponse {
        BlobResponse {
            blobs: request
                .digests
                .iter()
                .map(|raw| {
                    let digest = Digest(*raw);
                    self.payload(&digest).map(|b| b.to_vec())
                })
                .collect(),
        }
    }
}

/// The auditor's persistent store of verified payload blobs, keyed by
/// SHA-256.
///
/// Every blob was either verified on receipt ([`AuditorBlobCache::
/// insert_verified`]) or derived locally from the reference image
/// ([`AuditorBlobCache::seed_from_machine`]); a digest the cache holds is
/// therefore *never requested again* — the cache is what makes the
/// digest-addressed protocol cheaper than shipping sections, across spot
/// checks as well as within one.
#[derive(Debug, Clone, Default)]
pub struct AuditorBlobCache {
    blobs: HashMap<Digest, Vec<u8>>,
    stored_bytes: u64,
}

impl AuditorBlobCache {
    /// Creates an empty cache.
    pub fn new() -> AuditorBlobCache {
        AuditorBlobCache::default()
    }

    /// True if the cache holds `digest`.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.blobs.contains_key(digest)
    }

    /// The cached payload for `digest`, if held.
    pub fn get(&self, digest: &Digest) -> Option<&[u8]> {
        self.blobs.get(digest).map(|b| b.as_slice())
    }

    /// Number of cached blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total payload bytes held.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Inserts a received blob after verifying it hashes to `digest` — the
    /// per-blob authentication of the transfer protocol.  A mismatch means
    /// the operator substituted content and is rejected.
    pub fn insert_verified(&mut self, digest: Digest, payload: Vec<u8>) -> Result<(), CoreError> {
        verify_blob(&digest, &payload)?;
        self.insert_trusted(digest, payload);
        Ok(())
    }

    /// Inserts a blob whose hash the caller has already verified (avoids
    /// re-hashing payloads that just went through [`verify_blob`]).
    pub(crate) fn insert_trusted(&mut self, digest: Digest, payload: Vec<u8>) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.blobs.entry(digest) {
            self.stored_bytes += payload.len() as u64;
            slot.insert(payload);
        }
    }

    /// Seeds the cache with every memory chunk and disk block payload of
    /// `machine` (normally a machine freshly instantiated from the public
    /// reference image): content the auditor can derive locally never needs
    /// to cross the wire, whatever index the operator's snapshot references
    /// it at.
    pub fn seed_from_machine(&mut self, machine: &Machine) {
        // A partially-resident machine pairs staged (authentic) hashes with
        // stale raw contents; seeding from one would poison the cache.
        assert_eq!(
            machine.memory().staged_chunk_count() + machine.devices().disk.staged_block_count(),
            0,
            "cannot seed a blob cache from a machine with staged demand-paged state"
        );
        // insert_trusted, not insert_verified: chunk_hash/block_hash *are*
        // the SHA-256 of exactly these contents, so re-hashing every chunk
        // would double the seed's cost for zero added assurance.  The hash
        // derivation itself runs on the worker pool.
        let mem = machine.memory();
        let all_chunks: Vec<usize> = (0..mem.chunk_count()).collect();
        mem.prime_chunk_hashes(&all_chunks);
        for i in all_chunks {
            let hash = mem.chunk_hash(i).expect("chunk in range");
            // A mostly-zero image repeats a handful of digests thousands of
            // times; skip the payload copy for digests already held.
            if !self.contains(&hash) {
                let chunk = mem.chunk(i).expect("chunk in range");
                self.insert_trusted(hash, chunk.to_vec());
            }
        }
        let disk = &machine.devices().disk;
        let all_blocks: Vec<usize> = (0..disk.block_count()).collect();
        disk.prime_block_hashes(&all_blocks);
        for b in all_blocks {
            let hash = disk.block_hash(b).expect("block in range");
            if !self.contains(&hash) {
                let block = disk.block(b).expect("block in range");
                self.insert_trusted(hash, block.to_vec());
            }
        }
    }

    /// Persists every cached blob into a durable blob arena (content-
    /// addressed, so blobs the arena already holds cost nothing), then
    /// flushes.  Blobs are written in digest order, making the on-disk
    /// image a deterministic function of the cache contents.
    ///
    /// Returns how many blobs were newly written.  A restarted auditor
    /// recovers with [`AuditorBlobCache::from_arena_scan`] and never
    /// refetches a digest it already paid for.
    pub fn persist_into<S: avm_store::Storage>(
        &self,
        arena: &mut avm_store::ArenaStore<S>,
    ) -> Result<u64, CoreError> {
        let mut digests: Vec<&Digest> = self.blobs.keys().collect();
        digests.sort();
        let mut written = 0u64;
        for digest in digests {
            if arena
                .put(*digest, &self.blobs[digest])
                .map_err(persistence_error)?
            {
                written += 1;
            }
        }
        arena.flush().map_err(persistence_error)?;
        Ok(written)
    }

    /// Rebuilds a cache from an arena recovery scan, re-verifying every
    /// payload against its digest — recovered bytes get no more trust than
    /// received ones, so a corrupted arena surfaces here instead of
    /// poisoning later audits.
    pub fn from_arena_scan(scan: &avm_store::ArenaScan) -> Result<AuditorBlobCache, CoreError> {
        let mut cache = AuditorBlobCache::new();
        // One batched pass through the multi-buffer hashing pipeline instead
        // of a scalar hash per recovered blob.
        let payloads: Vec<&[u8]> = scan.blobs.iter().map(|(_, p)| p.as_slice()).collect();
        let actual = sha256_batch(&payloads);
        for ((digest, payload), hash) in scan.blobs.iter().zip(actual) {
            if hash != *digest {
                return Err(blob_mismatch(digest));
            }
            cache.insert_trusted(*digest, payload.clone());
        }
        Ok(cache)
    }
}

/// Error for a blob-arena operation during cache persistence.
fn persistence_error(e: avm_store::StoreError) -> CoreError {
    CoreError::Snapshot(format!("blob cache persistence: {e}"))
}

/// Error for a digest the operator's store cannot substantiate.
pub(crate) fn operator_missing(digest: &Digest) -> CoreError {
    CoreError::Snapshot(format!(
        "operator could not serve blob {} referenced by its own snapshot",
        digest.short_hex()
    ))
}

/// Error for a payload that does not hash to the digest it was requested
/// (or recovered) under.
fn blob_mismatch(digest: &Digest) -> CoreError {
    CoreError::Snapshot(format!(
        "received blob does not hash to its requested digest {}",
        digest.short_hex()
    ))
}

/// The per-blob authentication of the transfer protocol: a received payload
/// must hash to the digest it was requested under.
pub(crate) fn verify_blob(digest: &Digest, payload: &[u8]) -> Result<(), CoreError> {
    if sha256(payload) != *digest {
        return Err(blob_mismatch(digest));
    }
    Ok(())
}

/// Batched form of [`verify_blob`]: hashes every payload through the
/// multi-buffer SHA-256 lanes ([`sha256_batch`]) and compares each against
/// the digest it travels under.  One batch per received blob response keeps
/// the auditor's authentication step on the vectorised hashing floor.
pub(crate) fn verify_blob_batch(digests: &[Digest], payloads: &[&[u8]]) -> Result<(), CoreError> {
    debug_assert_eq!(digests.len(), payloads.len());
    for (digest, hash) in digests.iter().zip(sha256_batch(payloads)) {
        if hash != *digest {
            return Err(blob_mismatch(digest));
        }
    }
    Ok(())
}

/// The provider side of one blob exchange, as the auditor sees it: hand over
/// a [`BlobRequest`], get the matching [`BlobResponse`] back.
///
/// This is the seam the audit transports plug into: an in-process provider
/// is simply `&SnapshotStore` (the request is served straight from the
/// content-addressed pool), while a networked provider
/// ([`crate::endpoint::AuditTransport`]) carries the same messages over a
/// (simulated) link.  Everything above the seam — digest selection, per-blob
/// verification, caching, byte accounting — is transport-independent, which
/// is what pins the networked exchange to the in-process numbers.
pub trait BlobProvider {
    /// Performs one request/response exchange.
    fn exchange_blobs(&mut self, request: &BlobRequest) -> Result<BlobResponse, CoreError>;
}

impl BlobProvider for &SnapshotStore {
    fn exchange_blobs(&mut self, request: &BlobRequest) -> Result<BlobResponse, CoreError> {
        Ok(self.serve_blobs(request))
    }
}

/// Exchanges `request` with the provider and verifies every payload against
/// the digest it was requested under — the protocol step every download
/// model shares.
fn serve_verified<P: BlobProvider>(
    provider: &mut P,
    request: &BlobRequest,
) -> Result<BlobResponse, CoreError> {
    let response = provider.exchange_blobs(request)?;
    if response.blobs.len() != request.digests.len() {
        return Err(CoreError::Snapshot(format!(
            "blob response carries {} payloads for {} requested digests",
            response.blobs.len(),
            request.digests.len()
        )));
    }
    let mut payloads = Vec::with_capacity(response.blobs.len());
    for (raw, blob) in request.digests.iter().zip(&response.blobs) {
        let digest = Digest(*raw);
        let payload = blob.as_ref().ok_or_else(|| operator_missing(&digest))?;
        payloads.push(payload.as_slice());
    }
    // Authenticate the whole response in one batched hashing pass.
    for (raw, hash) in request.digests.iter().zip(sha256_batch(&payloads)) {
        if hash != Digest(*raw) {
            return Err(blob_mismatch(&Digest(*raw)));
        }
    }
    Ok(response)
}

/// Accounting for one blob exchange ([`fetch_blobs`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlobFetch {
    /// Digests actually transferred, in request order (never contains a
    /// digest the cache already held).
    pub fetched: Vec<Digest>,
    /// Digests satisfied from the cache instead of the wire.
    pub cache_hits: u64,
    /// Request/response round trips the exchange performed (0 when nothing
    /// needed fetching).
    pub round_trips: u64,
    /// Encoded size of the upstream [`BlobRequest`]s, summed over batches.
    pub request_bytes: u64,
    /// Encoded [`BlobResponse`] stream (the download), raw and compressed.
    pub response: TransferCost,
    /// Raw payload bytes inside the response (excluding framing).
    pub payload_bytes: u64,
}

/// [`fetch_blobs`] without the compression measurement: returns the encoded
/// response stream so callers (e.g. [`OnDemandSession::finish`]) can measure
/// it jointly with other stream parts in *one* compression pass.  The
/// returned accounting's `response` field carries the raw size only
/// (`compressed_bytes` is zero — the caller owns the measurement).
///
/// The exchange is split into [`BlobRequest`]s of at most `max_per_request`
/// digests (`0` = one request for everything); `round_trips` records how
/// many were issued.
fn fetch_blobs_encoded<P: BlobProvider>(
    cache: &mut AuditorBlobCache,
    provider: &mut P,
    needed: &[Digest],
    max_per_request: usize,
) -> Result<(BlobFetch, Vec<u8>), CoreError> {
    let mut seen = HashSet::new();
    let mut fetch = BlobFetch::default();
    let mut missing: Vec<avm_wire::BlobDigest> = Vec::new();
    for digest in needed {
        if !seen.insert(*digest) {
            continue;
        }
        if cache.contains(digest) {
            fetch.cache_hits += 1;
        } else {
            missing.push(digest.0);
        }
    }
    let mut encoded = Vec::new();
    for request in BlobRequest::batches(&missing, max_per_request) {
        let response = serve_verified(provider, &request)?;
        fetch.round_trips += 1;
        fetch.request_bytes += request.encoded_len() as u64;
        fetch.payload_bytes += response.payload_bytes();
        // Encode before consuming the response so each payload moves into
        // the cache instead of being cloned.
        encoded.extend_from_slice(&response.encode_to_vec());
        for (raw, blob) in request.digests.iter().zip(response.blobs) {
            let digest = Digest(*raw);
            cache.insert_trusted(digest, blob.expect("payload verified"));
            fetch.fetched.push(digest);
        }
    }
    fetch.response.raw_bytes = encoded.len() as u64;
    Ok((fetch, encoded))
}

/// Runs one digest-addressed exchange: requests every digest in `needed`
/// that `cache` does not hold (duplicates collapsed) in batches of at most
/// `max_per_request` digests (`0` = a single request), verifies each
/// received blob against its digest, and inserts the verified blobs into
/// `cache`.
///
/// Returns the exchange's byte and round-trip accounting; fails if the store
/// cannot serve a requested digest or serves content that does not hash to
/// it.
pub fn fetch_blobs(
    cache: &mut AuditorBlobCache,
    store: &SnapshotStore,
    needed: &[Digest],
    max_per_request: usize,
    level: CompressionLevel,
) -> Result<BlobFetch, CoreError> {
    let mut provider = store;
    fetch_blobs_with(cache, &mut provider, needed, max_per_request, level)
}

/// [`fetch_blobs`] against any [`BlobProvider`] — the transport-independent
/// form the audit endpoints use; `fetch_blobs` is the in-process special
/// case (`provider = &store`).
pub fn fetch_blobs_with<P: BlobProvider>(
    cache: &mut AuditorBlobCache,
    provider: &mut P,
    needed: &[Digest],
    max_per_request: usize,
    level: CompressionLevel,
) -> Result<BlobFetch, CoreError> {
    let (mut fetch, encoded) = fetch_blobs_encoded(cache, provider, needed, max_per_request)?;
    fetch.response = CompressionStats::measure(&encoded, level);
    Ok(fetch)
}

/// Accounting for a dedup-transfer full-state download
/// ([`dedup_transfer_upto`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupTransfer {
    /// Encoded manifest size (metadata the auditor must always download).
    pub manifest_bytes: u64,
    /// Number of blobs transferred.
    pub blobs_fetched: u64,
    /// Digests skipped because the auditor could derive them locally from
    /// the reference image, or already held them in its cache.
    pub blobs_skipped: u64,
    /// Encoded size of the upstream request.
    pub request_bytes: u64,
    /// The download (manifest + blob response as one stream), raw and
    /// compressed.
    pub transfer: TransferCost,
}

/// Models a digest-addressed download of the *complete* state at snapshot
/// `upto_id`: manifest plus every referenced blob the auditor cannot already
/// produce — the middle column between a full section download
/// ([`SnapshotStore::transfer_cost_upto`]) and on-demand replay.
///
/// The cache is consulted read-only: this is an accounting model, and
/// letting it populate the cache would let a hypothetical download
/// subsidise a measured one.  Building the derivable set hashes one
/// reference-image machine; a spot check that already holds an
/// [`OnDemandSession`] prices this column for free via
/// [`OnDemandSession::price_full_download`] instead.
pub fn dedup_transfer_upto(
    store: &SnapshotStore,
    upto_id: u64,
    image: &VmImage,
    registry: &GuestRegistry,
    cache: &AuditorBlobCache,
    level: CompressionLevel,
) -> Result<DedupTransfer, CoreError> {
    let manifest = store.chain_manifest_upto(upto_id)?;
    let mut provider = store;
    dedup_transfer_from_manifest(&manifest, &mut provider, image, registry, cache, level)
}

/// [`dedup_transfer_upto`] starting from an already-downloaded manifest and
/// running the blob exchange against any [`BlobProvider`] — the form the
/// audit endpoints use; the accounting is identical to the in-process form.
pub(crate) fn dedup_transfer_from_manifest<P: BlobProvider>(
    manifest: &ChainManifest,
    provider: &mut P,
    image: &VmImage,
    registry: &GuestRegistry,
    cache: &AuditorBlobCache,
    level: CompressionLevel,
) -> Result<DedupTransfer, CoreError> {
    let manifest_encoded = manifest.encode_to_vec();
    // Everything the auditor can derive locally from the reference image.
    let local = Machine::from_image(image, registry).map_err(CoreError::Vm)?;
    let mut derivable: HashSet<Digest> = HashSet::new();
    let mem = local.memory();
    let all_chunks: Vec<usize> = (0..mem.chunk_count()).collect();
    mem.prime_chunk_hashes(&all_chunks);
    for i in all_chunks {
        derivable.insert(mem.chunk_hash(i).expect("chunk in range"));
    }
    let disk = &local.devices().disk;
    for b in 0..disk.block_count() {
        derivable.insert(disk.block_hash(b).expect("block in range"));
    }

    let mut request = BlobRequest::default();
    let mut seen = HashSet::new();
    let mut skipped = 0u64;
    for (_, digest) in manifest.mem_refs.iter().chain(&manifest.disk_refs) {
        if !seen.insert(*digest) {
            continue;
        }
        if derivable.contains(digest) || cache.contains(digest) {
            skipped += 1;
        } else {
            request.digests.push(digest.0);
        }
    }
    let response = serve_verified(provider, &request)?;
    let blobs_fetched = request.digests.len() as u64;
    let response_encoded = response.encode_to_vec();
    let transfer = CompressionStats::measure_stream(
        [manifest_encoded.as_slice(), response_encoded.as_slice()],
        level,
    );
    Ok(DedupTransfer {
        manifest_bytes: manifest_encoded.len() as u64,
        blobs_fetched,
        blobs_skipped: skipped,
        request_bytes: request.encoded_len() as u64,
        transfer,
    })
}

/// Byte, fault and round-trip accounting of a finished on-demand replay
/// ([`OnDemandSession::finish`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnDemandCost {
    /// Encoded manifest size.
    pub manifest_bytes: u64,
    /// Memory chunks faulted in during replay.
    pub chunks_faulted: u64,
    /// Disk blocks faulted in during replay.
    pub blocks_faulted: u64,
    /// Staged chunks/blocks the replay never touched — divergent state whose
    /// contents were never transferred (the §3.5 saving).
    pub untouched_staged: u64,
    /// Digests actually transferred for the faults (after dedup and cache).
    pub fetched: Vec<Digest>,
    /// Unique faulted digests served from the auditor cache at zero transfer
    /// cost.
    pub cache_hits: u64,
    /// Unique faulted digests the auditor derived from its own reference
    /// image (content-addressed, whatever index the content sat at) — also
    /// zero transfer cost, mirroring the dedup model's "derivable" skip.
    pub locally_derived: u64,
    /// Encoded size of the upstream requests, summed over batches.
    pub request_bytes: u64,
    /// Round trips the settled exchange performed: one for the manifest plus
    /// one per batched [`BlobRequest`].
    pub round_trips: u64,
    /// Round trips a naive fault-at-a-time auditor would have performed for
    /// the same download: one for the manifest plus one per fetched blob.
    pub round_trips_unbatched: u64,
    /// The download (manifest + blob response as one stream), raw and
    /// compressed.
    pub transfer: TransferCost,
}

impl OnDemandCost {
    /// Raw bytes the auditor downloaded (manifest + blob response).
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer.raw_bytes
    }

    /// Compressed size of the same download.
    pub fn transfer_compressed_bytes(&self) -> u64 {
        self.transfer.compressed_bytes
    }

    /// Modelled wall time of the batched download under `model`.
    pub fn latency_micros(&self, model: &RttModel) -> u64 {
        model.latency_micros(self.round_trips, self.transfer.raw_bytes)
    }

    /// Modelled wall time of the same download without request batching
    /// (one round trip per fetched blob) — always ≥
    /// [`OnDemandCost::latency_micros`].
    pub fn latency_micros_unbatched(&self, model: &RttModel) -> u64 {
        model.latency_micros(self.round_trips_unbatched, self.transfer.raw_bytes)
    }
}

/// Where a staged blob's contents came from, which decides what the auditor
/// pays when the blob faults in: only [`StagedSource::Remote`] blobs cross
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StagedSource {
    /// Already held in the auditor's persistent cache.
    Cache,
    /// Derivable from the reference image (content-addressed: the local
    /// machine holds identical content, possibly at a different index).
    Local,
    /// Only the operator's store has it — transferred on first touch.
    Remote,
}

/// What [`OnDemandSession::classify_faults`] decided about a finished
/// replay's fault lists — the wire-facing half (`needed`) and the free
/// half (cache hits, locally derived), plus the counters the final
/// [`OnDemandCost`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FaultClassification {
    /// Unique faulted digests only the operator can serve, in fault order.
    pub needed: Vec<Digest>,
    /// Unique faulted digests served from the auditor cache (as classified
    /// at staging time).
    pub cache_hits: u64,
    /// Unique faulted digests derivable from the reference image.
    pub locally_derived: u64,
    /// Memory chunks faulted during replay.
    pub chunks_faulted: u64,
    /// Disk blocks faulted during replay.
    pub blocks_faulted: u64,
    /// Staged chunks/blocks the replay never touched.
    pub untouched_staged: u64,
}

/// Incremental form of [`OnDemandSession::classify_faults`] for auditors
/// that pause replay at segment boundaries and fetch as they go (the
/// fleet's pipelined mode): each [`IncrementalFaultClassifier::classify_new`]
/// call classifies only the faults the machine appended since the previous
/// call, returning the newly wire-needed digests, and
/// [`IncrementalFaultClassifier::into_classification`] yields the merged
/// classification of the finished machine.
///
/// Because the machine's fault lists record first-touch order and only
/// grow, the union over all calls equals the one-shot classification:
/// identical needed *set*, identical cache-hit / locally-derived / fault
/// counters.  Only the order of `needed` can differ (the one-shot form
/// processes all chunk faults before all block faults; the incremental form
/// interleaves them per segment), which changes batch composition but never
/// what crosses the wire.
#[derive(Debug, Default)]
pub(crate) struct IncrementalFaultClassifier {
    seen: HashSet<Digest>,
    chunks_seen: usize,
    blocks_seen: usize,
    needed: Vec<Digest>,
    cache_hits: u64,
    locally_derived: u64,
}

impl IncrementalFaultClassifier {
    /// Classifies the faults appended since the last call, returning the
    /// newly needed (wire-facing) digests in fault order.
    pub(crate) fn classify_new(
        &mut self,
        session: &OnDemandSession,
        machine: &Machine,
    ) -> Result<Vec<Digest>, CoreError> {
        let faulted_chunks = &machine.memory().faulted_chunks()[self.chunks_seen..];
        let faulted_blocks = &machine.devices().disk.faulted_blocks()[self.blocks_seen..];
        self.chunks_seen += faulted_chunks.len();
        self.blocks_seen += faulted_blocks.len();
        let chunk_digests = faulted_chunks.iter().map(|idx| {
            session
                .staged_chunks
                .get(idx)
                .ok_or_else(|| CoreError::Snapshot(format!("faulted chunk {idx} was never staged")))
        });
        let block_digests = faulted_blocks.iter().map(|idx| {
            session
                .staged_blocks
                .get(idx)
                .ok_or_else(|| CoreError::Snapshot(format!("faulted block {idx} was never staged")))
        });
        let mut fresh = Vec::new();
        for digest in chunk_digests.chain(block_digests) {
            let digest = *digest?;
            if !self.seen.insert(digest) {
                continue;
            }
            match session.sources.get(&digest) {
                Some(StagedSource::Remote) => {
                    fresh.push(digest);
                    self.needed.push(digest);
                }
                Some(StagedSource::Local) => self.locally_derived += 1,
                Some(StagedSource::Cache) => self.cache_hits += 1,
                None => {
                    return Err(CoreError::Snapshot(format!(
                        "faulted digest {} has no staging source",
                        digest.short_hex()
                    )))
                }
            }
        }
        Ok(fresh)
    }

    /// The merged classification over every call so far, with the untouched
    /// counter read from the finished machine — counter-identical to
    /// [`OnDemandSession::classify_faults`] of the same machine.
    pub(crate) fn into_classification(self, machine: &Machine) -> FaultClassification {
        let untouched =
            machine.memory().staged_chunk_count() + machine.devices().disk.staged_block_count();
        FaultClassification {
            needed: self.needed,
            cache_hits: self.cache_hits,
            locally_derived: self.locally_derived,
            chunks_faulted: self.chunks_seen as u64,
            blocks_faulted: self.blocks_seen as u64,
            untouched_staged: untouched as u64,
        }
    }
}

/// Tracks one on-demand reconstruction from staging to settlement.
///
/// Produced by [`materialize_on_demand`]; after the replay (or any workload)
/// has run on the returned machine, [`OnDemandSession::finish`] converts the
/// machine's fault lists into the blob exchange the auditor performed and
/// its cost.
#[derive(Debug, Clone)]
pub struct OnDemandSession {
    snapshot_id: u64,
    state_root: Digest,
    manifest_encoded: Vec<u8>,
    staged_chunks: HashMap<usize, Digest>,
    staged_blocks: HashMap<usize, Digest>,
    /// Source classification per staged digest (a digest staged at several
    /// indices resolves identically everywhere).
    sources: HashMap<Digest, StagedSource>,
    /// The [`StagedSource::Remote`] digests in manifest order — exactly the
    /// set a dedup full-state download of this snapshot would transfer.
    remote_digests: Vec<Digest>,
    /// Unique digests across all manifest references (for the dedup model's
    /// skipped-blob accounting).
    unique_manifest_digests: u64,
}

impl OnDemandSession {
    /// Id of the snapshot the session reconstructs.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The authenticated state root of the starting snapshot.
    pub fn state_root(&self) -> Digest {
        self.state_root
    }

    /// Encoded manifest size — the metadata download that starts the session.
    pub fn manifest_bytes(&self) -> u64 {
        self.manifest_encoded.len() as u64
    }

    /// Number of memory chunks staged for demand paging (state that diverges
    /// from the reference image and *would* all have to be downloaded by a
    /// full transfer).
    pub fn staged_chunks(&self) -> usize {
        self.staged_chunks.len()
    }

    /// Number of disk blocks staged for demand paging.
    pub fn staged_blocks(&self) -> usize {
        self.staged_blocks.len()
    }

    /// Settles the session: reads the machine's fault lists, performs the
    /// batched digest-addressed exchange for every touched blob the auditor
    /// could not produce itself (cached and image-derivable content is free,
    /// like in the dedup model), inserts the fetched blobs into `cache`, and
    /// returns the accounting — bytes, compression and round trips.
    ///
    /// `machine` must be the machine returned by [`materialize_on_demand`]
    /// alongside this session; `store` is the operator's snapshot store the
    /// blobs are fetched from.
    pub fn finish(
        &self,
        machine: &Machine,
        store: &SnapshotStore,
        cache: &mut AuditorBlobCache,
        level: CompressionLevel,
    ) -> Result<OnDemandCost, CoreError> {
        let mut provider = store;
        self.finish_with(machine, &mut provider, cache, level)
    }

    /// [`OnDemandSession::finish`] against any [`BlobProvider`]: the settle-
    /// time blob exchange crosses the provider (an audit transport pays it
    /// on the simulated network), while the accounting stays identical to
    /// the in-process form.
    pub fn finish_with<P: BlobProvider>(
        &self,
        machine: &Machine,
        provider: &mut P,
        cache: &mut AuditorBlobCache,
        level: CompressionLevel,
    ) -> Result<OnDemandCost, CoreError> {
        let classification = self.classify_faults(machine)?;
        let (fetch, response_encoded) =
            fetch_blobs_encoded(cache, provider, &classification.needed, DEFAULT_BLOB_BATCH)?;
        Ok(self.assemble_cost(classification, fetch, &response_encoded, level))
    }

    /// The settle-time classification of the machine's fault lists: which
    /// unique faulted digests must cross the wire and which are free
    /// (cached / image-derivable), plus the fault and untouched counters.
    ///
    /// [`OnDemandSession::finish_with`] is `classify_faults` → blob exchange
    /// → [`OnDemandSession::assemble_cost`]; the fleet auditor runs the same
    /// halves around its non-blocking (event-loop-driven) blob exchange so
    /// its accounting is the single-client accounting by construction.
    pub(crate) fn classify_faults(
        &self,
        machine: &Machine,
    ) -> Result<FaultClassification, CoreError> {
        let faulted_chunks = machine.memory().faulted_chunks();
        let faulted_blocks = machine.devices().disk.faulted_blocks();
        let mut needed: Vec<Digest> = Vec::new();
        let mut locally_derived = 0u64;
        let mut cache_hits = 0u64;
        let mut seen = HashSet::new();
        let chunk_digests = faulted_chunks.iter().map(|idx| {
            self.staged_chunks
                .get(idx)
                .ok_or_else(|| CoreError::Snapshot(format!("faulted chunk {idx} was never staged")))
        });
        let block_digests = faulted_blocks.iter().map(|idx| {
            self.staged_blocks
                .get(idx)
                .ok_or_else(|| CoreError::Snapshot(format!("faulted block {idx} was never staged")))
        });
        for digest in chunk_digests.chain(block_digests) {
            let digest = *digest?;
            if !seen.insert(digest) {
                continue;
            }
            match self.sources.get(&digest) {
                Some(StagedSource::Remote) => needed.push(digest),
                Some(StagedSource::Local) => locally_derived += 1,
                Some(StagedSource::Cache) => cache_hits += 1,
                None => {
                    return Err(CoreError::Snapshot(format!(
                        "faulted digest {} has no staging source",
                        digest.short_hex()
                    )))
                }
            }
        }
        let untouched =
            machine.memory().staged_chunk_count() + machine.devices().disk.staged_block_count();
        Ok(FaultClassification {
            needed,
            cache_hits,
            locally_derived,
            chunks_faulted: faulted_chunks.len() as u64,
            blocks_faulted: faulted_blocks.len() as u64,
            untouched_staged: untouched as u64,
        })
    }

    /// Starts an incremental classification of this session's fault lists —
    /// the pipelined auditor's seam (see [`IncrementalFaultClassifier`]).
    pub(crate) fn incremental_classifier(&self) -> IncrementalFaultClassifier {
        IncrementalFaultClassifier::default()
    }

    /// Assembles the [`OnDemandCost`] from a classification and the blob
    /// exchange it led to, measuring manifest + blob response as one
    /// compressed download.
    pub(crate) fn assemble_cost(
        &self,
        classification: FaultClassification,
        fetch: BlobFetch,
        response_encoded: &[u8],
        level: CompressionLevel,
    ) -> OnDemandCost {
        let transfer = CompressionStats::measure_stream(
            [self.manifest_encoded.as_slice(), response_encoded],
            level,
        );
        OnDemandCost {
            manifest_bytes: self.manifest_encoded.len() as u64,
            chunks_faulted: classification.chunks_faulted,
            blocks_faulted: classification.blocks_faulted,
            untouched_staged: classification.untouched_staged,
            round_trips: 1 + fetch.round_trips,
            round_trips_unbatched: 1 + fetch.fetched.len() as u64,
            fetched: fetch.fetched,
            cache_hits: classification.cache_hits + fetch.cache_hits,
            locally_derived: classification.locally_derived,
            request_bytes: fetch.request_bytes,
            transfer,
        }
    }

    /// Prices the dedup-transfer ("download the entire snapshot, but
    /// digest-addressed") column for the same snapshot without re-deriving
    /// any reference state: the session already classified every manifest
    /// digest at staging time, and its remote set is exactly what a
    /// full-state download would transfer.
    ///
    /// Equivalent to [`dedup_transfer_upto`] with the cache the session was
    /// created against, at none of its image-hashing cost.
    pub fn price_full_download(
        &self,
        store: &SnapshotStore,
        level: CompressionLevel,
    ) -> Result<DedupTransfer, CoreError> {
        let mut provider = store;
        let request = BlobRequest {
            digests: self.remote_digests.iter().map(|d| d.0).collect(),
        };
        let response = serve_verified(&mut provider, &request)?;
        let response_encoded = response.encode_to_vec();
        let transfer = CompressionStats::measure_stream(
            [
                self.manifest_encoded.as_slice(),
                response_encoded.as_slice(),
            ],
            level,
        );
        Ok(DedupTransfer {
            manifest_bytes: self.manifest_encoded.len() as u64,
            blobs_fetched: self.remote_digests.len() as u64,
            blobs_skipped: self.unique_manifest_digests - self.remote_digests.len() as u64,
            request_bytes: request.encoded_len() as u64,
            transfer,
        })
    }
}

/// Reconstructs the machine state at snapshot `upto_id` *lazily*: metadata
/// is applied eagerly, but chunk/block contents that differ from the local
/// reference image are only staged — they fault in (and are accounted as
/// transferred) when the workload actually touches them (paper §3.5).
///
/// Contents are staged from `cache` when it holds the digest, otherwise from
/// the store's pool, verified against the digest either way.  The manifest
/// itself is authenticated before the machine is returned: the Merkle root
/// over the manifest's leaf hashes (plus locally derived hashes for
/// unreferenced leaves) must equal the recorded state root, so a manifest
/// that lies about any reference is rejected before replay starts.
///
/// ```
/// use avm_core::ondemand::{materialize_on_demand, AuditorBlobCache};
/// use avm_core::snapshot::{capture, compute_state_root, SnapshotStore};
/// use avm_compress::CompressionLevel;
/// use avm_vm::bytecode::assemble;
/// use avm_vm::{GuestRegistry, Machine, VmImage};
///
/// let image = VmImage::bytecode("doc", 64 * 1024, assemble("halt", 0).unwrap(), 0, 0);
/// let registry = GuestRegistry::new();
/// let mut m = Machine::from_image(&image, &registry).unwrap();
/// m.memory_mut().write_u8(0x4000, 1).unwrap(); // diverges one chunk
/// m.memory_mut().write_u8(0x9000, 2).unwrap(); // diverges another chunk
/// let mut store = SnapshotStore::new();
/// store.push(capture(&mut m, 0, true));
///
/// // The auditor starts from metadata only; the root is already correct.
/// let mut cache = AuditorBlobCache::new();
/// let (mut lazy, session) =
///     materialize_on_demand(&store, 0, &image, &registry, &cache).unwrap();
/// assert_eq!(compute_state_root(&lazy), compute_state_root(&m));
/// assert_eq!(session.staged_chunks(), 2);
///
/// // Touch one of the two divergent chunks: only its 512 B blob is
/// // transferred.
/// assert_eq!(lazy.memory_mut().read_u8(0x4000).unwrap(), 1);
/// let cost = session
///     .finish(&lazy, &store, &mut cache, CompressionLevel::Default)
///     .unwrap();
/// assert_eq!(cost.chunks_faulted, 1);
/// assert_eq!(cost.untouched_staged, 1);
/// ```
pub fn materialize_on_demand(
    store: &SnapshotStore,
    upto_id: u64,
    image: &VmImage,
    registry: &GuestRegistry,
    cache: &AuditorBlobCache,
) -> Result<(Machine, OnDemandSession), CoreError> {
    let manifest = store.chain_manifest_upto(upto_id)?;
    materialize_with_manifest(manifest, store, image, registry, cache)
}

/// [`materialize_on_demand`] starting from an already-downloaded
/// [`ChainManifest`] — the form the audit endpoints use after fetching the
/// manifest over a transport.
///
/// `store` here is the *staging oracle*: the operator's pool the authentic
/// blob contents are staged from so replay can fault them in inline.  The
/// staged bytes are not accounted as transferred — only the settle-time
/// exchange ([`OnDemandSession::finish_with`]) pays for the blobs replay
/// actually touched, which is exactly the set the real protocol would have
/// fetched at fault time.
pub fn materialize_with_manifest(
    manifest: ChainManifest,
    store: &SnapshotStore,
    image: &VmImage,
    registry: &GuestRegistry,
    cache: &AuditorBlobCache,
) -> Result<(Machine, OnDemandSession), CoreError> {
    let upto_id = manifest.snapshot_id;
    let manifest_encoded = manifest.encode_to_vec();
    let mut machine = Machine::from_image(image, registry).map_err(CoreError::Vm)?;
    machine
        .restore_cpu_state(&manifest.cpu_state)
        .map_err(CoreError::Vm)?;
    machine
        .devices_mut()
        .restore_volatile(&manifest.dev_state)
        .map_err(CoreError::Vm)?;
    machine.set_control_state(manifest.step, manifest.halted, false);

    // Everything the auditor can derive from the reference image, keyed by
    // content: a blob whose bytes sit *anywhere* in the local machine never
    // needs to cross the wire (the same content-addressed skip the dedup
    // model applies).  The chunk/block hashes are needed below for the root
    // authentication anyway, so this map adds no extra hashing — and the
    // hashing itself runs on the worker pool.
    let mut local_content: HashMap<Digest, Vec<u8>> = HashMap::new();
    {
        let mem = machine.memory();
        let all_chunks: Vec<usize> = (0..mem.chunk_count()).collect();
        mem.prime_chunk_hashes(&all_chunks);
        for i in all_chunks {
            let hash = mem.chunk_hash(i).expect("chunk in range");
            local_content
                .entry(hash)
                .or_insert_with(|| mem.chunk(i).expect("chunk in range").to_vec());
        }
        let disk = &machine.devices().disk;
        let all_blocks: Vec<usize> = (0..disk.block_count()).collect();
        disk.prime_block_hashes(&all_blocks);
        for b in all_blocks {
            let hash = disk.block_hash(b).expect("block in range");
            local_content
                .entry(hash)
                .or_insert_with(|| disk.block(b).expect("block in range").to_vec());
        }
    }

    // Resolve a blob for staging: cache and locally-derivable content are
    // free; only the operator's pool costs a transfer when the blob is
    // touched (verified here — the same check a received blob would get,
    // performed when the modelled fetch is committed to).
    let resolve = |digest: &Digest| -> Result<(Vec<u8>, StagedSource), CoreError> {
        if let Some(cached) = cache.get(digest) {
            return Ok((cached.to_vec(), StagedSource::Cache));
        }
        if let Some(local) = local_content.get(digest) {
            return Ok((local.clone(), StagedSource::Local));
        }
        let payload = store
            .payload(digest)
            .ok_or_else(|| operator_missing(digest))?;
        verify_blob(digest, payload)?;
        Ok((payload.to_vec(), StagedSource::Remote))
    };

    let mut staged_chunks = HashMap::new();
    let mut staged_blocks = HashMap::new();
    let mut sources: HashMap<Digest, StagedSource> = HashMap::new();
    let mut remote_digests: Vec<Digest> = Vec::new();
    let mut unique_manifest: HashSet<Digest> = HashSet::new();
    for (idx, digest) in &manifest.mem_refs {
        unique_manifest.insert(*digest);
        let local = machine.memory().chunk_hash(*idx as usize).ok_or_else(|| {
            CoreError::Snapshot(format!("manifest references chunk {idx} out of range"))
        })?;
        if local == *digest {
            continue; // the reference image already yields this content here
        }
        let (content, source) = resolve(digest)?;
        machine
            .memory_mut()
            .stage_lazy_chunk(*idx as usize, content, *digest)
            .map_err(CoreError::Vm)?;
        staged_chunks.insert(*idx as usize, *digest);
        if sources.insert(*digest, source).is_none() && source == StagedSource::Remote {
            remote_digests.push(*digest);
        }
    }
    for (idx, digest) in &manifest.disk_refs {
        unique_manifest.insert(*digest);
        let local = machine
            .devices()
            .disk
            .block_hash(*idx as usize)
            .ok_or_else(|| {
                CoreError::Snapshot(format!("manifest references disk block {idx} out of range"))
            })?;
        if local == *digest {
            continue;
        }
        let (content, source) = resolve(digest)?;
        machine
            .devices_mut()
            .disk
            .stage_lazy_block(*idx as usize, content, *digest)
            .map_err(CoreError::Vm)?;
        staged_blocks.insert(*idx as usize, *digest);
        if sources.insert(*digest, source).is_none() && source == StagedSource::Remote {
            remote_digests.push(*digest);
        }
    }
    machine.clear_dirty_tracking();

    // Authenticate the manifest: the root over header leaves (from the
    // restored metadata) and per-leaf hashes (staged or locally derived)
    // must equal the recorded root.  stage_lazy_* seeded the hash caches, so
    // the ordinary tree builder computes exactly that root.
    let root = crate::snapshot::build_state_tree(&machine).root();
    if root != manifest.state_root {
        return Err(CoreError::Snapshot(format!(
            "manifest does not authenticate: derived root {} != recorded root {}",
            root.short_hex(),
            manifest.state_root.short_hex()
        )));
    }

    Ok((
        machine,
        OnDemandSession {
            snapshot_id: upto_id,
            state_root: manifest.state_root,
            manifest_encoded,
            staged_chunks,
            staged_blocks,
            sources,
            remote_digests,
            unique_manifest_digests: unique_manifest.len() as u64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{capture, capture_with_cache, SnapshotStore, StateTreeCache};
    use avm_vm::bytecode::assemble;
    use avm_vm::devices::DISK_BLOCK_SIZE;
    use avm_vm::{StopCondition, VmExit, PAGE_SIZE};

    /// A guest that, per packet, bumps a counter page selected by the first
    /// payload byte and mirrors 8 bytes of it to the matching disk block.
    fn image(pages: usize) -> VmImage {
        let src = r"
                movi r1, 0x8000     ; rx buffer
                movi r2, 64         ; max len
                movi r5, 0x10000    ; page region base
            loop:
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                loadb r3, r1        ; selector byte
                movi r4, 4096
                mul r3, r4
                add r3, r5          ; target = base + sel * 4096
                load r7, r3
                addi r7, 1
                store r7, r3
                movi r4, 8
                mov r8, r3
                sub r8, r5          ; disk offset = sel * 4096
                diskwr r8, r3, r4
                jmp loop
            ";
        let code = assemble(src, 0).unwrap();
        VmImage::bytecode("ondemand-test", (pages * PAGE_SIZE) as u64, code, 0, 0)
            .with_disk(vec![0u8; 8 * DISK_BLOCK_SIZE])
    }

    fn run_until_idle(m: &mut Machine) {
        loop {
            match m.run(StopCondition::Unbounded).unwrap() {
                VmExit::Idle | VmExit::Halted => break,
                _ => {}
            }
        }
    }

    /// Records a chain of `n` snapshots; packet `i` touches page selector
    /// `i % 6`.
    fn record_chain(n: u64) -> (Machine, SnapshotStore, VmImage, GuestRegistry) {
        let img = image(64);
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for i in 0..n {
            m.inject_packet(vec![(i % 6) as u8]);
            run_until_idle(&mut m);
            store.push(capture_with_cache(&mut m, &mut cache, i, i == 0));
        }
        (m, store, img, reg)
    }

    #[test]
    fn manifest_roundtrips_and_collapses_chain() {
        let (_, store, _, _) = record_chain(4);
        let manifest = store.chain_manifest_upto(3).unwrap();
        assert_eq!(manifest.snapshot_id, 3);
        // Effective refs are unique and sorted by index.
        for w in manifest.mem_refs.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for w in manifest.disk_refs.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Snapshot 0 was a full dump: the manifest covers every chunk.
        assert_eq!(manifest.mem_refs.len(), 64 * avm_vm::CHUNKS_PER_PAGE);
        let bytes = manifest.encode_to_vec();
        assert_eq!(ChainManifest::decode_exact(&bytes).unwrap(), manifest);
        assert!(store.chain_manifest_upto(99).is_err());
    }

    #[test]
    fn serve_blobs_answers_by_digest() {
        let (_, store, _, _) = record_chain(2);
        let manifest = store.chain_manifest_upto(1).unwrap();
        let some = manifest.mem_refs[0].1;
        let req = BlobRequest {
            digests: vec![some.0, [0u8; 32]],
        };
        let resp = store.serve_blobs(&req);
        assert_eq!(resp.blobs.len(), 2);
        assert_eq!(sha256(resp.blobs[0].as_ref().unwrap()), some);
        assert!(resp.blobs[1].is_none());
    }

    #[test]
    fn on_demand_machine_matches_materialized_state_lazily() {
        let (recorder, store, img, reg) = record_chain(5);
        let reference = store.materialize(4, &img, &reg).unwrap();
        let cache = AuditorBlobCache::new();
        let (mut lazy, session) = materialize_on_demand(&store, 4, &img, &reg, &cache).unwrap();
        // Roots agree before anything was transferred beyond the manifest.
        assert_eq!(session.state_root(), store.get(4).unwrap().state_root);
        assert_eq!(
            crate::snapshot::compute_state_root(&lazy),
            crate::snapshot::compute_state_root(&reference)
        );
        assert!(session.staged_chunks() > 0);
        assert_eq!(lazy.memory().faulted_chunks().len(), 0);

        // Drive both machines identically; roots must stay equal.
        let mut full = store.materialize(4, &img, &reg).unwrap();
        for sel in [1u8, 3, 1] {
            lazy.inject_packet(vec![sel]);
            full.inject_packet(vec![sel]);
            run_until_idle(&mut lazy);
            run_until_idle(&mut full);
        }
        assert_eq!(
            crate::snapshot::compute_state_root(&lazy),
            crate::snapshot::compute_state_root(&full)
        );
        // The workload touched a strict subset of the staged state.
        let mut auditor_cache = AuditorBlobCache::new();
        let cost = session
            .finish(&lazy, &store, &mut auditor_cache, CompressionLevel::Default)
            .unwrap();
        assert!(cost.chunks_faulted > 0);
        assert!(
            cost.untouched_staged > 0,
            "sparse touch must leave staged state untransferred"
        );
        assert!(cost.transfer_bytes() > 0);
        assert!(cost.transfer_compressed_bytes() > 0);
        assert!(cost.transfer_compressed_bytes() < cost.transfer_bytes());
        // Round-trip accounting: batching can never do worse than a fault-
        // at-a-time exchange, and pricing through any model preserves that.
        assert!(cost.round_trips >= 1);
        assert!(cost.round_trips <= cost.round_trips_unbatched);
        let model = RttModel::default();
        assert!(cost.latency_micros(&model) <= cost.latency_micros_unbatched(&model));
        let _ = recorder;
    }

    #[test]
    fn warm_cache_never_refetches() {
        let (_, store, img, reg) = record_chain(4);
        let mut cache = AuditorBlobCache::new();
        let run_check = |cache: &mut AuditorBlobCache| {
            let (mut lazy, session) = materialize_on_demand(&store, 3, &img, &reg, cache).unwrap();
            lazy.inject_packet(vec![2]);
            run_until_idle(&mut lazy);
            session
                .finish(&lazy, &store, cache, CompressionLevel::Default)
                .unwrap()
        };
        let first = run_check(&mut cache);
        assert!(!first.fetched.is_empty());
        let second = run_check(&mut cache);
        assert!(
            second.fetched.is_empty(),
            "every digest was cached after the first check: {:?}",
            second.fetched
        );
        assert_eq!(
            second.cache_hits,
            first.cache_hits + first.fetched.len() as u64
        );
        // The second check still paid for the manifest, nothing else — and
        // exactly one round trip (the manifest's).
        assert!(second.transfer_bytes() < first.transfer_bytes());
        assert_eq!(second.round_trips, 1);
        assert_eq!(second.round_trips_unbatched, 1);
    }

    #[test]
    fn image_seeded_cache_skips_derivable_blobs() {
        let (_, store, img, reg) = record_chain(3);
        let mut seeded = AuditorBlobCache::new();
        seeded.seed_from_machine(&Machine::from_image(&img, &reg).unwrap());
        assert!(!seeded.is_empty());
        // Full-state dedup download: with the seeded cache it only ships
        // divergent content; blobs skipped must cover all derivable ones.
        let dedup =
            dedup_transfer_upto(&store, 2, &img, &reg, &seeded, CompressionLevel::Default).unwrap();
        assert!(dedup.blobs_fetched > 0);
        assert!(dedup.blobs_skipped > 0);
        assert!(dedup.transfer.raw_bytes > dedup.manifest_bytes);
        // The dedup download is far below the section-based full download.
        assert!(dedup.transfer.raw_bytes < store.transfer_bytes_upto(2));
    }

    #[test]
    fn tampered_manifest_is_rejected() {
        let (_, store, img, reg) = record_chain(3);
        let cache = AuditorBlobCache::new();
        // Baseline sanity.
        assert!(materialize_on_demand(&store, 2, &img, &reg, &cache).is_ok());

        // A store whose recorded root was forged (the operator rewriting a
        // capture) must fail manifest authentication before replay starts.
        let img2 = image(64);
        let reg2 = GuestRegistry::new();
        let mut m = Machine::from_image(&img2, &reg2).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let mut snap = capture(&mut m, 0, true);
        snap.state_root = sha256(b"forged root");
        let mut forged = SnapshotStore::new();
        forged.push(snap);
        match materialize_on_demand(&forged, 0, &img2, &reg2, &cache) {
            Err(CoreError::Snapshot(msg)) => assert!(msg.contains("authenticate"), "{msg}"),
            other => panic!("expected authentication failure, got {other:?}"),
        }
    }

    #[test]
    fn fetch_blobs_dedups_and_verifies() {
        let (_, store, _, _) = record_chain(2);
        let manifest = store.chain_manifest_upto(1).unwrap();
        let d0 = manifest.mem_refs[0].1;
        let d1 = manifest.mem_refs[1].1;
        let mut cache = AuditorBlobCache::new();
        let fetch = fetch_blobs(
            &mut cache,
            &store,
            &[d0, d1, d0, d1],
            DEFAULT_BLOB_BATCH,
            CompressionLevel::Default,
        )
        .unwrap();
        // Duplicates collapsed (d0 may equal d1 if both chunks hold the same
        // content; either way nothing is fetched twice).
        let unique: HashSet<Digest> = [d0, d1].into_iter().collect();
        assert_eq!(fetch.fetched.len(), unique.len());
        assert!(cache.contains(&d0) && cache.contains(&d1));
        // Asking again: all hits, nothing shipped, zero round trips.
        let again = fetch_blobs(
            &mut cache,
            &store,
            &[d0, d1],
            DEFAULT_BLOB_BATCH,
            CompressionLevel::Default,
        )
        .unwrap();
        assert!(again.fetched.is_empty());
        assert_eq!(again.cache_hits, unique.len() as u64);
        assert_eq!(again.round_trips, 0);
        // Unknown digest is an operator failure.
        assert!(fetch_blobs(
            &mut cache,
            &store,
            &[sha256(b"unknown")],
            DEFAULT_BLOB_BATCH,
            CompressionLevel::Default
        )
        .is_err());
        // insert_verified rejects content not matching the digest.
        assert!(cache
            .insert_verified(sha256(b"a"), b"not a".to_vec())
            .is_err());
    }

    /// The satellite acceptance check for batching: a batched fetch returns
    /// exactly the same blobs as a one-digest-per-request fetch, in the same
    /// order, with a round-trip count that can only be lower.
    #[test]
    fn batched_fetch_equals_unbatched_with_fewer_round_trips() {
        let (_, store, _, _) = record_chain(3);
        let manifest = store.chain_manifest_upto(2).unwrap();
        let needed: Vec<Digest> = manifest
            .mem_refs
            .iter()
            .chain(&manifest.disk_refs)
            .map(|(_, d)| *d)
            .collect();

        let mut one_at_a_time = AuditorBlobCache::new();
        let unbatched = fetch_blobs(
            &mut one_at_a_time,
            &store,
            &needed,
            1,
            CompressionLevel::Default,
        )
        .unwrap();
        let mut batched_cache = AuditorBlobCache::new();
        let batched = fetch_blobs(
            &mut batched_cache,
            &store,
            &needed,
            DEFAULT_BLOB_BATCH,
            CompressionLevel::Default,
        )
        .unwrap();

        // Same blobs, same order, same payload bytes.
        assert_eq!(batched.fetched, unbatched.fetched);
        assert_eq!(batched.payload_bytes, unbatched.payload_bytes);
        for d in &batched.fetched {
            assert_eq!(batched_cache.get(d), one_at_a_time.get(d));
        }
        // Unbatched pays one round trip per blob; batching divides that.
        assert_eq!(unbatched.round_trips, unbatched.fetched.len() as u64);
        assert!(batched.round_trips <= unbatched.round_trips);
        assert!(
            batched.round_trips < unbatched.round_trips,
            "this chain fetches {} blobs, so batching must save round trips",
            unbatched.fetched.len()
        );
        // The RTT model orders the two accordingly.
        let model = RttModel::default();
        assert!(
            model.latency_micros(batched.round_trips, batched.response.raw_bytes)
                < model.latency_micros(unbatched.round_trips, unbatched.response.raw_bytes)
        );
    }

    /// On-demand replay keeps working against a pruned (rebased) store: the
    /// manifest of a surviving snapshot collapses the rebased chain, blobs
    /// still resolve, and the session settles.
    #[test]
    fn on_demand_works_after_prune() {
        let (_, mut store, img, reg) = record_chain(5);
        store.prune_upto(2).unwrap();
        let cache = AuditorBlobCache::new();
        let (mut lazy, session) = materialize_on_demand(&store, 4, &img, &reg, &cache).unwrap();
        let reference = store.materialize(4, &img, &reg).unwrap();
        assert_eq!(
            crate::snapshot::compute_state_root(&lazy),
            crate::snapshot::compute_state_root(&reference)
        );
        lazy.inject_packet(vec![1]);
        run_until_idle(&mut lazy);
        let mut auditor = AuditorBlobCache::new();
        let cost = session
            .finish(&lazy, &store, &mut auditor, CompressionLevel::Default)
            .unwrap();
        assert!(cost.chunks_faulted > 0);
        // Pruned snapshots have no manifest.
        assert!(store.chain_manifest_upto(1).is_err());
    }

    /// A cache persisted through a blob arena and recovered after a restart
    /// is the same cache: the second audit's settle-time exchange fetches
    /// nothing, because every digest it faults is already held.
    #[test]
    fn cache_persists_through_arena_and_skips_refetch_after_restart() {
        use avm_store::{ArenaConfig, ArenaStore, SimStorage};

        let (_, store, img, reg) = record_chain(4);

        // First audit with a cold cache: pays for its faulted blobs.
        let mut cache = AuditorBlobCache::new();
        let (mut lazy, session) = materialize_on_demand(&store, 3, &img, &reg, &cache).unwrap();
        lazy.inject_packet(vec![1]);
        run_until_idle(&mut lazy);
        let first = session
            .finish(&lazy, &store, &mut cache, CompressionLevel::Default)
            .unwrap();
        assert!(!first.fetched.is_empty());

        // Persist, "restart" (drop the arena handle), recover from the
        // surviving bytes.
        let storage = SimStorage::new();
        let mut arena = ArenaStore::create(storage.clone(), ArenaConfig::default()).unwrap();
        let written = cache.persist_into(&mut arena).unwrap();
        assert_eq!(written, cache.len() as u64);
        // Persisting again is free: the arena is content-addressed.
        assert_eq!(cache.persist_into(&mut arena).unwrap(), 0);
        drop(arena);
        let (_, scan) = ArenaStore::recover(storage, ArenaConfig::default()).unwrap();
        let recovered = AuditorBlobCache::from_arena_scan(&scan).unwrap();
        assert_eq!(recovered.len(), cache.len());
        assert_eq!(recovered.stored_bytes(), cache.stored_bytes());

        // Second audit of the same epoch with the recovered cache: every
        // fault is a cache hit, nothing crosses the wire.
        let (mut lazy, session) = materialize_on_demand(&store, 3, &img, &reg, &recovered).unwrap();
        lazy.inject_packet(vec![1]);
        run_until_idle(&mut lazy);
        let mut recovered = recovered;
        let second = session
            .finish(&lazy, &store, &mut recovered, CompressionLevel::Default)
            .unwrap();
        assert!(second.fetched.is_empty());
        assert!(second.cache_hits >= first.fetched.len() as u64);
    }

    /// Recovery re-verifies payloads: a flipped byte in the arena surfaces
    /// as a digest mismatch instead of poisoning later audits.
    #[test]
    fn corrupted_arena_blob_is_rejected_on_recovery() {
        let digest = sha256(b"payload");
        let mut scan_blob = b"payload".to_vec();
        scan_blob[0] ^= 1;
        let scan = avm_store::scan_arenas(&avm_store::SimStorage::new())
            .map(|mut s| {
                s.blobs.push((digest, scan_blob));
                s
            })
            .unwrap();
        assert!(AuditorBlobCache::from_arena_scan(&scan).is_err());
    }
}
