//! Host runtime: drives one or more AVMM nodes over the simulated network.
//!
//! The runtime plays the role of the host machines and the LAN in the
//! paper's testbed (§6.2): it advances simulated time, runs each AVMM in
//! slices, forwards outbound envelopes through [`SimNet`], delivers incoming
//! envelopes (with duplicate suppression), sends and matches
//! acknowledgments, and retransmits unacknowledged messages — "the original
//! message is retransmitted a few times" (§4.3).

use std::collections::{HashMap, HashSet};

use avm_net::{LinkConfig, NodeId, SimNet};
use avm_wire::{Decode, Encode};

use crate::envelope::{Envelope, EnvelopeKind};
use crate::error::CoreError;
use crate::recorder::{Avmm, HostClock};

/// Default retransmission timeout (µs).
const RETRANSMIT_TIMEOUT_US: u64 = 50_000;
/// Maximum retransmission attempts before a message is dropped.
const MAX_RETRANSMITS: u8 = 5;

/// An in-flight (not yet acknowledged) message.
#[derive(Debug, Clone)]
struct PendingSend {
    envelope: Envelope,
    dest: NodeId,
    last_sent_us: u64,
    attempts: u8,
}

struct HostEntry {
    avmm: Avmm,
    node_id: NodeId,
    pending: Vec<PendingSend>,
    seen: HashSet<(String, u64)>,
    delivered_payload_bytes: u64,
}

/// The multi-node scenario runtime.
pub struct Runtime {
    net: SimNet,
    hosts: HashMap<String, HostEntry>,
    node_names: HashMap<NodeId, String>,
    next_node: u32,
    steps_per_slice: u64,
}

impl Runtime {
    /// Creates a runtime over a network with the given link characteristics.
    pub fn new(link: LinkConfig) -> Runtime {
        Runtime {
            net: SimNet::new(link),
            hosts: HashMap::new(),
            node_names: HashMap::new(),
            next_node: 1,
            steps_per_slice: 200_000,
        }
    }

    /// Creates a runtime with LAN-like defaults.
    pub fn lan() -> Runtime {
        Runtime::new(LinkConfig::default())
    }

    /// Limits how many guest steps each host executes per tick.
    pub fn set_steps_per_slice(&mut self, steps: u64) {
        self.steps_per_slice = steps.max(1);
    }

    /// Adds a host running the given AVMM; returns its network node id.
    pub fn add_host(&mut self, avmm: Avmm) -> NodeId {
        let node_id = NodeId(self.next_node);
        self.next_node += 1;
        let name = avmm.name().to_string();
        self.node_names.insert(node_id, name.clone());
        self.hosts.insert(
            name,
            HostEntry {
                avmm,
                node_id,
                pending: Vec::new(),
                seen: HashSet::new(),
                delivered_payload_bytes: 0,
            },
        );
        node_id
    }

    /// Access to a host's AVMM.
    pub fn host(&self, name: &str) -> Option<&Avmm> {
        self.hosts.get(name).map(|h| &h.avmm)
    }

    /// Mutable access to a host's AVMM (tests use this to install cheats).
    pub fn host_mut(&mut self, name: &str) -> Option<&mut Avmm> {
        self.hosts.get_mut(name).map(|h| &mut h.avmm)
    }

    /// The underlying network (traffic statistics live here).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Network node id of a named host.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.hosts.get(name).map(|h| h.node_id)
    }

    /// Current simulated time in microseconds.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// Names of all hosts, sorted.
    pub fn host_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.hosts.keys().cloned().collect();
        v.sort();
        v
    }

    /// Runs one tick of `dt_us` simulated microseconds: every host executes a
    /// slice, outbound traffic enters the network, due packets are delivered
    /// and acknowledged, and stale messages are retransmitted.
    pub fn tick(&mut self, dt_us: u64) -> Result<(), CoreError> {
        let now = self.net.now();
        let clock = HostClock::at(now);
        let steps = self.steps_per_slice;

        // 1. Run every guest and queue its outbound envelopes.
        let names: Vec<String> = self.hosts.keys().cloned().collect();
        let mut to_transmit: Vec<(String, Envelope)> = Vec::new();
        for name in &names {
            let host = self.hosts.get_mut(name).expect("host exists");
            let outbound = host.avmm.run_slice(&clock, steps)?;
            for out in outbound {
                to_transmit.push((name.clone(), out.envelope));
            }
        }
        for (from, envelope) in to_transmit {
            self.transmit(&from, envelope, now);
        }

        // 2. Retransmit stale unacknowledged messages.
        self.retransmit(now);

        // 3. Advance the network and deliver everything that is due.
        let due = self.net.advance_to(now + dt_us);
        let mut acks_to_send: Vec<(String, Envelope)> = Vec::new();
        for delivery in due {
            let Some(dest_name) = self.node_names.get(&delivery.to).cloned() else {
                continue;
            };
            let envelope = match Envelope::decode_exact(&delivery.payload) {
                Ok(e) => e,
                Err(_) => continue, // corrupt frames are dropped
            };
            let host = self.hosts.get_mut(&dest_name).expect("host exists");
            match envelope.kind {
                EnvelopeKind::Data => {
                    let dedup_key = (envelope.from.clone(), envelope.msg_id);
                    if host.seen.contains(&dedup_key) {
                        // Duplicate (a retransmission we already accepted):
                        // do not log it again, but do re-acknowledge so the
                        // sender stops retransmitting.
                        continue;
                    }
                    match host.avmm.deliver(&envelope) {
                        Ok(Some(ack)) => {
                            host.seen.insert(dedup_key);
                            host.delivered_payload_bytes += envelope.payload.len() as u64;
                            acks_to_send.push((dest_name.clone(), ack));
                        }
                        Ok(None) => {
                            host.seen.insert(dedup_key);
                            host.delivered_payload_bytes += envelope.payload.len() as u64;
                        }
                        Err(CoreError::BadMessageSignature) => {
                            // A correct AVMM silently discards forged traffic.
                        }
                        Err(e) => return Err(e),
                    }
                }
                EnvelopeKind::Ack => {
                    // Match against the pending sends of the destination host.
                    host.pending.retain(|p| {
                        !(p.envelope.msg_id == envelope.msg_id && p.envelope.to == envelope.from)
                    });
                    // Let the AVMM log the acknowledgment.
                    let _ = host.avmm.deliver(&envelope);
                }
                EnvelopeKind::Challenge | EnvelopeKind::ChallengeResponse => {
                    // Challenge traffic is routed by higher-level harnesses.
                }
            }
        }
        for (from, ack) in acks_to_send {
            self.transmit_unreliable(&from, ack);
        }
        Ok(())
    }

    /// Runs the scenario for `duration_us` simulated microseconds in ticks of
    /// `tick_us`.
    pub fn run_for(&mut self, duration_us: u64, tick_us: u64) -> Result<(), CoreError> {
        let end = self.net.now() + duration_us;
        while self.net.now() < end {
            self.tick(tick_us.min(end - self.net.now()))?;
        }
        Ok(())
    }

    /// Queues a Data envelope for transmission with retransmission tracking.
    fn transmit(&mut self, from: &str, envelope: Envelope, now: u64) {
        let Some(dest_id) = self.hosts.get(&envelope.to).map(|h| h.node_id) else {
            return; // destination unknown: drop (mirrors a misaddressed packet)
        };
        let from_id = self.hosts[from].node_id;
        let bytes = envelope.encode_to_vec();
        self.net.send(from_id, dest_id, bytes);
        if envelope.kind == EnvelopeKind::Data {
            self.hosts
                .get_mut(from)
                .expect("host")
                .pending
                .push(PendingSend {
                    envelope,
                    dest: dest_id,
                    last_sent_us: now,
                    attempts: 1,
                });
        }
    }

    /// Sends an envelope without retransmission tracking (acknowledgments).
    fn transmit_unreliable(&mut self, from: &str, envelope: Envelope) {
        let Some(dest_id) = self.hosts.get(&envelope.to).map(|h| h.node_id) else {
            return;
        };
        let from_id = self.hosts[from].node_id;
        let bytes = envelope.encode_to_vec();
        self.net.send(from_id, dest_id, bytes);
    }

    fn retransmit(&mut self, now: u64) {
        let mut to_resend: Vec<(NodeId, NodeId, Vec<u8>)> = Vec::new();
        for host in self.hosts.values_mut() {
            host.pending.retain_mut(|p| {
                if now.saturating_sub(p.last_sent_us) < RETRANSMIT_TIMEOUT_US {
                    return true;
                }
                if p.attempts >= MAX_RETRANSMITS {
                    return false;
                }
                p.attempts += 1;
                p.last_sent_us = now;
                to_resend.push((host.node_id, p.dest, p.envelope.encode_to_vec()));
                true
            });
        }
        for (from, to, bytes) in to_resend {
            self.net.send(from, to, bytes);
        }
    }

    /// Number of messages a host is still waiting to have acknowledged.
    pub fn pending_count(&self, name: &str) -> usize {
        self.hosts.get(name).map(|h| h.pending.len()).unwrap_or(0)
    }

    /// Total guest payload bytes delivered into a host.
    pub fn delivered_payload_bytes(&self, name: &str) -> u64 {
        self.hosts
            .get(name)
            .map(|h| h.delivered_payload_bytes)
            .unwrap_or(0)
    }
}

impl core::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Runtime")
            .field("hosts", &self.host_names())
            .field("now_us", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvmmOptions;
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_vm::bytecode::assemble;
    use avm_vm::{GuestRegistry, VmImage};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    /// Guest "ping": sends a packet to `peer` every time the clock advances
    /// by at least 1000 µs, up to 5 packets, then idles forever.
    fn pinger_image(peer: &str) -> VmImage {
        let src = format!(
            r#"
                movi r10, 0          ; packets sent
                movi r11, 5          ; packet budget
                movi r12, 0          ; last send time
                movi r13, 1000       ; interval
            loop:
                clock r1
                mov r2, r1
                sub r2, r12
                cmp r2, r13
                jlt wait
                cmp r10, r11
                jge done
                movi r3, packet
                movi r4, {len}
                send r3, r4
                addi r10, 1
                mov r12, r1
            wait:
                idle
                jmp loop
            done:
                idle
                jmp done
            packet:
                .byte {peer_len}
                .ascii "{peer}"
                .ascii "ping"
            "#,
            len = 1 + peer.len() + 4,
            peer_len = peer.len(),
        );
        let code = assemble(&src, 0).unwrap();
        VmImage::bytecode("pinger", 64 * 1024, code, 0, 0)
    }

    /// Guest "echo": echoes every received packet back to its sender — the
    /// packet body carries the reply address.
    fn echo_image() -> VmImage {
        let src = r"
                movi r1, 0x8000
                movi r2, 512
            loop:
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                send r1, r0
                jmp loop
            ";
        VmImage::bytecode("echo", 64 * 1024, assemble(src, 0).unwrap(), 0, 0)
    }

    fn make_avmm(name: &str, image: &VmImage, seed: u64, peers: &[(&str, &SigningKey)]) -> Avmm {
        let mut avmm = Avmm::new(
            name,
            image,
            &GuestRegistry::new(),
            key(seed),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        for (peer, peer_key) in peers {
            avmm.add_peer(peer, peer_key.verifying_key());
        }
        avmm
    }

    #[test]
    fn two_hosts_exchange_and_acknowledge_traffic() {
        let alice_key = key(1);
        let bob_key = key(2);
        // Alice pings bob; bob's echo guest sends the packet back to whoever
        // is named in the header — which is "bob" itself in this synthetic
        // setup, so we address the pings to "alice" instead and check
        // delivery both ways via the echo.
        let alice_img = pinger_image("bob");
        let bob_img = echo_image();

        let alice = make_avmm("alice", &alice_img, 1, &[("bob", &bob_key)]);
        let bob = make_avmm("bob", &bob_img, 2, &[("alice", &alice_key)]);

        let mut rt = Runtime::lan();
        rt.set_steps_per_slice(50_000);
        rt.add_host(alice);
        rt.add_host(bob);
        assert_eq!(
            rt.host_names(),
            vec!["alice".to_string(), "bob".to_string()]
        );

        rt.run_for(20_000, 1_000).unwrap();

        let alice_stats = rt.host("alice").unwrap().stats();
        let bob_stats = rt.host("bob").unwrap().stats();
        assert!(alice_stats.packets_out >= 1, "alice sent nothing");
        assert!(bob_stats.packets_in >= 1, "bob received nothing");
        // The echo guest re-sent the packet addressed to "bob"; since the
        // header names bob itself, the runtime routes it back to bob — the
        // point is simply that traffic flows and is acknowledged.
        assert!(rt.net().stats(rt.node_id("alice").unwrap()).tx_packets > 0);
        // Acks eventually clear the pending queues.
        assert_eq!(rt.pending_count("alice"), 0);
        assert!(rt.delivered_payload_bytes("bob") > 0);
        assert!(rt.now() >= 20_000);
    }

    #[test]
    fn logs_remain_auditable_after_a_runtime_session() {
        let alice_key = key(1);
        let bob_key = key(2);
        let alice_img = pinger_image("bob");
        let bob_img = echo_image();
        let alice = make_avmm("alice", &alice_img, 1, &[("bob", &bob_key)]);
        let bob = make_avmm("bob", &bob_img, 2, &[("alice", &alice_key)]);

        let mut rt = Runtime::lan();
        rt.set_steps_per_slice(50_000);
        rt.add_host(alice);
        rt.add_host(bob);
        rt.run_for(20_000, 1_000).unwrap();

        // Audit bob against his true image: must pass.
        let bob_avmm = rt.host("bob").unwrap();
        let (prev, segment) = bob_avmm
            .log()
            .segment(1, bob_avmm.log().len() as u64)
            .unwrap();
        let report = crate::audit::audit_log(
            "bob",
            &prev,
            &segment,
            &[],
            &bob_key.verifying_key(),
            &bob_img,
            &GuestRegistry::new(),
        );
        assert!(report.passed(), "{:?}", report.fault());

        // Audit alice as well.
        let alice_avmm = rt.host("alice").unwrap();
        let (prev, segment) = alice_avmm
            .log()
            .segment(1, alice_avmm.log().len() as u64)
            .unwrap();
        let report = crate::audit::audit_log(
            "alice",
            &prev,
            &segment,
            &[],
            &alice_key.verifying_key(),
            &alice_img,
            &GuestRegistry::new(),
        );
        assert!(report.passed(), "{:?}", report.fault());
    }

    #[test]
    fn unknown_destination_is_dropped_gracefully() {
        let bob_key = key(2);
        let alice_img = pinger_image("nobody");
        let alice = make_avmm("alice", &alice_img, 1, &[("bob", &bob_key)]);
        let mut rt = Runtime::lan();
        rt.add_host(alice);
        rt.run_for(5_000, 1_000).unwrap();
        assert_eq!(rt.pending_count("alice"), 0);
    }
}
