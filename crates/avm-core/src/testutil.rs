//! Shared test fixtures: the worker guest + AVMM recording the spot-check
//! and endpoint test suites both audit.  One definition keeps their
//! "identical semantics across transports" comparisons honest — both sides
//! always record the same workload.

use crate::config::AvmmOptions;
use crate::envelope::{Envelope, EnvelopeKind};
use crate::recorder::{Avmm, HostClock};
use avm_crypto::keys::{SignatureScheme, SigningKey};
use avm_vm::bytecode::assemble;
use avm_vm::packet::encode_guest_packet;
use avm_vm::{GuestRegistry, VmImage};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RSA-512 signing key from a fixed seed.
pub(crate) fn key(seed: u64) -> SigningKey {
    let mut rng = StdRng::seed_from_u64(seed);
    SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
}

/// A guest that accumulates received bytes into memory and periodically
/// writes a counter to disk, so snapshots have real divergent content.
pub(crate) fn worker_image() -> VmImage {
    let src = r"
            movi r1, 0x8000
            movi r2, 512
            movi r5, 0x9000
        loop:
            clock r4
            recv r0, r1, r2
            cmp r0, r6
            jne got
            idle
            jmp loop
        got:
            load r3, r5
            add r3, r0
            store r3, r5
            movi r7, 0
            movi r8, 8
            diskwr r7, r5, r8
            send r1, r0
            jmp loop
        ";
    VmImage::bytecode("worker", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
        .with_disk(vec![0u8; 8192])
}

/// Records a session with `n_snapshots` snapshots, one after every
/// delivered packet.  The operator signs with `key(1)`, the peer with
/// `key(2)`.
pub(crate) fn record_with_snapshots(n_snapshots: u64) -> (Avmm, VmImage) {
    let image = worker_image();
    let alice_key = key(2);
    let mut bob = Avmm::new(
        "bob",
        &image,
        &GuestRegistry::new(),
        key(1),
        AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
    )
    .unwrap();
    bob.add_peer("alice", alice_key.verifying_key());
    let mut clock = HostClock::at(10);
    bob.run_slice(&clock, 10_000).unwrap();
    for i in 0..n_snapshots {
        clock.advance_to(clock.now() + 1_000);
        let payload = encode_guest_packet("alice", format!("work-{i}").as_bytes());
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            i + 1,
            payload,
            &alice_key,
            None,
        );
        bob.deliver(&env).unwrap();
        bob.run_slice(&clock, 100_000).unwrap();
        bob.take_snapshot();
    }
    (bob, image)
}
