//! Auditor/provider endpoints: one audit protocol over pluggable transports.
//!
//! The paper's audits are a *distributed* exchange — Alice downloads Bob's
//! log, snapshots and on-demand state over a real link (§3.5; §6.8 measures
//! the 192 µs-RTT testbed) — and this module is the seam that makes the
//! reproduction one: every download an audit performs is an
//! [`AuditRequest`]/[`AuditResponse`] exchange (defined in
//! [`avm_wire::audit`]) between an [`AuditClient`] and an [`AuditServer`],
//! carried by an [`AuditTransport`]:
//!
//! * [`DirectTransport`] answers each request in-process and *prices* it
//!   under a configurable [`RttModel`] — the modelled-latency path the
//!   spot-check wrappers in [`crate::spotcheck`] use, preserving their
//!   historical numbers bit for bit.
//! * [`SimNetTransport`] carries the same framed messages over an
//!   [`avm_net::SimNet`] link, *paying* simulated wall time per round trip
//!   (latency plus payload serialisation at the link bandwidth) and
//!   surviving deterministic packet loss by timeout-and-retransmit, matched
//!   by request id.
//!
//! Everything above the transport — digest selection, per-blob and manifest
//! authentication, caching, the byte/round-trip accounting — is shared, so a
//! spot check driven over the simulated network reaches the identical
//! verdict, faults, and transfer accounting as the in-process path; the only
//! thing that changes is the new wire-level [`TransportStats`] column
//! ([`crate::spotcheck::SpotCheckReport::transport`]).
//!
//! # The accounting plane vs the data plane
//!
//! Two reads deliberately bypass the transport, both via
//! [`AuditTransport::provider_store`]:
//!
//! 1. **Hypothetical columns.**  A spot-check report prices downloads that
//!    did *not* happen (the full-dump and dedup columns of §3.5) next to the
//!    one that did; pricing them must not add wire traffic.
//! 2. **Staging.**  On-demand replay stages authentic blob contents so the
//!    machine can fault them in inline; the *paid* exchange for exactly the
//!    faulted blobs happens at settle time over the transport
//!    ([`crate::ondemand::OnDemandSession::finish_with`]), which is the §3.5
//!    model: bytes cross the wire only for state the replay touched.
//!
//! # Example: a direct (in-process, RTT-modelled) audit endpoint
//!
//! ```
//! use avm_core::endpoint::{AuditClient, AuditServer, DirectTransport};
//! use avm_core::snapshot::{capture, SnapshotStore};
//! use avm_compress::CompressionLevel;
//! use avm_vm::bytecode::assemble;
//! use avm_vm::{GuestRegistry, Machine, VmImage};
//!
//! // A provider with one captured snapshot that diverges from the image.
//! let image = VmImage::bytecode("doc", 64 * 1024, assemble("halt", 0).unwrap(), 0, 0);
//! let registry = GuestRegistry::new();
//! let mut m = Machine::from_image(&image, &registry).unwrap();
//! m.memory_mut().write_u8(0x4000, 7).unwrap();
//! let mut store = SnapshotStore::new();
//! store.push(capture(&mut m, 0, true));
//!
//! // The auditor drives the protocol through a client over a transport.
//! let server = AuditServer::for_store(&store);
//! let mut client = AuditClient::new(DirectTransport::new(server));
//! let manifest = client.fetch_manifest(0).unwrap();
//! assert_eq!(manifest.snapshot_id, 0);
//!
//! // A digest-addressed full-state download over the same endpoint
//! // (its own manifest fetch plus one blob exchange).
//! let dedup = client
//!     .dedup_transfer(0, &image, &registry, CompressionLevel::Default)
//!     .unwrap();
//! assert!(dedup.blobs_fetched > 0);
//! assert_eq!(client.transport_stats().round_trips, 3);
//! assert!(client.transport_stats().elapsed_micros > 0);
//! ```

use avm_compress::{CompressionLevel, CompressionStats};
use avm_crypto::sha256::Digest;
use avm_log::{LogEntry, LogSource, TamperEvidentLog};
use avm_net::{LinkConfig, NodeId, SimNet};
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::attest::AttestChallenge;
use avm_wire::audit::{
    open_message, open_session_frame, seal_message, AuditRequest, AuditResponse, SegmentAddress,
    CLIENT_SESSION,
};
use avm_wire::{BlobRequest, BlobResponse, Decode, Encode, RttModel};

use crate::attest::{Attestor, LaunchPolicy};
use crate::audit::{audit_log, AuditReport};
use crate::error::{CoreError, FaultReason};
use crate::ondemand::{
    dedup_transfer_from_manifest, AuditorBlobCache, BlobProvider, ChainManifest, DedupTransfer,
};
use crate::paraudit::{replay_chunk_parallel, ParallelReplayStats};
use crate::replay::{ReplayOutcome, Replayer};
use crate::snapshot::SnapshotStore;
use crate::spotcheck::{
    snapshot_positions_in, SpotCheckReport, TRANSFER_COMPRESSION, TRANSFER_RTT,
};

// ---------------------------------------------------------------------------
// Provider endpoint
// ---------------------------------------------------------------------------

/// The provider endpoint of the audit protocol: answers every
/// [`AuditRequest`] from the operator's tamper-evident log and snapshot
/// store.
///
/// The server is *stateless* between requests (each request carries all its
/// addressing), which is what makes retransmitted requests on a lossy
/// transport harmless: a duplicate request yields a duplicate response, and
/// the client discards the copy it does not need.
///
/// ```
/// use avm_core::endpoint::AuditServer;
/// use avm_core::snapshot::{capture, SnapshotStore};
/// use avm_wire::audit::{AuditRequest, AuditResponse};
/// use avm_vm::bytecode::assemble;
/// use avm_vm::{GuestRegistry, Machine, VmImage};
///
/// let image = VmImage::bytecode("doc", 64 * 1024, assemble("halt", 0).unwrap(), 0, 0);
/// let registry = GuestRegistry::new();
/// let mut m = Machine::from_image(&image, &registry).unwrap();
/// let mut store = SnapshotStore::new();
/// store.push(capture(&mut m, 0, true));
///
/// let server = AuditServer::for_store(&store);
/// // A manifest fetch answers with the encoded chain manifest …
/// match server.handle(&AuditRequest::Manifest { snapshot_id: 0 }) {
///     AuditResponse::Manifest { manifest } => assert!(!manifest.is_empty()),
///     other => panic!("unexpected response {other:?}"),
/// }
/// // … and an unknown snapshot with an error the client maps back.
/// match server.handle(&AuditRequest::Manifest { snapshot_id: 9 }) {
///     AuditResponse::Error { message } => assert!(message.contains("not found")),
///     other => panic!("unexpected response {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AuditServer<'a> {
    log: Option<&'a dyn LogSource>,
    store: &'a SnapshotStore,
    attestor: Option<&'a Attestor>,
}

impl<'a> AuditServer<'a> {
    /// A provider endpoint serving both a log and a snapshot store — what a
    /// full AVMM operator exposes to auditors.
    pub fn new(log: &'a TamperEvidentLog, store: &'a SnapshotStore) -> AuditServer<'a> {
        AuditServer::with_log_source(log, store)
    }

    /// Like [`AuditServer::new`], but over any [`LogSource`] — in
    /// particular a durable provider's disk-backed segment log, so audits
    /// are served from exactly the bytes that survive a crash.
    pub fn with_log_source(log: &'a dyn LogSource, store: &'a SnapshotStore) -> AuditServer<'a> {
        AuditServer {
            log: Some(log),
            store,
            attestor: None,
        }
    }

    /// A provider endpoint serving only snapshot state (manifest, blob and
    /// section fetches); log-segment requests are answered with an error.
    pub fn for_store(store: &'a SnapshotStore) -> AuditServer<'a> {
        AuditServer {
            log: None,
            store,
            attestor: None,
        }
    }

    /// Attaches an attestation responder: [`AuditRequest::Attest`]
    /// challenges are answered with signed quotes over its envelope.
    /// Without one, attestation challenges get an error response.
    pub fn with_attestor(mut self, attestor: &'a Attestor) -> AuditServer<'a> {
        self.attestor = Some(attestor);
        self
    }

    /// The snapshot store this endpoint serves from.
    pub fn store(&self) -> &'a SnapshotStore {
        self.store
    }

    /// Answers one request.  Failures are returned as
    /// [`AuditResponse::Error`] with the message the in-process API would
    /// have raised, so clients surface identical errors on every transport.
    pub fn handle(&self, request: &AuditRequest) -> AuditResponse {
        match request {
            AuditRequest::Manifest { snapshot_id } => {
                match self.store.chain_manifest_upto(*snapshot_id) {
                    Ok(manifest) => AuditResponse::Manifest {
                        manifest: manifest.encode_to_vec(),
                    },
                    Err(e) => error_response(e),
                }
            }
            AuditRequest::Blobs(request) => AuditResponse::Blobs(self.store.serve_blobs(request)),
            AuditRequest::LogSegment(addr) => self.handle_log_segment(*addr),
            AuditRequest::Sections { upto_id } => {
                if self.store.get(*upto_id).is_none() {
                    return AuditResponse::Error {
                        message: format!("snapshot {upto_id} not found"),
                    };
                }
                AuditResponse::Sections {
                    stream: self.store.transfer_stream_upto(*upto_id),
                }
            }
            AuditRequest::Attest(challenge) => match self.attestor {
                Some(attestor) => AuditResponse::Attestation(attestor.quote(challenge)),
                None => AuditResponse::Error {
                    message: "provider serves no attestation".to_string(),
                },
            },
        }
    }

    fn handle_log_segment(&self, addr: SegmentAddress) -> AuditResponse {
        let Some(log) = self.log else {
            return AuditResponse::Error {
                message: "provider serves no log".to_string(),
            };
        };
        match addr {
            SegmentAddress::Seq { from_seq, to_seq } => {
                let to = if to_seq == 0 {
                    log.len() as u64
                } else {
                    to_seq
                };
                match log.segment(from_seq, to) {
                    Some((prev, entries)) => log_segment_response(prev, &entries),
                    None => AuditResponse::Error {
                        message: format!("log segment {from_seq}..{to} out of range"),
                    },
                }
            }
            SegmentAddress::Chunk {
                start_snapshot,
                chunk,
            } => self.handle_log_chunk(log, start_snapshot, chunk),
        }
    }

    /// Resolves a §3.5 chunk: the entries between the SNAPSHOT entry for
    /// `start_snapshot` (exclusive) and the SNAPSHOT entry `chunk` snapshots
    /// later (inclusive), or the end of the log.
    ///
    /// When the provider's own SNAPSHOT records do not all decode, an honest
    /// provider cannot resolve chunk boundaries; it returns the log *prefix*
    /// up to and including the first undecodable record.  The auditor
    /// re-scans what it received and reaches the malformed-log verdict
    /// itself — paying for exactly the entries it had to download to
    /// discover the corruption, like the in-process scan does.
    fn handle_log_chunk(
        &self,
        log: &dyn LogSource,
        start_snapshot: u64,
        chunk: u64,
    ) -> AuditResponse {
        let positions = match snapshot_positions_in(log.entries()) {
            Ok(positions) => positions,
            Err(FaultReason::MalformedLog { seq }) => {
                let upto = log
                    .entries()
                    .iter()
                    .position(|e| e.seq == seq)
                    .map_or(log.entries().len(), |i| i + 1);
                // The prefix starts at the first entry, whose chain anchor
                // is the genesis hash.
                return log_segment_response(Digest::ZERO, &log.entries()[..upto]);
            }
            // snapshot_positions only produces MalformedLog; be defensive.
            Err(other) => {
                return AuditResponse::Error {
                    message: other.to_string(),
                }
            }
        };
        let Some(start_pos) = positions
            .iter()
            .find(|(_, id, _)| *id == start_snapshot)
            .map(|(i, _, _)| *i)
        else {
            return AuditResponse::Error {
                message: format!("snapshot {start_snapshot} not in log"),
            };
        };
        // checked_add: a hostile request with chunk near u64::MAX must get
        // an open-ended chunk (no snapshot can match), not a panic.
        let end_id = start_snapshot.checked_add(chunk);
        let end_idx = positions
            .iter()
            .find(|(_, id, _)| Some(*id) == end_id)
            .map(|(i, _, _)| *i);
        let entries: &[LogEntry] = match end_idx {
            Some(end) => &log.entries()[start_pos + 1..=end],
            None => &log.entries()[start_pos + 1..],
        };
        log_segment_response(log.entries()[start_pos].hash, entries)
    }
}

fn log_segment_response(prev: Digest, entries: &[LogEntry]) -> AuditResponse {
    AuditResponse::LogSegment {
        prev_hash: prev.0,
        entries: entries.iter().map(|e| e.encode_to_vec()).collect(),
    }
}

fn error_response(e: CoreError) -> AuditResponse {
    AuditResponse::Error {
        message: match e {
            // The wrapper's message, not the Display form with its
            // "snapshot error:" prefix: the client re-wraps on receipt.
            CoreError::Snapshot(message) => message,
            other => other.to_string(),
        },
    }
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// Wire-level accounting of the exchanges a transport performed: the
/// *measured* column of an audit, beside the modelled one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Completed request/response exchanges.
    pub round_trips: u64,
    /// Framed request bytes handed to the wire, retransmissions included.
    pub request_bytes: u64,
    /// Framed response bytes accepted from the wire.
    pub response_bytes: u64,
    /// Requests retransmitted after a timeout (always 0 on a lossless
    /// transport).
    pub retransmissions: u64,
    /// Wall time the exchanges took: simulated network time for
    /// [`SimNetTransport`], [`RttModel`]-priced time for
    /// [`DirectTransport`].
    pub elapsed_micros: u64,
}

impl TransportStats {
    /// The stats accumulated since `earlier` (a snapshot of the same
    /// transport taken before some exchanges).
    pub fn since(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            round_trips: self.round_trips - earlier.round_trips,
            request_bytes: self.request_bytes - earlier.request_bytes,
            response_bytes: self.response_bytes - earlier.response_bytes,
            retransmissions: self.retransmissions - earlier.retransmissions,
            elapsed_micros: self.elapsed_micros - earlier.elapsed_micros,
        }
    }

    /// Total framed bytes in both directions.
    pub fn wire_bytes(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

/// Carries [`AuditRequest`]s to a provider and returns its
/// [`AuditResponse`]s, accounting every exchange.
///
/// Implementations differ only in *how* the messages travel (and therefore
/// in what [`TransportStats::elapsed_micros`] means); the protocol, the
/// payload bytes, and the verdict-relevant behaviour are identical across
/// transports — pinned by the `netaudit` experiment and the property tests.
pub trait AuditTransport {
    /// Performs one request/response exchange.
    fn exchange(&mut self, request: &AuditRequest) -> Result<AuditResponse, CoreError>;

    /// Accumulated wire-level accounting.
    fn stats(&self) -> TransportStats;

    /// The provider's snapshot store, used as the zero-cost *accounting
    /// plane*: staging contents for on-demand replay and pricing
    /// hypothetical (modelled) download columns.  Paid transfers go through
    /// [`AuditTransport::exchange`] — see the module docs.
    fn provider_store(&self) -> &SnapshotStore;
}

/// In-process transport: requests are answered synchronously by the wrapped
/// [`AuditServer`], and each exchange is *priced* (not simulated) under an
/// [`RttModel`] — one round trip plus the serialisation delay of both framed
/// payloads.
///
/// This is the transport behind the historical free-function audit API
/// ([`crate::spotcheck::spot_check`] and friends); it preserves those
/// numbers bit for bit while giving every audit the measured-latency column.
#[derive(Debug)]
pub struct DirectTransport<'a> {
    server: AuditServer<'a>,
    model: RttModel,
    stats: TransportStats,
    next_request_id: u64,
}

impl<'a> DirectTransport<'a> {
    /// A direct transport priced under [`TRANSFER_RTT`] (the 2010-era WAN
    /// all modelled spot-check columns use).
    pub fn new(server: AuditServer<'a>) -> DirectTransport<'a> {
        DirectTransport::with_model(server, TRANSFER_RTT)
    }

    /// A direct transport priced under `model`.  Pricing with
    /// [`LinkConfig::rtt_model`] of some link makes this transport predict
    /// exactly what [`SimNetTransport`] over that lossless link measures.
    pub fn with_model(server: AuditServer<'a>, model: RttModel) -> DirectTransport<'a> {
        DirectTransport {
            server,
            model,
            stats: TransportStats::default(),
            next_request_id: 1,
        }
    }

    /// The pricing model.
    pub fn model(&self) -> RttModel {
        self.model
    }
}

impl AuditTransport for DirectTransport<'_> {
    fn exchange(&mut self, request: &AuditRequest) -> Result<AuditResponse, CoreError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        // Seal and reopen both directions so the direct path exercises the
        // exact bytes a networked transport ships (and is priced on them).
        let request_packet = seal_message(request_id, request);
        let (_, request) = open_message::<AuditRequest>(&request_packet)
            .map_err(|e| CoreError::Snapshot(format!("audit request corrupt: {e}")))?;
        let response_packet = seal_message(request_id, &self.server.handle(&request));
        let (_, response) = open_message::<AuditResponse>(&response_packet)
            .map_err(|e| CoreError::Snapshot(format!("audit response corrupt: {e}")))?;
        self.stats.round_trips += 1;
        self.stats.request_bytes += request_packet.len() as u64;
        self.stats.response_bytes += response_packet.len() as u64;
        // Priced per packet — one RTT plus each payload's serialisation
        // delay — mirroring what the same exchange takes on a simulated
        // link with the matching configuration.
        self.stats.elapsed_micros += self.model.rtt_micros
            + self.model.latency_micros(0, request_packet.len() as u64)
            + self.model.latency_micros(0, response_packet.len() as u64);
        Ok(response)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn provider_store(&self) -> &SnapshotStore {
        self.server.store()
    }
}

/// Transport over the simulated network: every exchange is two framed
/// packets on an [`avm_net::SimNet`] link, paying real simulated latency and
/// serialisation delay, and surviving deterministic packet loss by
/// timeout-and-retransmit.
///
/// Responses are matched to requests by the id [`seal_message`] carries, so
/// a late or duplicated response (after a retransmission) is discarded
/// instead of being mistaken for the answer to a newer request.  The
/// provider is stateless, so retransmitted requests are simply answered
/// again.
#[derive(Debug)]
pub struct SimNetTransport<'a> {
    server: AuditServer<'a>,
    net: SimNet,
    auditor: NodeId,
    provider: NodeId,
    timeout_us: u64,
    max_attempts: u32,
    stats: TransportStats,
    next_request_id: u64,
}

/// Node id the auditor endpoint binds by default.
pub const AUDITOR_NODE: NodeId = NodeId(1);
/// Node id the provider endpoint binds by default.
pub const PROVIDER_NODE: NodeId = NodeId(2);

/// Default cap on send attempts per exchange before the transport gives up.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 16;

impl<'a> SimNetTransport<'a> {
    /// A two-node network where both directions use `link`.
    ///
    /// The retransmission timeout is derived from the link: eight one-way
    /// latencies plus the serialisation time of 1 MiB.  It bounds how long
    /// the auditor waits on a *silent* wire before resending; a response
    /// still in flight past the deadline (arbitrarily large sections
    /// streams serialise for longer) is waited out instead of being
    /// retransmitted into, so a lossless link never retransmits regardless
    /// of payload size (which is what keeps the measured latency equal to
    /// the modelled prediction).
    pub fn new(server: AuditServer<'a>, link: LinkConfig) -> SimNetTransport<'a> {
        let timeout_us = 8 * link.latency_us + link.serialise_micros(1 << 20);
        let mut net = SimNet::new(link);
        // Make both directed links explicit so callers inspecting
        // `network().all_stats()` see the topology they configured.
        net.set_link(AUDITOR_NODE, PROVIDER_NODE, link);
        net.set_link(PROVIDER_NODE, AUDITOR_NODE, link);
        SimNetTransport {
            server,
            net,
            auditor: AUDITOR_NODE,
            provider: PROVIDER_NODE,
            timeout_us,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            stats: TransportStats::default(),
            next_request_id: 1,
        }
    }

    /// Overrides the retransmission timeout (µs of simulated time an
    /// exchange waits for its response before resending the request).
    pub fn with_timeout(mut self, timeout_us: u64) -> SimNetTransport<'a> {
        self.timeout_us = timeout_us;
        self
    }

    /// Overrides the per-exchange attempt cap.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> SimNetTransport<'a> {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The simulated network (for traffic inspection: byte and packet
    /// counters per node, current simulated time).
    pub fn network(&self) -> &SimNet {
        &self.net
    }

    /// The retransmission timeout in simulated microseconds.
    pub fn timeout_us(&self) -> u64 {
        self.timeout_us
    }
}

impl AuditTransport for SimNetTransport<'_> {
    fn exchange(&mut self, request: &AuditRequest) -> Result<AuditResponse, CoreError> {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let packet = seal_message(request_id, request);
        let started_at = self.net.now();
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.stats.retransmissions += 1;
            }
            self.stats.request_bytes += packet.len() as u64;
            let _ = self.net.send(self.auditor, self.provider, packet.clone());
            let mut deadline = self.net.now() + self.timeout_us;
            // Drive deliveries (ours and the provider's) until the response
            // for *this* request id arrives or the timeout expires.  The
            // timer only fires on a *silent* wire: while any packet is still
            // in flight (a large response being serialised past the nominal
            // timeout, or a stale duplicate draining), the link is visibly
            // active and retransmitting into it would only duplicate
            // traffic — so the deadline stretches to the next delivery.
            while let Some(next_at) = self.net.next_delivery_at() {
                if next_at > deadline {
                    deadline = next_at;
                }
                for delivery in self.net.advance_to(next_at) {
                    // Both directions peek the session envelope first
                    // (borrowed, no copy): ids are matched before any
                    // message body — possibly a multi-megabyte sections
                    // stream on a stale duplicate — is decoded.
                    let Ok((sid, rid, body)) = open_session_frame(&delivery.payload) else {
                        continue;
                    };
                    if sid != CLIENT_SESSION {
                        continue;
                    }
                    if delivery.to == self.provider {
                        // The provider answers every (possibly duplicated)
                        // request it can decode, statelessly.
                        if let Ok(req) = AuditRequest::decode_exact(body) {
                            let response = self.server.handle(&req);
                            let _ = self.net.send(
                                self.provider,
                                self.auditor,
                                seal_message(rid, &response),
                            );
                        }
                    } else if delivery.to == self.auditor {
                        if rid != request_id {
                            continue; // stale response to an older exchange
                        }
                        let Ok(response) = AuditResponse::decode_exact(body) else {
                            continue;
                        };
                        self.stats.round_trips += 1;
                        self.stats.response_bytes += delivery.payload.len() as u64;
                        self.stats.elapsed_micros += self.net.now() - started_at;
                        return Ok(response);
                    }
                }
            }
            self.net.advance_to(deadline);
        }
        self.stats.elapsed_micros += self.net.now() - started_at;
        Err(CoreError::Snapshot(format!(
            "audit transport: no response after {} attempts ({} µs timeout each)",
            self.max_attempts, self.timeout_us
        )))
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn provider_store(&self) -> &SnapshotStore {
        self.server.store()
    }
}

/// Adapter: a transport is a [`BlobProvider`] — the settle-time blob
/// exchange of on-demand replay rides the audit protocol like every other
/// download.
struct TransportBlobs<'t, T: AuditTransport>(&'t mut T);

impl<T: AuditTransport> BlobProvider for TransportBlobs<'_, T> {
    fn exchange_blobs(&mut self, request: &BlobRequest) -> Result<BlobResponse, CoreError> {
        match self.0.exchange(&AuditRequest::Blobs(request.clone()))? {
            AuditResponse::Blobs(response) => Ok(response),
            AuditResponse::Error { message } => Err(CoreError::Snapshot(message)),
            other => Err(protocol_violation("Blobs", other.variant_name())),
        }
    }
}

pub(crate) fn protocol_violation(expected: &str, got: &str) -> CoreError {
    CoreError::Snapshot(format!(
        "audit protocol violation: expected {expected} response, got {got}"
    ))
}

// ---------------------------------------------------------------------------
// Auditor endpoint
// ---------------------------------------------------------------------------

/// The auditor endpoint: owns the persistent [`AuditorBlobCache`] and drives
/// every audit — spot checks in both §3.5 download modes, full log audits,
/// and standalone downloads — through an [`AuditTransport`].
///
/// The free functions in [`crate::spotcheck`] and [`crate::ondemand`] are
/// thin wrappers that build a client over a [`DirectTransport`]; building
/// one over a [`SimNetTransport`] runs the *same* audit with every byte paid
/// on the simulated network.
pub struct AuditClient<T: AuditTransport> {
    transport: T,
    cache: AuditorBlobCache,
}

impl<T: AuditTransport> AuditClient<T> {
    /// A client with an empty blob cache.
    pub fn new(transport: T) -> AuditClient<T> {
        AuditClient::with_cache(transport, AuditorBlobCache::new())
    }

    /// A client resuming with a persistent cache from earlier audits.
    pub fn with_cache(transport: T, cache: AuditorBlobCache) -> AuditClient<T> {
        AuditClient { transport, cache }
    }

    /// The client's persistent blob cache.
    pub fn cache(&self) -> &AuditorBlobCache {
        &self.cache
    }

    /// Consumes the client, returning the cache for the next session.
    pub fn into_cache(self) -> AuditorBlobCache {
        self.cache
    }

    /// The transport, for configuration or network inspection.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Accumulated wire-level accounting across every exchange this client
    /// performed.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// One exchange, with provider-side errors surfaced as [`CoreError`].
    fn request(&mut self, request: &AuditRequest) -> Result<AuditResponse, CoreError> {
        match self.transport.exchange(request)? {
            AuditResponse::Error { message } => Err(CoreError::Snapshot(message)),
            response => Ok(response),
        }
    }

    /// Downloads and decodes the chain manifest for `snapshot_id`.
    pub fn fetch_manifest(&mut self, snapshot_id: u64) -> Result<ChainManifest, CoreError> {
        match self.request(&AuditRequest::Manifest { snapshot_id })? {
            AuditResponse::Manifest { manifest } => ChainManifest::decode_exact(&manifest)
                .map_err(|e| CoreError::Snapshot(format!("manifest does not decode: {e}"))),
            other => Err(protocol_violation("Manifest", other.variant_name())),
        }
    }

    /// The attestation handshake: sends `challenge`, receives the
    /// provider's quote, and classifies it under `policy` at verifier time
    /// `now_us` — run *before* spot checks so the same session covers
    /// launch and lifetime.
    ///
    /// Returns the verdict plus the decoded envelope when the quote was
    /// well-formed enough to decode (even on mismatch verdicts, so callers
    /// can inspect what the provider claimed).
    pub fn attest(
        &mut self,
        challenge: &AttestChallenge,
        policy: &LaunchPolicy,
        now_us: u64,
    ) -> Result<
        (
            avm_attest::AttestVerdict,
            Option<avm_attest::AttestationEnvelope>,
        ),
        CoreError,
    > {
        match self.request(&AuditRequest::Attest(*challenge))? {
            AuditResponse::Attestation(quote) => Ok(policy.verify(&quote, challenge, now_us)),
            other => Err(protocol_violation("Attestation", other.variant_name())),
        }
    }

    /// Downloads a log segment by sequence range (`to_seq == 0` = end of
    /// log), returning the chain anchor and the decoded entries.
    pub fn fetch_log_segment(
        &mut self,
        from_seq: u64,
        to_seq: u64,
    ) -> Result<(Digest, Vec<LogEntry>), CoreError> {
        match self.request(&AuditRequest::LogSegment(SegmentAddress::Seq {
            from_seq,
            to_seq,
        }))? {
            AuditResponse::LogSegment { prev_hash, entries } => {
                Ok((Digest(prev_hash), decode_entries(&entries)?))
            }
            other => Err(protocol_violation("LogSegment", other.variant_name())),
        }
    }

    /// Downloads the §3.5 chunk of `chunk` segments starting at
    /// `start_snapshot` (see [`AuditServer::handle`] for the malformed-log
    /// prefix behaviour).
    pub fn fetch_log_chunk(
        &mut self,
        start_snapshot: u64,
        chunk: u64,
    ) -> Result<Vec<LogEntry>, CoreError> {
        match self.request(&AuditRequest::LogSegment(SegmentAddress::Chunk {
            start_snapshot,
            chunk,
        }))? {
            AuditResponse::LogSegment { entries, .. } => decode_entries(&entries),
            other => Err(protocol_violation("LogSegment", other.variant_name())),
        }
    }

    /// Downloads the whole-section transfer stream up to `upto_id` — the
    /// full-download model's state transfer, paid on the wire.
    pub fn fetch_sections(&mut self, upto_id: u64) -> Result<Vec<u8>, CoreError> {
        match self.request(&AuditRequest::Sections { upto_id })? {
            AuditResponse::Sections { stream } => Ok(stream),
            other => Err(protocol_violation("Sections", other.variant_name())),
        }
    }

    /// Full audit of the provider's log: downloads the segment
    /// `[from_seq, to_seq]` (`0` = end of log) with its chain anchor over
    /// the transport, then runs the complete syntactic + semantic check
    /// ([`crate::audit::audit_log`]) against `reference`.
    #[allow(clippy::too_many_arguments)]
    pub fn audit_log(
        &mut self,
        machine_name: &str,
        from_seq: u64,
        to_seq: u64,
        authenticators: &[avm_log::Authenticator],
        machine_key: &avm_crypto::keys::VerifyingKey,
        reference: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<AuditReport, CoreError> {
        let (prev, segment) = self.fetch_log_segment(from_seq, to_seq)?;
        Ok(audit_log(
            machine_name,
            &prev,
            &segment,
            authenticators,
            machine_key,
            reference,
            registry,
        ))
    }

    /// Digest-addressed download of the complete state at `upto_id`,
    /// consulting (but not populating) the client's cache — the §3.5
    /// "download an entire snapshot" mode, priced over this transport.
    pub fn dedup_transfer(
        &mut self,
        upto_id: u64,
        image: &VmImage,
        registry: &GuestRegistry,
        level: CompressionLevel,
    ) -> Result<DedupTransfer, CoreError> {
        let manifest = self.fetch_manifest(upto_id)?;
        let Self { transport, cache } = self;
        dedup_transfer_from_manifest(
            &manifest,
            &mut TransportBlobs(transport),
            image,
            registry,
            cache,
            level,
        )
    }

    /// Spot check with the snapshot state downloaded in full (sections over
    /// the transport) — the networked form of
    /// [`crate::spotcheck::spot_check`], field-for-field identical to it.
    pub fn spot_check(
        &mut self,
        start_snapshot: u64,
        k: u64,
        image: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<SpotCheckReport, CoreError> {
        self.spot_check_impl(start_snapshot, k, image, registry, false)
    }

    /// [`AuditClient::spot_check`] with the chunk's segments replayed in
    /// parallel on up to `workers` lanes (§6: segments between snapshots
    /// replay independently on multiple cores) — field-for-field identical
    /// to the serial report by construction (see [`crate::paraudit`] for
    /// the identity argument): the same two exchanges cross the wire in the
    /// same order, so verdict, fault attribution, byte and round-trip
    /// accounting all match.
    pub fn spot_check_parallel(
        &mut self,
        start_snapshot: u64,
        k: u64,
        image: &VmImage,
        registry: &GuestRegistry,
        workers: usize,
    ) -> Result<SpotCheckReport, CoreError> {
        self.spot_check_parallel_detail(start_snapshot, k, image, registry, workers)
            .map(|(report, _)| report)
    }

    /// [`AuditClient::spot_check_parallel`] plus the engine's execution
    /// telemetry (unit count, lanes, per-unit CPU) — the benchmark seam.
    pub fn spot_check_parallel_detail(
        &mut self,
        start_snapshot: u64,
        k: u64,
        image: &VmImage,
        registry: &GuestRegistry,
        workers: usize,
    ) -> Result<(SpotCheckReport, ParallelReplayStats), CoreError> {
        let stats_before = self.transport.stats();
        // Identical exchange sequence to the serial full-download path:
        // chunk, then sections.  Only the replay step differs.
        let entries = self.fetch_log_chunk(start_snapshot, k)?;
        let log_cost = CompressionStats::measure_stream(
            entries.iter().map(|e| e.encode_to_vec()),
            TRANSFER_COMPRESSION,
        );
        if let Err(fault) = snapshot_positions_in(&entries) {
            return Ok((
                SpotCheckReport {
                    start_snapshot,
                    chunk_size: k,
                    consistent: false,
                    fault: Some(fault),
                    entries_replayed: 0,
                    steps_replayed: 0,
                    snapshot_transfer_bytes: 0,
                    log_transfer_bytes: log_cost.raw_bytes,
                    snapshot_transfer_compressed_bytes: 0,
                    log_transfer_compressed_bytes: log_cost.compressed_bytes,
                    snapshot_transfer_dedup_bytes: 0,
                    snapshot_transfer_dedup_compressed_bytes: 0,
                    on_demand: None,
                    transport: self.transport.stats().since(&stats_before),
                },
                ParallelReplayStats::default(),
            ));
        }
        let stream = self.fetch_sections(start_snapshot)?;
        debug_assert_eq!(
            stream.len() as u64,
            self.transport
                .provider_store()
                .transfer_bytes_upto(start_snapshot),
            "section stream and full-dump accounting diverged"
        );
        let snapshot_cost = CompressionStats::measure(&stream, TRANSFER_COMPRESSION);
        let outcome = replay_chunk_parallel(
            &entries,
            image,
            registry,
            self.transport.provider_store(),
            start_snapshot,
            workers,
        )?;
        Ok((
            SpotCheckReport {
                start_snapshot,
                chunk_size: k,
                consistent: outcome.consistent,
                fault: outcome.fault,
                entries_replayed: outcome.progress.entries_replayed,
                steps_replayed: outcome.progress.steps_executed,
                snapshot_transfer_bytes: snapshot_cost.raw_bytes,
                log_transfer_bytes: log_cost.raw_bytes,
                snapshot_transfer_compressed_bytes: snapshot_cost.compressed_bytes,
                log_transfer_compressed_bytes: log_cost.compressed_bytes,
                snapshot_transfer_dedup_bytes: 0,
                snapshot_transfer_dedup_compressed_bytes: 0,
                on_demand: None,
                transport: self.transport.stats().since(&stats_before),
            },
            outcome.stats,
        ))
    }

    /// Spot check in on-demand mode (§3.5 incremental state requests),
    /// using and populating the client's persistent cache — the networked
    /// form of [`crate::spotcheck::spot_check_on_demand`], field-for-field
    /// identical to it.
    pub fn spot_check_on_demand(
        &mut self,
        start_snapshot: u64,
        k: u64,
        image: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<SpotCheckReport, CoreError> {
        self.spot_check_impl(start_snapshot, k, image, registry, true)
    }

    fn spot_check_impl(
        &mut self,
        start_snapshot: u64,
        k: u64,
        image: &VmImage,
        registry: &GuestRegistry,
        on_demand: bool,
    ) -> Result<SpotCheckReport, CoreError> {
        let stats_before = self.transport.stats();
        // 1. The log chunk, paid on the wire.  The provider resolves the
        //    boundaries; a provider whose SNAPSHOT records do not all decode
        //    returns its log prefix instead (see AuditServer::handle_log_chunk).
        let entries = self.fetch_log_chunk(start_snapshot, k)?;
        let log_cost = CompressionStats::measure_stream(
            entries.iter().map(|e| e.encode_to_vec()),
            TRANSFER_COMPRESSION,
        );
        // 2. Scan what was *received* — the auditor never trusts the
        //    provider's classification.  A corrupt SNAPSHOT record is itself
        //    the verdict; the log downloaded so far is the truthful cost.
        if let Err(fault) = snapshot_positions_in(&entries) {
            return Ok(SpotCheckReport {
                start_snapshot,
                chunk_size: k,
                consistent: false,
                fault: Some(fault),
                entries_replayed: 0,
                steps_replayed: 0,
                snapshot_transfer_bytes: 0,
                log_transfer_bytes: log_cost.raw_bytes,
                snapshot_transfer_compressed_bytes: 0,
                log_transfer_compressed_bytes: log_cost.compressed_bytes,
                snapshot_transfer_dedup_bytes: 0,
                snapshot_transfer_dedup_compressed_bytes: 0,
                on_demand: None,
                transport: self.transport.stats().since(&stats_before),
            });
        }
        // 3. Verdict by replay in the selected download mode, which also
        //    decides how the full-dump column is priced: in full-download
        //    mode it *is* the fetched stream, in on-demand mode it is
        //    modelled from the accounting plane (no stream crosses the
        //    wire, and the provider need not build one).
        let (snapshot_cost, consistent, fault, progress, dedup, on_demand_cost) = if !on_demand {
            // Full-download mode: the section stream crosses the wire and
            // is measured as the full-dump column; the machine materializes
            // from the oracle, which holds the same authenticated bytes the
            // stream carries.
            let stream = self.fetch_sections(start_snapshot)?;
            debug_assert_eq!(
                stream.len() as u64,
                self.transport
                    .provider_store()
                    .transfer_bytes_upto(start_snapshot),
                "section stream and full-dump accounting diverged"
            );
            let snapshot_cost = CompressionStats::measure(&stream, TRANSFER_COMPRESSION);
            let mut replayer = Replayer::from_snapshot(
                image,
                registry,
                self.transport.provider_store(),
                start_snapshot,
            )?;
            let (consistent, fault) = match replayer.replay(&entries) {
                ReplayOutcome::Consistent(_) => (true, None),
                ReplayOutcome::Fault(f) => (false, Some(f)),
            };
            (
                snapshot_cost,
                consistent,
                fault,
                replayer.summary(),
                None,
                None,
            )
        } else {
            // On-demand mode: manifest over the wire, divergent state staged
            // from the oracle, blobs paid at settle time for exactly what
            // replay faulted in.  The full-dump column is hypothetical here
            // and priced from the accounting plane.
            let snapshot_cost = self
                .transport
                .provider_store()
                .transfer_cost_upto(start_snapshot, TRANSFER_COMPRESSION);
            let manifest = self.fetch_manifest(start_snapshot)?;
            let (mut replayer, session) = Replayer::from_manifest_on_demand(
                manifest,
                image,
                registry,
                self.transport.provider_store(),
                &self.cache,
            )?;
            // Dedup column: priced from the session's staging classification
            // against the cache state at session start (accounting plane —
            // a hypothetical download adds no wire traffic).
            let dedup = session
                .price_full_download(self.transport.provider_store(), TRANSFER_COMPRESSION)?;
            let (consistent, fault) = match replayer.replay(&entries) {
                ReplayOutcome::Consistent(_) => (true, None),
                ReplayOutcome::Fault(f) => (false, Some(f)),
            };
            let Self { transport, cache } = self;
            let cost = session.finish_with(
                replayer.machine(),
                &mut TransportBlobs(transport),
                cache,
                TRANSFER_COMPRESSION,
            )?;
            (
                snapshot_cost,
                consistent,
                fault,
                replayer.summary(),
                Some(dedup),
                Some(cost),
            )
        };

        Ok(SpotCheckReport {
            start_snapshot,
            chunk_size: k,
            consistent,
            fault,
            entries_replayed: progress.entries_replayed,
            steps_replayed: progress.steps_executed,
            snapshot_transfer_bytes: snapshot_cost.raw_bytes,
            log_transfer_bytes: log_cost.raw_bytes,
            snapshot_transfer_compressed_bytes: snapshot_cost.compressed_bytes,
            log_transfer_compressed_bytes: log_cost.compressed_bytes,
            snapshot_transfer_dedup_bytes: dedup.as_ref().map_or(0, |d| d.transfer.raw_bytes),
            snapshot_transfer_dedup_compressed_bytes: dedup
                .as_ref()
                .map_or(0, |d| d.transfer.compressed_bytes),
            on_demand: on_demand_cost,
            transport: self.transport.stats().since(&stats_before),
        })
    }
}

pub(crate) fn decode_entries<B: AsRef<[u8]>>(encoded: &[B]) -> Result<Vec<LogEntry>, CoreError> {
    encoded
        .iter()
        .map(|bytes| {
            LogEntry::decode_exact(bytes.as_ref())
                .map_err(|e| CoreError::Snapshot(format!("log entry does not decode: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spotcheck::{spot_check, spot_check_on_demand};
    use crate::testutil::{key, record_with_snapshots};
    use avm_log::EntryKind;
    use avm_vm::packet::encode_guest_packet;

    /// The acceptance pin for the endpoint redesign: a spot check driven
    /// through `SimNetTransport` yields identical verdicts, faults and
    /// transfer/round-trip accounting to the in-process path, and its
    /// measured simulated latency on a lossless LAN link equals what a
    /// `DirectTransport` priced under the matching `RttModel` predicts —
    /// exactly per packet, and within 1% of the single-call model form.
    #[test]
    fn simnet_spot_check_matches_direct_on_lossless_lan() {
        let (bob, image) = record_with_snapshots(4);
        let registry = GuestRegistry::new();
        let link = LinkConfig::default();

        // In-process baseline through the free-function wrapper.
        let mut free_cache = AuditorBlobCache::new();
        let baseline = spot_check_on_demand(
            bob.log(),
            bob.snapshots(),
            2,
            1,
            &image,
            &registry,
            &mut free_cache,
        )
        .unwrap();

        // The same check over a direct transport priced under the link's
        // model, and over the simulated network itself.
        let mut direct = AuditClient::new(DirectTransport::with_model(
            AuditServer::new(bob.log(), bob.snapshots()),
            link.rtt_model(),
        ));
        let direct_report = direct
            .spot_check_on_demand(2, 1, &image, &registry)
            .unwrap();
        let mut sim = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            link,
        ));
        let sim_report = sim.spot_check_on_demand(2, 1, &image, &registry).unwrap();

        // Identical semantics across all three paths.
        assert!(baseline.consistent);
        assert_eq!(baseline.semantic(), direct_report.semantic());
        assert_eq!(baseline.semantic(), sim_report.semantic());
        assert_eq!(
            baseline.on_demand.as_ref().unwrap().fetched,
            sim_report.on_demand.as_ref().unwrap().fetched
        );

        // Identical wire accounting, and *exactly* equal measured time:
        // the simulated exchange pays per packet what the model prices.
        let d = direct_report.transport;
        let s = sim_report.transport;
        assert_eq!(s.retransmissions, 0);
        assert_eq!(d.round_trips, s.round_trips);
        assert_eq!(d.request_bytes, s.request_bytes);
        assert_eq!(d.response_bytes, s.response_bytes);
        assert_eq!(d.elapsed_micros, s.elapsed_micros);
        assert!(s.elapsed_micros > 0);

        // Within 1% of the single-call RttModel prediction (which
        // serialises both directions in one division).
        let predicted = sim_report.predicted_latency_micros(&link.rtt_model());
        let measured = sim_report.measured_latency_micros();
        assert!(
            measured.abs_diff(predicted) * 100 <= predicted,
            "measured {measured} µs vs predicted {predicted} µs"
        );

        // The network's own byte counters agree with the transport's.
        let net = sim.transport().network();
        assert_eq!(net.stats(AUDITOR_NODE).tx_bytes, s.request_bytes);
        assert_eq!(net.stats(AUDITOR_NODE).rx_bytes, s.response_bytes);
        assert_eq!(net.stats(PROVIDER_NODE).rx_bytes, s.request_bytes);
        assert_eq!(net.stats(AUDITOR_NODE).dropped, 0);
    }

    /// Full-download mode over the network: same equality, and the section
    /// stream actually crosses the wire (response bytes dominate the
    /// modelled full-dump column).
    #[test]
    fn simnet_full_download_spot_check_matches_and_pays_sections() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let baseline = spot_check(bob.log(), bob.snapshots(), 1, 1, &image, &registry).unwrap();
        let mut sim = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            LinkConfig::default(),
        ));
        let sim_report = sim.spot_check(1, 1, &image, &registry).unwrap();
        assert_eq!(baseline.semantic(), sim_report.semantic());
        assert!(sim_report.on_demand.is_none());
        // Log chunk + sections: two exchanges, carrying at least the
        // full-dump stream plus the log segment.
        assert_eq!(sim_report.transport.round_trips, 2);
        assert!(
            sim_report.transport.response_bytes
                >= sim_report.snapshot_transfer_bytes + sim_report.log_transfer_bytes
        );
    }

    /// Deterministic loss: the exchange retransmits on timeout and still
    /// reaches the identical verdict and accounting, paying extra wire
    /// bytes and wall time for every retry.
    #[test]
    fn lossy_link_retries_and_preserves_semantics() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let mut free_cache = AuditorBlobCache::new();
        let baseline = spot_check_on_demand(
            bob.log(),
            bob.snapshots(),
            1,
            1,
            &image,
            &registry,
            &mut free_cache,
        )
        .unwrap();

        let clean_link = LinkConfig::default();
        let lossy_link = LinkConfig {
            drop_every: 3,
            ..clean_link
        };
        let mut clean = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            clean_link,
        ));
        let clean_report = clean.spot_check_on_demand(1, 1, &image, &registry).unwrap();
        let mut lossy = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            lossy_link,
        ));
        let lossy_report = lossy.spot_check_on_demand(1, 1, &image, &registry).unwrap();

        assert_eq!(baseline.semantic(), lossy_report.semantic());
        assert_eq!(clean_report.semantic(), lossy_report.semantic());
        let lt = lossy_report.transport;
        assert!(
            lt.retransmissions > 0,
            "a drop-every-3 link must force retransmissions"
        );
        assert!(lt.request_bytes > clean_report.transport.request_bytes);
        assert!(
            lt.elapsed_micros > clean_report.transport.elapsed_micros,
            "every retransmission waits out a timeout"
        );
        let net = lossy.transport().network();
        assert!(net.stats(AUDITOR_NODE).dropped + net.stats(PROVIDER_NODE).dropped > 0);
    }

    /// A link that drops everything: the transport gives up after its
    /// attempt cap instead of spinning forever.
    #[test]
    fn fully_lossy_link_times_out() {
        let (bob, image) = record_with_snapshots(2);
        let registry = GuestRegistry::new();
        let black_hole = LinkConfig {
            drop_every: 1,
            ..LinkConfig::default()
        };
        let mut client = AuditClient::new(
            SimNetTransport::new(AuditServer::new(bob.log(), bob.snapshots()), black_hole)
                .with_max_attempts(3)
                .with_timeout(1_000),
        );
        let err = client.spot_check(0, 1, &image, &registry).unwrap_err();
        assert!(
            err.to_string().contains("no response after 3 attempts"),
            "{err}"
        );
        assert_eq!(client.transport_stats().round_trips, 0);
        assert_eq!(client.transport_stats().retransmissions, 2);
        // Simulated time advanced by the timeouts the auditor waited out.
        assert!(client.transport_stats().elapsed_micros >= 3_000);
    }

    /// A response whose serialisation outlives the nominal timeout is
    /// waited out, not retransmitted into: the retransmission timer only
    /// fires on a silent wire, so lossless links never retransmit no
    /// matter how large the payload or how small the timeout.
    #[test]
    fn in_flight_response_is_never_timed_out() {
        let (bob, image) = record_with_snapshots(2);
        let registry = GuestRegistry::new();
        // A slow link (1 byte/µs) and a timeout far below the section
        // stream's multi-hundred-millisecond serialisation time.
        let slow_link = LinkConfig {
            latency_us: 50,
            drop_every: 0,
            bytes_per_sec: 1_000_000,
        };
        let mut client = AuditClient::new(
            SimNetTransport::new(AuditServer::new(bob.log(), bob.snapshots()), slow_link)
                .with_timeout(200),
        );
        let report = client.spot_check(0, 1, &image, &registry).unwrap();
        assert!(report.consistent);
        assert_eq!(report.transport.retransmissions, 0);
        // The sections response alone serialises for far longer than the
        // 200 µs timeout — the wait was genuinely exercised.
        assert!(report.transport.response_bytes > 10_000);
        assert!(report.transport.elapsed_micros > report.transport.response_bytes);
    }

    /// A corrupt SNAPSHOT record reaches the same malformed-log verdict and
    /// truthful log accounting over the network: the provider returns its
    /// log prefix, the auditor re-scans what it received.
    #[test]
    fn malformed_log_verdict_is_identical_over_the_network() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        let mut snapshot_entries_seen = 0;
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Snapshot {
                snapshot_entries_seen += 1;
                if snapshot_entries_seen == 2 {
                    vec![0xff, 0x01]
                } else {
                    e.content.clone()
                }
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let baseline = spot_check(&rebuilt, bob.snapshots(), 0, 1, &image, &registry).unwrap();
        assert!(matches!(
            baseline.fault,
            Some(FaultReason::MalformedLog { .. })
        ));
        let mut sim = AuditClient::new(SimNetTransport::new(
            AuditServer::new(&rebuilt, bob.snapshots()),
            LinkConfig::default(),
        ));
        let sim_report = sim.spot_check(0, 1, &image, &registry).unwrap();
        assert_eq!(baseline.semantic(), sim_report.semantic());
        // Only the log-prefix exchange happened before the early verdict.
        assert_eq!(sim_report.transport.round_trips, 1);
    }

    /// Provider-side errors cross the wire with the message the in-process
    /// API raises.
    #[test]
    fn unknown_snapshot_error_is_identical_over_the_network() {
        let (bob, image) = record_with_snapshots(2);
        let registry = GuestRegistry::new();
        let direct_err = spot_check(bob.log(), bob.snapshots(), 9, 1, &image, &registry)
            .unwrap_err()
            .to_string();
        let mut sim = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            LinkConfig::default(),
        ));
        let sim_err = sim
            .spot_check(9, 1, &image, &registry)
            .unwrap_err()
            .to_string();
        assert_eq!(direct_err, sim_err);
        assert!(sim_err.contains("snapshot 9 not in log"), "{sim_err}");
    }

    /// A full audit (syntactic + semantic) driven over the wire: the honest
    /// log passes, a tampered one fails, from the same fetched segment.
    #[test]
    fn full_audit_over_the_wire() {
        let (bob, image) = record_with_snapshots(2);
        let registry = GuestRegistry::new();
        let bob_pub = key(1).verifying_key();
        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            LinkConfig::default(),
        ));
        let report = client
            .audit_log("bob", 1, 0, &[], &bob_pub, &image, &registry)
            .unwrap();
        assert!(report.passed(), "{:?}", report.fault());
        assert_eq!(report.entries_examined, bob.log().len() as u64);

        // A tampered log served by the same protocol fails the audit.
        let mut rebuilt = avm_log::TamperEvidentLog::new();
        for e in bob.log().entries() {
            let content = if e.kind == EntryKind::Send {
                let mut rec = crate::events::SendRecord::decode_exact(&e.content).unwrap();
                rec.payload = encode_guest_packet("alice", b"fabricated!");
                rec.encode_to_vec()
            } else {
                e.content.clone()
            };
            rebuilt.append(e.kind, content);
        }
        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::new(&rebuilt, bob.snapshots()),
            LinkConfig::default(),
        ));
        let report = client
            .audit_log("bob", 1, 0, &[], &bob_pub, &image, &registry)
            .unwrap();
        assert!(!report.passed());
    }

    /// The dedup download through a client equals the free-function model,
    /// and a store-only server rejects log requests.
    #[test]
    fn dedup_transfer_over_endpoints_matches_free_function() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let cache = AuditorBlobCache::new();
        let baseline = crate::ondemand::dedup_transfer_upto(
            bob.snapshots(),
            2,
            &image,
            &registry,
            &cache,
            TRANSFER_COMPRESSION,
        )
        .unwrap();
        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::for_store(bob.snapshots()),
            LinkConfig::default(),
        ));
        let over_net = client
            .dedup_transfer(2, &image, &registry, TRANSFER_COMPRESSION)
            .unwrap();
        assert_eq!(baseline, over_net);
        // Log requests against a store-only provider are a clean error.
        let err = client.fetch_log_chunk(0, 1).unwrap_err();
        assert!(err.to_string().contains("provider serves no log"), "{err}");
    }

    /// The warm-cache property survives the transport: a second networked
    /// check against the same client fetches nothing.
    #[test]
    fn warm_cache_over_the_network_refetches_nothing() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            LinkConfig::default(),
        ));
        let first = client
            .spot_check_on_demand(1, 1, &image, &registry)
            .unwrap();
        assert!(!first.on_demand.as_ref().unwrap().fetched.is_empty());
        let second = client
            .spot_check_on_demand(1, 1, &image, &registry)
            .unwrap();
        assert!(second.on_demand.as_ref().unwrap().fetched.is_empty());
        assert!(second.transport.response_bytes < first.transport.response_bytes);
    }

    /// Attest-then-audit over one simulated-network session: the launch
    /// measurement verifies first, then an ordinary spot check continues
    /// over the same client, and the attestation exchange pays wire bytes
    /// like everything else.  A provider without an attestor answers with a
    /// clean error.
    #[test]
    fn attest_then_audit_over_one_simnet_session() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let attestor = Attestor::for_avmm(&bob, &image).unwrap();
        let policy = LaunchPolicy::new(
            &image,
            "bob",
            avm_crypto::keys::SignatureScheme::Rsa(512),
            key(1).verifying_key(),
        );
        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()).with_attestor(&attestor),
            LinkConfig::default(),
        ));

        let challenge = AttestChallenge {
            nonce: crate::attest::challenge_nonce(1, 1_000),
            issued_at_us: 1_000,
        };
        let (verdict, envelope) = client.attest(&challenge, &policy, 2_000).unwrap();
        assert!(verdict.is_verified(), "verdict {verdict}");
        assert!(envelope.is_some());
        let attest_trips = client.transport_stats().round_trips;
        assert_eq!(attest_trips, 1);

        // Launch verified — the same session continues into spot checks.
        let report = client
            .spot_check_on_demand(1, 1, &image, &registry)
            .unwrap();
        assert!(report.consistent);
        assert!(client.transport_stats().round_trips > attest_trips);

        // No attestor attached → a clean provider-side error.
        let mut bare = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            LinkConfig::default(),
        ));
        let err = bare.attest(&challenge, &policy, 2_000).unwrap_err();
        assert!(
            err.to_string().contains("provider serves no attestation"),
            "{err}"
        );
    }
}
