//! The avm-core side of accountable attestation: building and serving
//! attestation envelopes for a recording [`Avmm`].
//!
//! `avm-attest` defines the envelope semantics over digests and opaque
//! bytes; this module binds them to the concrete types of the core — the
//! [`VmImage`] whose canonical serialization gets measured chunk by chunk,
//! the [`MetaRecord`] that is log entry 1's content, and the provider's
//! signing key that seals the boot log and signs the genesis authenticator.
//!
//! Two roles:
//!
//! * **Provider**: [`build_envelope`] reproduces the measured boot an AVMM
//!   performs at launch (measure image → measure META → seal) and anchors
//!   it with the genesis authenticator; an [`Attestor`] holds the encoded
//!   envelope and answers [`AttestChallenge`]s with signed quotes.  Every
//!   piece is deterministic — the same image, name and key always produce
//!   byte-identical envelopes, which is what lets a crash-recovered
//!   provider re-serve *the* envelope, not merely an equivalent one.
//! * **Auditor**: [`LaunchPolicy`] packages the reference launch state and
//!   freshness window; [`LaunchPolicy::verify`] classifies a quote into an
//!   [`AttestVerdict`].

use avm_attest::{
    make_quote, verify_quote, AttestVerdict, AttestationEnvelope, BootEventLog, ExpectedLaunch,
    ImageMeasurement, EVENT_GENESIS, EVENT_IMAGE,
};
use avm_crypto::keys::{SignatureScheme, SigningKey, VerifyingKey};
use avm_crypto::sha256::{sha256, Digest};
use avm_log::{Authenticator, EntryKind, LogEntry};
use avm_vm::{ImageKind, VmImage};
use avm_wire::attest::{AttestChallenge, AttestQuote};
use avm_wire::Encode;

use crate::error::CoreError;
use crate::events::MetaRecord;
use crate::recorder::Avmm;

/// The canonical byte serialization of a [`VmImage`] — the exact preimage
/// of [`VmImage::digest`], laid out flat so it can be measured chunk by
/// chunk.  Two images have equal canonical bytes iff they have equal
/// digests.
pub fn image_bytes(image: &VmImage) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(64 + image.disk.len());
    bytes.extend_from_slice(b"avm-image-v1");
    bytes.extend_from_slice(&(image.name.len() as u64).to_le_bytes());
    bytes.extend_from_slice(image.name.as_bytes());
    bytes.extend_from_slice(&image.mem_size.to_le_bytes());
    bytes.extend_from_slice(&(image.disk.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&image.disk);
    match &image.kind {
        ImageKind::Bytecode {
            code,
            load_addr,
            entry,
        } => {
            bytes.push(0u8);
            bytes.extend_from_slice(&(code.len() as u64).to_le_bytes());
            bytes.extend_from_slice(code);
            bytes.extend_from_slice(&load_addr.to_le_bytes());
            bytes.extend_from_slice(&entry.to_le_bytes());
        }
        ImageKind::Native { program, config } => {
            bytes.push(1u8);
            bytes.extend_from_slice(&(program.len() as u64).to_le_bytes());
            bytes.extend_from_slice(program.as_bytes());
            bytes.extend_from_slice(&(config.len() as u64).to_le_bytes());
            bytes.extend_from_slice(config);
        }
    }
    bytes
}

/// Chunk-granular measurement of `image`'s canonical bytes.
pub fn measure_image(image: &VmImage) -> ImageMeasurement {
    ImageMeasurement::measure(&image_bytes(image))
}

/// The META record content an honest launch of `image` as `node_name` under
/// `scheme` records as log entry 1 (must mirror [`Avmm::new`]).
pub fn expected_meta(image: &VmImage, node_name: &str, scheme: SignatureScheme) -> Vec<u8> {
    MetaRecord {
        image_digest: image.digest(),
        node_name: node_name.to_string(),
        scheme_label: scheme.label(),
    }
    .encode_to_vec()
}

/// The reference launch state an auditor expects of a provider running
/// `image` as `node_name` under `scheme`.
pub fn expected_launch(
    image: &VmImage,
    node_name: &str,
    scheme: SignatureScheme,
) -> ExpectedLaunch {
    ExpectedLaunch {
        measurement: measure_image(image),
        meta_content: expected_meta(image, node_name, scheme),
    }
}

/// Builds the attestation envelope for a launch whose META log entry is
/// `meta_entry`: re-runs the measured boot (measure image root, measure
/// META content, seal) and signs the genesis authenticator over the entry.
///
/// Deterministic: RSA signing in this workspace is deterministic, so the
/// same `(image, meta_entry, key)` always yields byte-identical envelopes.
pub fn build_envelope_from_parts(
    image: &VmImage,
    meta_entry: &LogEntry,
    key: &SigningKey,
) -> Result<AttestationEnvelope, CoreError> {
    if meta_entry.kind != EntryKind::Meta || meta_entry.seq != 1 {
        return Err(CoreError::Snapshot(
            "attestation requires the log's initial META entry".to_string(),
        ));
    }
    let measurement = measure_image(image);
    let mut boot = BootEventLog::new();
    boot.measure(EVENT_IMAGE, measurement.root.as_bytes())
        .expect("fresh boot log is unsealed");
    boot.measure(EVENT_GENESIS, &meta_entry.content)
        .expect("fresh boot log is unsealed");
    boot.seal(key);
    let genesis = Authenticator::create(key, meta_entry, Digest::ZERO);
    Ok(AttestationEnvelope {
        image: measurement,
        boot,
        meta_content: meta_entry.content.clone(),
        genesis,
    })
}

/// [`build_envelope_from_parts`] for a live recorder: uses its first log
/// entry and its signing key.  Fails if `image` is not the image the AVMM
/// actually booted.
pub fn build_envelope(avmm: &Avmm, image: &VmImage) -> Result<AttestationEnvelope, CoreError> {
    if image.digest() != avmm.image_digest() {
        return Err(CoreError::Snapshot(
            "attestation image is not the booted image".to_string(),
        ));
    }
    let meta_entry = avmm
        .log()
        .entries()
        .first()
        .ok_or_else(|| CoreError::Snapshot("empty log cannot attest".to_string()))?;
    build_envelope_from_parts(image, meta_entry, avmm.signing_key())
}

/// The provider-side attestation responder: holds one encoded envelope and
/// signs a fresh quote per challenge.
#[derive(Debug, Clone)]
pub struct Attestor {
    envelope_bytes: Vec<u8>,
    key: SigningKey,
    /// Tamper harness: when set, every challenge is answered with this
    /// canned quote — a replay attack in a box.
    replayed: Option<AttestQuote>,
}

impl Attestor {
    /// An attestor serving `envelope`, signing quotes with `key`.
    pub fn new(envelope: &AttestationEnvelope, key: SigningKey) -> Attestor {
        Attestor::from_envelope_bytes(envelope.encode_to_vec(), key)
    }

    /// An attestor serving already-encoded envelope bytes (e.g. the bytes a
    /// recovered provider loaded back from its blob arena).
    pub fn from_envelope_bytes(envelope_bytes: Vec<u8>, key: SigningKey) -> Attestor {
        Attestor {
            envelope_bytes,
            key,
            replayed: None,
        }
    }

    /// An attestor for a live recorder's launch.
    pub fn for_avmm(avmm: &Avmm, image: &VmImage) -> Result<Attestor, CoreError> {
        let envelope = build_envelope(avmm, image)?;
        Ok(Attestor::new(&envelope, avmm.signing_key().clone()))
    }

    /// The encoded envelope this attestor serves.
    pub fn envelope_bytes(&self) -> &[u8] {
        &self.envelope_bytes
    }

    /// Digest of the served envelope.
    pub fn envelope_digest(&self) -> Digest {
        sha256(&self.envelope_bytes)
    }

    /// Tamper harness: answer every challenge by replaying `quote` instead
    /// of signing a fresh one (the stale-nonce attack).
    pub fn with_replayed_quote(mut self, quote: AttestQuote) -> Attestor {
        self.replayed = Some(quote);
        self
    }

    /// Answers `challenge` with a quote binding the envelope to its nonce.
    pub fn quote(&self, challenge: &AttestChallenge) -> AttestQuote {
        if let Some(canned) = &self.replayed {
            return canned.clone();
        }
        make_quote(&self.envelope_bytes, challenge, &self.key)
    }
}

/// The auditor-side attestation policy: reference launch state, the
/// provider's key, and the freshness window.
#[derive(Debug, Clone)]
pub struct LaunchPolicy {
    /// The reference launch (image measurement + expected META content).
    pub expected: ExpectedLaunch,
    /// The provider's verification key.
    pub provider_key: VerifyingKey,
    /// Freshness window in microseconds (see
    /// [`avm_wire::attest::DEFAULT_FRESHNESS_US`]).
    pub freshness_us: u64,
}

impl LaunchPolicy {
    /// A policy expecting `image` run as `node_name` under `scheme`, with
    /// the default freshness window.
    pub fn new(
        image: &VmImage,
        node_name: &str,
        scheme: SignatureScheme,
        provider_key: VerifyingKey,
    ) -> LaunchPolicy {
        LaunchPolicy {
            expected: expected_launch(image, node_name, scheme),
            provider_key,
            freshness_us: avm_wire::attest::DEFAULT_FRESHNESS_US,
        }
    }

    /// Overrides the freshness window.
    pub fn with_freshness_us(mut self, freshness_us: u64) -> LaunchPolicy {
        self.freshness_us = freshness_us;
        self
    }

    /// Verifies `quote` against `challenge` at verifier time `now_us`.
    pub fn verify(
        &self,
        quote: &AttestQuote,
        challenge: &AttestChallenge,
        now_us: u64,
    ) -> (AttestVerdict, Option<AttestationEnvelope>) {
        verify_quote(
            quote,
            challenge,
            now_us,
            self.freshness_us,
            &self.expected,
            &self.provider_key,
        )
    }
}

/// Derives a deterministic-but-session-unique challenge nonce.  Real
/// deployments draw nonces from an RNG; the simulation derives them from
/// the session id and issue time so runs are reproducible while still
/// giving every auditor session a distinct nonce.
pub fn challenge_nonce(session_id: u64, issued_at_us: u64) -> [u8; 32] {
    let mut preimage = Vec::with_capacity(32);
    preimage.extend_from_slice(b"avm-attest-nonce");
    preimage.extend_from_slice(&session_id.to_le_bytes());
    preimage.extend_from_slice(&issued_at_us.to_le_bytes());
    *sha256(&preimage).as_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{key, record_with_snapshots};

    #[test]
    fn image_bytes_is_the_digest_preimage() {
        let (_, image) = record_with_snapshots(1);
        assert_eq!(sha256(&image_bytes(&image)), image.digest());
    }

    #[test]
    fn envelope_is_deterministic_and_verifies() {
        let (bob, image) = record_with_snapshots(2);
        let a = build_envelope(&bob, &image).unwrap();
        let b = build_envelope(&bob, &image).unwrap();
        assert_eq!(a.encode_to_vec(), b.encode_to_vec());

        let policy = LaunchPolicy::new(
            &image,
            "bob",
            avm_crypto::keys::SignatureScheme::Rsa(512),
            key(1).verifying_key(),
        );
        let challenge = AttestChallenge {
            nonce: challenge_nonce(1, 100),
            issued_at_us: 100,
        };
        let attestor = Attestor::for_avmm(&bob, &image).unwrap();
        let quote = attestor.quote(&challenge);
        let (verdict, envelope) = policy.verify(&quote, &challenge, 200);
        assert_eq!(verdict, AttestVerdict::Verified);
        assert_eq!(envelope.unwrap(), a);
    }

    #[test]
    fn wrong_image_is_rejected_at_build_time() {
        let (bob, _) = record_with_snapshots(1);
        let other = VmImage::bytecode("other", 64 * 1024, vec![0u8; 4], 0, 0);
        assert!(build_envelope(&bob, &other).is_err());
    }

    #[test]
    fn replayed_quotes_are_stale() {
        let (bob, image) = record_with_snapshots(1);
        let policy = LaunchPolicy::new(
            &image,
            "bob",
            avm_crypto::keys::SignatureScheme::Rsa(512),
            key(1).verifying_key(),
        );
        let old = AttestChallenge {
            nonce: challenge_nonce(7, 50),
            issued_at_us: 50,
        };
        let attestor = Attestor::for_avmm(&bob, &image).unwrap();
        let replayer = attestor.clone().with_replayed_quote(attestor.quote(&old));
        let fresh = AttestChallenge {
            nonce: challenge_nonce(1, 400),
            issued_at_us: 400,
        };
        let (verdict, _) = policy.verify(&replayer.quote(&fresh), &fresh, 500);
        assert_eq!(verdict, AttestVerdict::StaleNonce);
    }
}
