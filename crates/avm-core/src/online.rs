//! Online auditing: replaying another machine's log while the execution is
//! still in progress (paper §6.11).
//!
//! An [`OnlineAuditor`] holds a replayer and consumes log entries
//! incrementally as they stream in.  Because replay is slightly slower than
//! the original execution, the auditor can fall behind; the lag (in log
//! entries and machine steps) is exposed so the runtime can, as the paper
//! suggests, throttle the original execution a few percent to let auditors
//! keep up.

use avm_log::LogEntry;
use avm_vm::{GuestRegistry, VmImage};

use crate::error::{CoreError, FaultReason};
use crate::replay::Replayer;

/// State of an online audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlineStatus {
    /// All entries received so far replayed consistently.
    Consistent,
    /// A fault has been detected; the audit is over.
    Faulty(FaultReason),
}

/// An incremental auditor for one remote machine.
pub struct OnlineAuditor {
    machine_name: String,
    replayer: Replayer,
    status: OnlineStatus,
    entries_received: u64,
    entries_replayed: u64,
    steps_replayed_total: u64,
    budget_backlog: Vec<LogEntry>,
}

impl OnlineAuditor {
    /// Creates an online auditor for `machine_name`, replaying against the
    /// given reference image.
    pub fn new(
        machine_name: &str,
        reference: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<OnlineAuditor, CoreError> {
        Ok(OnlineAuditor {
            machine_name: machine_name.to_string(),
            replayer: Replayer::from_image(reference, registry)?,
            status: OnlineStatus::Consistent,
            entries_received: 0,
            entries_replayed: 0,
            steps_replayed_total: 0,
            budget_backlog: Vec::new(),
        })
    }

    /// Name of the audited machine.
    pub fn machine_name(&self) -> &str {
        &self.machine_name
    }

    /// Current status.
    pub fn status(&self) -> &OnlineStatus {
        &self.status
    }

    /// True once a fault has been found.
    pub fn is_faulty(&self) -> bool {
        matches!(self.status, OnlineStatus::Faulty(_))
    }

    /// Entries received but not yet replayed (the auditor's lag).
    pub fn lag_entries(&self) -> u64 {
        self.entries_received - self.entries_replayed
    }

    /// Total entries received so far.
    pub fn entries_received(&self) -> u64 {
        self.entries_received
    }

    /// Total entries replayed so far.
    pub fn entries_replayed(&self) -> u64 {
        self.entries_replayed
    }

    /// Total machine steps replayed so far (proxy for auditing CPU cost).
    pub fn steps_replayed(&self) -> u64 {
        self.steps_replayed_total
    }

    /// Feeds newly produced log entries into the auditor's backlog.
    pub fn feed(&mut self, entries: &[LogEntry]) {
        if self.is_faulty() {
            return;
        }
        self.entries_received += entries.len() as u64;
        self.budget_backlog.extend_from_slice(entries);
    }

    /// Replays up to `max_entries` entries from the backlog, returning how
    /// many were processed.  A fault stops the audit immediately.
    pub fn process(&mut self, max_entries: u64) -> u64 {
        if self.is_faulty() {
            return 0;
        }
        let n = (max_entries as usize).min(self.budget_backlog.len());
        let before_steps = self.replayer.machine().step_count();
        for entry in self.budget_backlog.drain(..n).collect::<Vec<_>>() {
            self.entries_replayed += 1;
            if let Err(fault) = self.replayer.replay_entry(&entry) {
                self.status = OnlineStatus::Faulty(fault);
                break;
            }
        }
        self.steps_replayed_total += self.replayer.machine().step_count() - before_steps;
        n as u64
    }

    /// Drains the entire backlog (used at the end of a session).
    pub fn finish(&mut self) -> &OnlineStatus {
        while !self.budget_backlog.is_empty() && !self.is_faulty() {
            self.process(u64::MAX);
        }
        &self.status
    }
}

impl core::fmt::Debug for OnlineAuditor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OnlineAuditor")
            .field("machine", &self.machine_name)
            .field("received", &self.entries_received)
            .field("replayed", &self.entries_replayed)
            .field("faulty", &self.is_faulty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvmmOptions;
    use crate::envelope::{Envelope, EnvelopeKind};
    use crate::recorder::{Avmm, HostClock};
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_log::EntryKind;
    use avm_vm::bytecode::assemble;
    use avm_vm::packet::encode_guest_packet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn echo_image() -> VmImage {
        let src = r"
                movi r1, 0x8000
                movi r2, 512
            loop:
                clock r4
                recv r0, r1, r2
                cmp r0, r6
                jne got
                idle
                jmp loop
            got:
                send r1, r0
                jmp loop
            ";
        VmImage::bytecode("echo", 128 * 1024, assemble(src, 0).unwrap(), 0, 0)
    }

    #[test]
    fn online_audit_keeps_up_with_honest_execution() {
        let image = echo_image();
        let alice_key = key(2);
        let mut bob = Avmm::new(
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut auditor = OnlineAuditor::new("bob", &image, &GuestRegistry::new()).unwrap();

        let mut clock = HostClock::at(5);
        let mut fed = 0usize;
        for round in 0..5u64 {
            clock.advance_to(clock.now() + 700);
            let payload = encode_guest_packet("alice", format!("r{round}").as_bytes());
            let env = Envelope::create(
                EnvelopeKind::Data,
                "alice",
                "bob",
                round + 1,
                payload,
                &alice_key,
                None,
            );
            bob.deliver(&env).unwrap();
            bob.run_slice(&clock, 50_000).unwrap();
            // Stream the newly produced entries to the auditor.
            let entries = bob.log().entries();
            auditor.feed(&entries[fed..]);
            fed = entries.len();
            auditor.process(3); // limited budget per round: lag accumulates
        }
        assert!(!auditor.is_faulty());
        assert!(
            auditor.lag_entries() > 0,
            "expected the auditor to lag behind"
        );
        auditor.finish();
        assert_eq!(auditor.lag_entries(), 0);
        assert_eq!(*auditor.status(), OnlineStatus::Consistent);
        assert_eq!(auditor.entries_received(), bob.log().len() as u64);
        assert_eq!(auditor.entries_replayed(), bob.log().len() as u64);
        assert!(auditor.steps_replayed() > 0);
    }

    #[test]
    fn online_audit_detects_cheat_mid_session() {
        let image = echo_image();
        let alice_key = key(2);
        let mut bob = Avmm::new(
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        bob.add_peer("alice", alice_key.verifying_key());
        let mut auditor = OnlineAuditor::new("bob", &image, &GuestRegistry::new()).unwrap();

        let clock = HostClock::at(5);
        bob.run_slice(&clock, 10_000).unwrap();
        let payload = encode_guest_packet("alice", b"legit");
        let env = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            1,
            payload,
            &alice_key,
            None,
        );
        bob.deliver(&env).unwrap();
        bob.run_slice(&clock, 50_000).unwrap();

        // Mid-game, Bob tampers with his guest's code (an in-memory cheat in
        // the spirit of unlimited ammunition): the patched `send` instruction
        // now transmits r2 (= 512) bytes instead of the received length.
        bob.machine_mut().memory_mut().write_u8(50, 2).unwrap();
        let payload2 = encode_guest_packet("alice", b"after-cheat");
        let env2 = Envelope::create(
            EnvelopeKind::Data,
            "alice",
            "bob",
            2,
            payload2,
            &alice_key,
            None,
        );
        bob.deliver(&env2).unwrap();
        bob.run_slice(&clock, 50_000).unwrap();

        // Stream everything; the auditor must flag a fault.
        let entries: Vec<_> = bob.log().entries().to_vec();
        auditor.feed(&entries);
        auditor.finish();
        assert!(auditor.is_faulty());
        // Feeding and processing after a fault is a no-op.
        let before = auditor.entries_received();
        auditor.feed(&entries);
        assert_eq!(auditor.entries_received(), before);
        assert_eq!(auditor.process(10), 0);
    }

    #[test]
    fn lag_accounting() {
        let image = echo_image();
        let mut auditor = OnlineAuditor::new("bob", &image, &GuestRegistry::new()).unwrap();
        // Fabricate a small honest log to feed gradually.
        let bob = Avmm::new(
            "bob",
            &image,
            &GuestRegistry::new(),
            key(1),
            AvmmOptions::default().with_scheme(SignatureScheme::Rsa(512)),
        )
        .unwrap();
        let meta_entry = bob.log().entries()[0].clone();
        assert_eq!(meta_entry.kind, EntryKind::Meta);
        auditor.feed(&[meta_entry]);
        assert_eq!(auditor.lag_entries(), 1);
        assert_eq!(auditor.process(10), 1);
        assert_eq!(auditor.lag_entries(), 0);
        assert!(format!("{auditor:?}").contains("bob"));
    }
}
