//! Incremental snapshots with authenticated (Merkle) state roots.
//!
//! The AVMM "periodically takes a snapshot of the AVM's state … snapshots are
//! incremental, that is, they only contain the state that has changed since
//! the last snapshot.  The AVMM also maintains a hash tree over the state;
//! after each snapshot, it updates the tree and then records the top-level
//! value in the log" (paper §4.4).  Auditors use snapshots as the starting
//! points of spot checks (§3.5, §6.12) and authenticate downloaded state
//! against the recorded root.
//!
//! Mirroring the prototype's behaviour reported in §6.12, a snapshot carries
//! a *full* dump of guest memory pages plus *incremental* (dirty-only) disk
//! blocks; [`Snapshot::incremental_memory`] captures dirty-only memory as
//! well for harnesses that want the optimised variant.

use avm_crypto::merkle::MerkleTree;
use avm_crypto::sha256::{sha256, Digest};
use avm_vm::devices::DISK_BLOCK_SIZE;
use avm_vm::{GuestRegistry, Machine, VmImage, PAGE_SIZE};

use crate::error::CoreError;

/// A point-in-time capture of AVM state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Dense snapshot identifier (0, 1, 2, …).
    pub id: u64,
    /// Machine step count at capture time.
    pub step: u64,
    /// Whether the memory section contains every page (`true`) or only pages
    /// dirtied since the previous snapshot (`false`).
    pub full_memory: bool,
    /// Captured memory pages as `(page index, contents)`.
    pub mem_pages: Vec<(u32, Vec<u8>)>,
    /// Captured disk blocks as `(block index, contents)` — always incremental.
    pub disk_blocks: Vec<(u32, Vec<u8>)>,
    /// Serialized CPU state.
    pub cpu_state: Vec<u8>,
    /// Serialized volatile device state.
    pub dev_state: Vec<u8>,
    /// Whether the guest had halted.
    pub halted: bool,
    /// Merkle root over the complete machine state at capture time.
    pub state_root: Digest,
}

impl Snapshot {
    /// Bytes of captured memory state.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_pages.iter().map(|(_, p)| p.len() as u64).sum()
    }

    /// Bytes of captured disk state.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_blocks.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Total size of the snapshot (memory + disk + CPU + devices).
    pub fn total_bytes(&self) -> u64 {
        self.memory_bytes() + self.disk_bytes() + self.cpu_state.len() as u64 + self.dev_state.len() as u64
    }
}

/// Computes the Merkle root over the complete state of `machine`.
///
/// The leaf order is fixed (CPU state, device state, control word, every
/// memory page, every disk block), so the recording AVMM and a replaying
/// auditor always derive comparable roots.
pub fn compute_state_root(machine: &Machine) -> Digest {
    build_state_tree(machine).root()
}

/// Builds the full Merkle tree over machine state (exposed so auditors can
/// produce inclusion proofs for individual pages).
pub fn build_state_tree(machine: &Machine) -> MerkleTree {
    let mut leaves: Vec<Digest> = Vec::with_capacity(
        3 + machine.memory().page_count() + machine.devices().disk.block_count(),
    );
    leaves.push(sha256(&machine.save_cpu_state()));
    leaves.push(sha256(&machine.devices().save_volatile()));
    let mut control = Vec::with_capacity(10);
    control.extend_from_slice(&machine.step_count().to_le_bytes());
    control.push(u8::from(machine.is_halted()));
    control.push(u8::from(machine.is_waiting_clock()));
    leaves.push(sha256(&control));
    for i in 0..machine.memory().page_count() {
        leaves.push(machine.memory().page_hash(i).expect("page in range"));
    }
    for i in 0..machine.devices().disk.block_count() {
        leaves.push(sha256(machine.devices().disk.block(i).expect("block in range")));
    }
    MerkleTree::from_leaf_hashes(leaves)
}

/// Captures a snapshot of `machine` and clears its dirty tracking.
///
/// `full_memory` selects between the paper-prototype behaviour (full memory
/// dump, §6.12) and dirty-page-only memory.
pub fn capture(machine: &mut Machine, id: u64, full_memory: bool) -> Snapshot {
    let state_root = compute_state_root(machine);
    let mem_indices: Vec<usize> = if full_memory {
        (0..machine.memory().page_count()).collect()
    } else {
        machine.memory().dirty_pages()
    };
    let mem_pages = mem_indices
        .into_iter()
        .map(|i| (i as u32, machine.memory().page(i).expect("page").to_vec()))
        .collect();
    let disk_blocks = machine
        .devices()
        .disk
        .dirty_blocks()
        .into_iter()
        .map(|i| (i as u32, machine.devices().disk.block(i).expect("block").to_vec()))
        .collect();
    let snapshot = Snapshot {
        id,
        step: machine.step_count(),
        full_memory,
        mem_pages,
        disk_blocks,
        cpu_state: machine.save_cpu_state(),
        dev_state: machine.devices().save_volatile(),
        halted: machine.is_halted(),
        state_root,
    };
    machine.memory_mut().clear_dirty();
    machine.devices_mut().disk.clear_dirty();
    snapshot
}

/// An ordered collection of snapshots from one execution.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStore {
    snapshots: Vec<Snapshot>,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Adds a snapshot (ids must be dense and increasing).
    pub fn push(&mut self, snapshot: Snapshot) {
        debug_assert_eq!(snapshot.id as usize, self.snapshots.len());
        self.snapshots.push(snapshot);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshot has been taken.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Returns snapshot `id`.
    pub fn get(&self, id: u64) -> Option<&Snapshot> {
        self.snapshots.get(id as usize)
    }

    /// All snapshots.
    pub fn all(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Number of bytes an auditor must download to reconstruct the state at
    /// snapshot `upto_id` (the chain of incremental disk blocks plus the
    /// memory section of each snapshot needed).
    pub fn transfer_bytes_upto(&self, upto_id: u64) -> u64 {
        let mut total = 0u64;
        for s in self.snapshots.iter().take(upto_id as usize + 1) {
            // Full-memory snapshots supersede earlier memory sections; only
            // the last one needs to be transferred.
            if !(s.full_memory && s.id < upto_id) {
                total += s.memory_bytes();
            }
            total += s.disk_bytes();
        }
        let Some(last) = self.get(upto_id) else {
            return total;
        };
        total + last.cpu_state.len() as u64 + last.dev_state.len() as u64
    }

    /// Reconstructs a machine in the state captured by snapshot `upto_id`,
    /// starting from the reference `image` and applying the snapshot chain.
    ///
    /// The reconstructed state is authenticated against the stored root; a
    /// mismatch means the snapshot data was tampered with.
    pub fn materialize(
        &self,
        upto_id: u64,
        image: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<Machine, CoreError> {
        let target = self
            .get(upto_id)
            .ok_or_else(|| CoreError::Snapshot(format!("snapshot {upto_id} not found")))?;
        let mut machine = Machine::from_image(image, registry).map_err(CoreError::Vm)?;
        for s in self.snapshots.iter().take(upto_id as usize + 1) {
            // Skip memory sections that a later full-memory snapshot overwrites.
            let apply_memory = !(s.full_memory && s.id < upto_id)
                || !self.snapshots[(s.id as usize + 1)..=(upto_id as usize)]
                    .iter()
                    .any(|later| later.full_memory);
            if apply_memory {
                for (idx, page) in &s.mem_pages {
                    let mut arr = [0u8; PAGE_SIZE];
                    if page.len() != PAGE_SIZE {
                        return Err(CoreError::Snapshot("bad page size".to_string()));
                    }
                    arr.copy_from_slice(page);
                    machine
                        .memory_mut()
                        .set_page(*idx as usize, &arr)
                        .map_err(CoreError::Vm)?;
                }
            }
            for (idx, block) in &s.disk_blocks {
                if block.len() != DISK_BLOCK_SIZE {
                    return Err(CoreError::Snapshot("bad disk block size".to_string()));
                }
                machine
                    .devices_mut()
                    .disk
                    .set_block(*idx as usize, block)
                    .map_err(CoreError::Vm)?;
            }
        }
        machine
            .restore_cpu_state(&target.cpu_state)
            .map_err(CoreError::Vm)?;
        machine
            .devices_mut()
            .restore_volatile(&target.dev_state)
            .map_err(CoreError::Vm)?;
        machine.set_control_state(target.step, target.halted, false);
        machine.memory_mut().clear_dirty();
        machine.devices_mut().disk.clear_dirty();

        let root = compute_state_root(&machine);
        if root != target.state_root {
            return Err(CoreError::Snapshot(format!(
                "materialized state root {} does not match recorded root {}",
                root.short_hex(),
                target.state_root.short_hex()
            )));
        }
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_vm::bytecode::assemble;
    use avm_vm::{StopCondition, VmExit};

    fn image() -> VmImage {
        // A guest that stores an increasing counter to memory and disk each
        // time it receives a packet, so state actually changes between
        // snapshots.
        let src = r"
                movi r1, 0x8000     ; rx buffer
                movi r2, 64         ; max len
                movi r5, 0x9000     ; counter cell
                movi r7, 0          ; disk offset register
            loop:
                recv r0, r1, r2
                cmp r0, r6          ; r6 == 0
                jne got
                idle
                jmp loop
            got:
                load r3, r5
                addi r3, 1
                store r3, r5
                movi r4, 8
                diskwr r7, r5, r4
                jmp loop
            ";
        let code = assemble(src, 0).unwrap();
        VmImage::bytecode("snapshot-test", 128 * 1024, code, 0, 0).with_disk(vec![0u8; 16384])
    }

    fn run_until_idle(m: &mut Machine) {
        loop {
            match m.run(StopCondition::Unbounded).unwrap() {
                VmExit::Idle | VmExit::Halted => break,
                _ => {}
            }
        }
    }

    #[test]
    fn capture_and_materialize_single_snapshot() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);

        let snap = capture(&mut m, 0, true);
        assert_eq!(snap.id, 0);
        assert!(snap.memory_bytes() > 0);
        assert!(snap.disk_bytes() > 0);
        assert_eq!(snap.state_root, compute_state_root(&m));

        let mut store = SnapshotStore::new();
        store.push(snap);
        let restored = store.materialize(0, &img, &reg).unwrap();
        assert_eq!(restored.state_digest(), m.state_digest());
        assert_eq!(restored.step_count(), m.step_count());
    }

    #[test]
    fn incremental_chain_materializes_each_point() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        let mut reference_digests = Vec::new();

        run_until_idle(&mut m);
        for i in 0..4u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            let snap = capture(&mut m, i, false);
            store.push(snap);
            reference_digests.push(m.state_digest());
        }
        assert_eq!(store.len(), 4);
        for i in 0..4u64 {
            let restored = store.materialize(i, &img, &reg).unwrap();
            assert_eq!(restored.state_digest(), reference_digests[i as usize], "snapshot {i}");
        }
    }

    #[test]
    fn incremental_snapshots_are_smaller_than_full() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let full = capture(&mut m, 0, true);
        m.inject_packet(vec![2]);
        run_until_idle(&mut m);
        let incr = capture(&mut m, 1, false);
        assert!(incr.memory_bytes() < full.memory_bytes());
        assert!(incr.total_bytes() < full.total_bytes());
    }

    #[test]
    fn tampered_snapshot_detected_at_materialization() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let mut snap = capture(&mut m, 0, true);
        // Tamper with a captured page (e.g. pretend the counter was higher).
        if let Some((_, page)) = snap.mem_pages.iter_mut().find(|(idx, _)| *idx == 9) {
            page[0] ^= 0xff;
        }
        let mut store = SnapshotStore::new();
        store.push(snap);
        assert!(matches!(
            store.materialize(0, &img, &reg).unwrap_err(),
            CoreError::Snapshot(_)
        ));
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let store = SnapshotStore::new();
        assert!(store.is_empty());
        assert!(store
            .materialize(0, &image(), &GuestRegistry::new())
            .is_err());
    }

    #[test]
    fn transfer_accounting_counts_chain() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for i in 0..3u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, false));
        }
        let t0 = store.transfer_bytes_upto(0);
        let t2 = store.transfer_bytes_upto(2);
        assert!(t2 >= t0);
        assert!(t2 > 0);
    }

    #[test]
    fn state_root_changes_with_state() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        let r1 = compute_state_root(&m);
        m.inject_packet(vec![9]);
        run_until_idle(&mut m);
        let r2 = compute_state_root(&m);
        assert_ne!(r1, r2);
        // The tree exposes per-leaf proofs.
        let tree = build_state_tree(&m);
        assert!(tree.leaf_count() > 3);
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify_hash(sha256(&m.save_cpu_state()), &tree.root()));
    }
}
