//! Incremental snapshots with authenticated (Merkle) state roots, stored in
//! a content-addressed, reference-counted pool.
//!
//! The AVMM "periodically takes a snapshot of the AVM's state … snapshots are
//! incremental, that is, they only contain the state that has changed since
//! the last snapshot.  The AVMM also maintains a hash tree over the state;
//! after each snapshot, it updates the tree and then records the top-level
//! value in the log" (paper §4.4).  Auditors use snapshots as the starting
//! points of spot checks (§3.5, §6.12) and authenticate downloaded state
//! against the recorded root.
//!
//! # Chunk granularity
//!
//! The unit of accountability throughout this module is the 512 B **chunk**
//! ([`avm_vm::CHUNK_SIZE`], eight per page): snapshot payloads, Merkle
//! leaves, pool blobs and transfer sections are all chunk-sized, matching
//! the VM's chunk-granular dirty tracking.  A guest that bumps an 8-byte
//! counter therefore costs one 512 B chunk of hashing, storage and transfer
//! instead of a 4 KiB page.  Disk blocks keep their page-sized granularity
//! ([`avm_vm::devices::DISK_BLOCK_SIZE`]): block devices write whole
//! sectors, so sub-block tracking would buy nothing.
//!
//! Mirroring the prototype's behaviour reported in §6.12, a snapshot carries
//! a *full* dump of guest memory chunks plus *incremental* (dirty-only) disk
//! blocks; passing `full_memory = false` to [`capture`] captures dirty-only
//! memory as well for harnesses that want the optimised variant.
//!
//! # Content-addressed storage and pruning
//!
//! [`capture`] produces a [`Snapshot`] holding raw chunk/block payloads — the
//! unit a recorder hands over the wire.  [`SnapshotStore::push`] does *not*
//! keep those payloads per snapshot: every payload is interned into a
//! content-addressed [pool](SnapshotStore::stored_payload_bytes) keyed by its
//! SHA-256 (the same digests the Merkle leaves are built from), and the
//! stored [`StoredSnapshot`] records only `(index, hash)` references.  A
//! full-memory capture therefore costs O(unique chunks) of storage instead of
//! O(chunks): identical chunks across snapshots — and identical chunks
//! *within* one snapshot, e.g. zero chunks — share a single blob, so repeated
//! captures of a mostly-idle guest add almost nothing to the pool.
//! [`SnapshotStore::materialize`] resolves references back through the pool
//! and still authenticates the reconstructed state against the recorded
//! Merkle root, so a corrupted or substituted blob can never go unnoticed.
//!
//! Pool entries are reference-counted by the snapshots holding them, which
//! makes retention bounded: [`SnapshotStore::prune_upto`] rebases the chain
//! onto a chosen snapshot — collapsing everything older into one synthetic
//! full snapshot, exactly the state [`SnapshotStore::materialize`] would
//! have reconstructed — and drops every blob no surviving snapshot
//! references.  Snapshots older than the rebase point become unavailable;
//! everything from it onward keeps materializing and authenticating as
//! before, and new captures keep appending.
//!
//! # Transfer accounting: raw and compressed
//!
//! Spot-check evaluation (§3.5, §6.12, Fig. 9) needs the bytes an auditor
//! must *download*, which is a different quantity from the bytes the store
//! keeps: the modelled transfer protocol ships snapshot *sections* (headers,
//! indexed chunks, indexed disk blocks), exactly the sections
//! [`SnapshotStore::materialize`] applies.  One shared base index decides
//! which memory sections a later full dump supersedes, so
//! [`SnapshotStore::transfer_bytes_upto`] is always equal to the bytes
//! materialization consumes ([`SnapshotStore::materialize_with_cost`] counts
//! them at the apply sites; tests pin the equality).  Because the paper's
//! prototype ships snapshots *compressed* (§6.12 reports compressed
//! numbers), [`SnapshotStore::transfer_stream_upto`] serialises the exact
//! transfer byte stream and [`SnapshotStore::transfer_cost_upto`] routes it
//! through `avm-compress`, yielding raw and compressed sizes side by side.
//!
//! # The incremental state-root pipeline
//!
//! The state root covers a fixed leaf order — CPU state, device state,
//! control word, every memory chunk, every disk block — so recorder and
//! auditor always derive comparable roots.  Naively that is O(total state)
//! of hashing per snapshot; the paper's own AVMM "maintains" the tree
//! instead of rebuilding it, and so does this module:
//!
//! 1. `avm-vm` memoises each chunk/block SHA-256, invalidating a slot the
//!    moment that chunk/block is written ([`avm_vm::GuestMemory::chunk_hash`],
//!    [`avm_vm::devices::Disk::block_hash`]).
//! 2. [`StateTreeCache`] keeps the Merkle tree alive across snapshots and,
//!    on [`StateTreeCache::refresh`], re-derives only the three header
//!    leaves plus the leaves flagged by the VM's dirty-chunk bitmasks,
//!    updating the tree in one O(dirty + log n) batch
//!    ([`MerkleTree::update_leaf_hashes`]).  The dirty-chunk hashing itself
//!    is fanned across a small hand-rolled scoped-thread worker pool
//!    ([`avm_vm::GuestMemory::prime_chunk_hashes`] →
//!    [`avm_crypto::parallel::sha256_batch`]), so the remaining O(dirty)
//!    work scales across cores for large guests.
//!
//! **Invalidation contract:** `refresh` trusts the dirty bits to name every
//! chunk/block whose contents changed since the cache was last in sync.
//! That holds as long as dirty bits are only cleared at capture points
//! (which is when the cache is refreshed); callers that clear dirty
//! tracking elsewhere must call [`StateTreeCache::invalidate`] first.
//! Refreshing a leaf whose content did not change is always safe — updates
//! are idempotent — so it does not matter if dirty bits over-approximate.
//! [`build_state_tree_uncached`] remains as the reference implementation;
//! tests and benches cross-check the cached root against it.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

use avm_compress::{CompressionLevel, CompressionStats};
use avm_crypto::merkle::MerkleTree;
use avm_crypto::sha256::{sha256, Digest};
use avm_vm::devices::DISK_BLOCK_SIZE;
use avm_vm::{GuestRegistry, Machine, VmImage, CHUNK_SIZE};

use crate::error::CoreError;

/// Fixed framing bytes per snapshot: `id` (8) + `step` (8) + the
/// `full_memory`/`halted` flags (2) + the state root (32).
pub const SNAPSHOT_HEADER_BYTES: u64 = 50;

/// A point-in-time capture of AVM state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Dense snapshot identifier (0, 1, 2, …).
    pub id: u64,
    /// Machine step count at capture time.
    pub step: u64,
    /// Whether the memory section contains every chunk (`true`) or only
    /// chunks dirtied since the previous snapshot (`false`).
    pub full_memory: bool,
    /// Captured memory chunks as `(chunk index, content hash, contents)`.
    /// The hash is the VM's memoised Merkle leaf hash, carried along so the
    /// content-addressed [`SnapshotStore`] never rehashes payloads on push.
    pub mem_chunks: Vec<(u32, Digest, Vec<u8>)>,
    /// Captured disk blocks as `(block index, content hash, contents)` —
    /// always incremental.
    pub disk_blocks: Vec<(u32, Digest, Vec<u8>)>,
    /// Serialized CPU state.
    pub cpu_state: Vec<u8>,
    /// Serialized volatile device state.
    pub dev_state: Vec<u8>,
    /// Whether the guest had halted.
    pub halted: bool,
    /// Merkle root over the complete machine state at capture time.
    pub state_root: Digest,
}

impl Snapshot {
    /// Bytes of captured memory chunk payloads.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_chunks.iter().map(|(_, _, p)| p.len() as u64).sum()
    }

    /// Bytes of captured disk block payloads.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_blocks
            .iter()
            .map(|(_, _, b)| b.len() as u64)
            .sum()
    }

    /// Number of memory chunks this snapshot carries (all chunks for a full
    /// capture, dirty chunks only for an incremental one).
    pub fn chunk_count(&self) -> usize {
        self.mem_chunks.len()
    }

    /// Framing bytes beyond the raw payloads: the per-entry `u32` indices
    /// (which dominate relative overhead for small dirty-only captures) plus
    /// the fixed header ([`SNAPSHOT_HEADER_BYTES`]).
    pub fn metadata_bytes(&self) -> u64 {
        (self.mem_chunks.len() + self.disk_blocks.len()) as u64 * 4 + SNAPSHOT_HEADER_BYTES
    }

    /// Total size of the snapshot as stored or transferred: payloads
    /// (memory + disk + CPU + devices) plus [`Snapshot::metadata_bytes`].
    ///
    /// Counting the framing keeps full and dirty-only captures comparable —
    /// a dirty-only capture pays per-entry index overhead that a "payload
    /// only" total would hide.
    pub fn total_bytes(&self) -> u64 {
        self.memory_bytes()
            + self.disk_bytes()
            + self.cpu_state.len() as u64
            + self.dev_state.len() as u64
            + self.metadata_bytes()
    }
}

/// Hashes the three header leaves (CPU, devices, control word) that precede
/// the per-chunk and per-block leaves in the fixed leaf order.
fn header_leaves(machine: &Machine) -> [Digest; 3] {
    let mut control = Vec::with_capacity(10);
    control.extend_from_slice(&machine.step_count().to_le_bytes());
    control.push(u8::from(machine.is_halted()));
    control.push(u8::from(machine.is_waiting_clock()));
    [
        sha256(&machine.save_cpu_state()),
        sha256(&machine.devices().save_volatile()),
        sha256(&control),
    ]
}

/// Computes the Merkle root over the complete state of `machine`.
///
/// The leaf order is fixed (CPU state, device state, control word, every
/// memory chunk, every disk block), so the recording AVMM and a replaying
/// auditor always derive comparable roots.  Chunk and block leaves come from
/// the VM's memoised hash caches; hot paths that take repeated roots should
/// hold a [`StateTreeCache`] instead, which also reuses the tree's interior
/// nodes.
pub fn compute_state_root(machine: &Machine) -> Digest {
    build_state_tree(machine).root()
}

/// Builds the full Merkle tree over machine state (exposed so auditors can
/// produce inclusion proofs for individual chunks).
///
/// Missing chunk/block hashes are filled in bulk across the scoped worker
/// pool before the leaves are collected, so a cold full build parallelises
/// the same way an incremental refresh does.
pub fn build_state_tree(machine: &Machine) -> MerkleTree {
    let mem = machine.memory();
    let disk = &machine.devices().disk;
    let all_chunks: Vec<usize> = (0..mem.chunk_count()).collect();
    mem.prime_chunk_hashes(&all_chunks);
    let all_blocks: Vec<usize> = (0..disk.block_count()).collect();
    disk.prime_block_hashes(&all_blocks);
    let mut leaves: Vec<Digest> = Vec::with_capacity(3 + mem.chunk_count() + disk.block_count());
    leaves.extend_from_slice(&header_leaves(machine));
    for i in 0..mem.chunk_count() {
        leaves.push(mem.chunk_hash(i).expect("chunk in range"));
    }
    for i in 0..disk.block_count() {
        leaves.push(disk.block_hash(i).expect("block in range"));
    }
    MerkleTree::from_leaf_hashes(leaves)
}

/// Reference tree construction that rehashes every chunk and block from raw
/// contents, bypassing the VM hash caches, the worker pool and any
/// [`StateTreeCache`].
///
/// This is the seed implementation's cost model, kept as the baseline the
/// property tests cross-check against and the benches compare with.
pub fn build_state_tree_uncached(machine: &Machine) -> MerkleTree {
    let mem = machine.memory();
    let disk = &machine.devices().disk;
    let mut leaves: Vec<Digest> = Vec::with_capacity(3 + mem.chunk_count() + disk.block_count());
    leaves.extend_from_slice(&header_leaves(machine));
    for i in 0..mem.chunk_count() {
        leaves.push(sha256(mem.chunk(i).expect("chunk in range")));
    }
    for i in 0..disk.block_count() {
        leaves.push(sha256(disk.block(i).expect("block in range")));
    }
    MerkleTree::from_leaf_hashes(leaves)
}

/// A Merkle state tree kept alive between snapshots so each refresh costs
/// O(dirty leaves + log n) instead of O(total state).
///
/// See the module docs for the invalidation contract.  A fresh (or
/// [`StateTreeCache::invalidate`]d) cache rebuilds the tree in full on its
/// next refresh, so holding one is never less correct than calling
/// [`compute_state_root`] — only faster.
#[derive(Debug, Clone, Default)]
pub struct StateTreeCache {
    tree: Option<MerkleTree>,
    /// [`Machine::state_version`] at the last refresh.  While it is
    /// unchanged, the three header leaves (CPU, devices, control word) are
    /// guaranteed unchanged too, so refresh skips reserialising and
    /// rehashing them — pure-memory workloads (the `fig6inc` benchmark, a
    /// guest idling between captures) then pay only for dirty chunk leaves.
    header_version: Option<u64>,
}

impl StateTreeCache {
    /// Creates an empty cache (the first refresh builds the full tree).
    pub fn new() -> StateTreeCache {
        StateTreeCache::default()
    }

    /// Drops the cached tree, forcing the next refresh to rebuild it.
    ///
    /// Required before reusing the cache on a *different* machine, or after
    /// clearing dirty bits without refreshing.
    pub fn invalidate(&mut self) {
        self.tree = None;
        self.header_version = None;
    }

    /// The cached tree, if one has been built (for inclusion proofs).
    pub fn tree(&self) -> Option<&MerkleTree> {
        self.tree.as_ref()
    }

    /// Synchronises the cached tree with `machine` and returns the root.
    ///
    /// Chunk and block leaves are re-derived only where the machine's dirty
    /// bits say the contents may have changed since the last refresh, with
    /// the missing hashes computed in one parallel batch (see the module
    /// docs).  The three header leaves (CPU, devices, control word) are
    /// re-derived only when [`Machine::state_version`] moved since the last
    /// refresh — the version is a conservative change counter over exactly
    /// the state those leaves cover, so an unchanged version proves the
    /// serialised headers (and hence their hashes) are identical.
    pub fn refresh(&mut self, machine: &Machine) -> Digest {
        let mem = machine.memory();
        let disk = &machine.devices().disk;
        let leaf_count = 3 + mem.chunk_count() + disk.block_count();
        let version = machine.state_version();
        match &mut self.tree {
            Some(tree) if tree.leaf_count() == leaf_count => {
                let dirty_chunks = mem.dirty_chunks();
                let dirty_blocks = disk.dirty_blocks();
                // Fan the dirty-leaf hashing across the worker pool before
                // the serial tree update reads the memoised values.
                mem.prime_chunk_hashes(&dirty_chunks);
                disk.prime_block_hashes(&dirty_blocks);
                let mut updates: Vec<(usize, Digest)> =
                    Vec::with_capacity(3 + dirty_chunks.len() + dirty_blocks.len());
                if self.header_version != Some(version) {
                    let header = header_leaves(machine);
                    updates.push((0, header[0]));
                    updates.push((1, header[1]));
                    updates.push((2, header[2]));
                }
                for c in dirty_chunks {
                    updates.push((3 + c, mem.chunk_hash(c).expect("dirty chunk in range")));
                }
                let block_base = 3 + mem.chunk_count();
                for b in dirty_blocks {
                    updates.push((
                        block_base + b,
                        disk.block_hash(b).expect("dirty block in range"),
                    ));
                }
                let ok = tree.update_leaf_hashes(&updates);
                debug_assert!(ok, "state tree leaf indices in range");
                self.header_version = Some(version);
                tree.root()
            }
            _ => {
                let tree = build_state_tree(machine);
                let root = tree.root();
                self.tree = Some(tree);
                self.header_version = Some(version);
                root
            }
        }
    }
}

/// Captures a snapshot of `machine` and clears its dirty tracking.
///
/// `full_memory` selects between the paper-prototype behaviour (full memory
/// dump, §6.12) and dirty-chunk-only memory.  This convenience form rebuilds
/// the state tree from the (memoised) leaf hashes; hot paths taking repeated
/// snapshots should use [`capture_with_cache`].
pub fn capture(machine: &mut Machine, id: u64, full_memory: bool) -> Snapshot {
    let mut cache = StateTreeCache::new();
    capture_with_cache(machine, &mut cache, id, full_memory)
}

/// Captures a snapshot of `machine`, maintaining `cache` incrementally, and
/// clears the machine's dirty tracking.
///
/// The dirty bits consumed here serve double duty: they select which leaves
/// of `cache` to refresh *and* which chunks/blocks the snapshot carries, so
/// the snapshot and the root it records are always mutually consistent.
pub fn capture_with_cache(
    machine: &mut Machine,
    cache: &mut StateTreeCache,
    id: u64,
    full_memory: bool,
) -> Snapshot {
    // A partially-resident machine (on-demand audits) pairs staged authentic
    // *hashes* with stale raw *contents*; capturing it would intern those
    // stale bytes under authentic digests and poison every store the
    // snapshot is pushed into.  Recording machines never stage, so this is
    // loud protection against misuse, not a reachable runtime state.
    assert_eq!(
        machine.memory().staged_chunk_count() + machine.devices().disk.staged_block_count(),
        0,
        "cannot capture a machine with staged demand-paged state"
    );
    let state_root = cache.refresh(machine);
    let mem = machine.memory();
    // The leaf hashes are memoised by the VM (and fresh after the refresh
    // above); carrying them with the payloads lets the content-addressed
    // store intern without rehashing.
    let capture_chunk = |i: usize| {
        (
            i as u32,
            mem.chunk_hash(i).expect("chunk hash"),
            mem.chunk(i).expect("chunk").to_vec(),
        )
    };
    let mem_chunks: Vec<(u32, Digest, Vec<u8>)> = if full_memory {
        (0..mem.chunk_count()).map(capture_chunk).collect()
    } else {
        mem.dirty_chunks().into_iter().map(capture_chunk).collect()
    };
    let disk = &machine.devices().disk;
    let disk_blocks = disk
        .dirty_blocks()
        .into_iter()
        .map(|i| {
            (
                i as u32,
                disk.block_hash(i).expect("block hash"),
                disk.block(i).expect("block").to_vec(),
            )
        })
        .collect();
    let snapshot = Snapshot {
        id,
        step: machine.step_count(),
        full_memory,
        mem_chunks,
        disk_blocks,
        cpu_state: machine.save_cpu_state(),
        dev_state: machine.devices().save_volatile(),
        halted: machine.is_halted(),
        state_root,
    };
    // clear_dirty_tracking (not devices_mut + clear_dirty) so an idle
    // machine's state version stays put and the next refresh can skip the
    // header leaves.
    machine.clear_dirty_tracking();
    snapshot
}

/// A snapshot as kept by the [`SnapshotStore`]: payloads are replaced by
/// content-addressed references into the store's shared blob pool.
///
/// Byte-accounting methods ([`StoredSnapshot::memory_bytes`],
/// [`StoredSnapshot::total_bytes`], …) report the *logical* (wire-equivalent)
/// sizes, identical to what the originating [`Snapshot`] reported — the
/// dedup savings are a property of the store, visible through
/// [`SnapshotStore::stored_payload_bytes`].
#[derive(Debug, Clone)]
pub struct StoredSnapshot {
    /// Dense snapshot identifier (0, 1, 2, …).
    pub id: u64,
    /// Machine step count at capture time.
    pub step: u64,
    /// Whether this snapshot's memory section is a chain memory base: it
    /// supersedes every earlier memory section, so reconstruction starts
    /// from the reference image plus this section alone.  True for captures
    /// taken with `full_memory` (which carry every chunk) and for the
    /// synthetic snapshot [`SnapshotStore::prune_upto`] rebases onto (which
    /// carries the *effective* chunk set — chunks never written stay
    /// image-derived); false for dirty-only incremental captures.
    pub full_memory: bool,
    /// Whether the guest had halted.
    pub halted: bool,
    /// Merkle root over the complete machine state at capture time.
    pub state_root: Digest,
    /// Serialized CPU state.
    pub cpu_state: Vec<u8>,
    /// Serialized volatile device state.
    pub dev_state: Vec<u8>,
    mem_chunks: Vec<(u32, Digest)>,
    disk_blocks: Vec<(u32, Digest)>,
    mem_payload_bytes: u64,
    disk_payload_bytes: u64,
}

impl StoredSnapshot {
    /// Logical bytes of the captured memory chunk payloads.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_payload_bytes
    }

    /// Logical bytes of the captured disk block payloads.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_payload_bytes
    }

    /// Number of memory chunks this snapshot references.
    pub fn chunk_count(&self) -> usize {
        self.mem_chunks.len()
    }

    /// Content references for the memory section, as `(chunk index, hash)`.
    pub fn mem_chunk_refs(&self) -> &[(u32, Digest)] {
        &self.mem_chunks
    }

    /// Content references for the disk section, as `(block index, hash)`.
    pub fn disk_block_refs(&self) -> &[(u32, Digest)] {
        &self.disk_blocks
    }

    /// Framing bytes beyond the raw payloads, mirroring
    /// [`Snapshot::metadata_bytes`].
    pub fn metadata_bytes(&self) -> u64 {
        (self.mem_chunks.len() + self.disk_blocks.len()) as u64 * 4 + SNAPSHOT_HEADER_BYTES
    }

    /// Logical total size as transferred, mirroring [`Snapshot::total_bytes`].
    pub fn total_bytes(&self) -> u64 {
        self.memory_bytes()
            + self.disk_bytes()
            + self.cpu_state.len() as u64
            + self.dev_state.len() as u64
            + self.metadata_bytes()
    }
}

/// A reference-counted blob held by the pool.
#[derive(Debug, Clone)]
struct PoolEntry {
    data: Vec<u8>,
    /// Number of `(index, hash)` references across all retained snapshots.
    refs: u64,
}

/// Content-addressed, reference-counted blob pool shared by all snapshots in
/// a store.
#[derive(Debug, Clone, Default)]
struct PayloadPool {
    blobs: HashMap<Digest, PoolEntry>,
    /// Unique bytes currently held (drops when pruning releases last refs).
    stored_bytes: u64,
    /// Cumulative logical bytes ever interned.
    pushed_bytes: u64,
    /// Cumulative bytes saved by dedup at intern time.
    deduped_bytes: u64,
}

impl PayloadPool {
    /// Interns `data` under the caller-supplied content `hash` (the VM's
    /// memoised Merkle leaf hash, so pushing never rehashes payloads),
    /// acquiring one reference.  Only the first occurrence of any content
    /// costs storage; later occurrences are accounted as deduplicated.
    ///
    /// The digest is trusted here: a snapshot pushed with a digest that does
    /// not match its payload mis-keys the blob, and materialization of any
    /// snapshot referencing it fails the state-root authentication — the
    /// same verdict tampered content gets.
    fn intern(&mut self, hash: Digest, data: Vec<u8>) {
        self.pushed_bytes += data.len() as u64;
        match self.blobs.entry(hash) {
            Entry::Occupied(mut slot) => {
                slot.get_mut().refs += 1;
                self.deduped_bytes += data.len() as u64;
            }
            Entry::Vacant(slot) => {
                self.stored_bytes += data.len() as u64;
                slot.insert(PoolEntry { data, refs: 1 });
            }
        }
    }

    /// Acquires one more reference to an already-pooled blob (rebasing).
    fn retain(&mut self, hash: &Digest) {
        self.blobs
            .get_mut(hash)
            .expect("retained blob must be pooled")
            .refs += 1;
    }

    /// Releases one reference; the last release evicts the blob and returns
    /// its size (0 while other references survive).
    fn release(&mut self, hash: &Digest) -> u64 {
        let Entry::Occupied(mut slot) = self.blobs.entry(*hash) else {
            debug_assert!(false, "released blob must be pooled");
            return 0;
        };
        let entry = slot.get_mut();
        entry.refs -= 1;
        if entry.refs > 0 {
            return 0;
        }
        let freed = entry.data.len() as u64;
        slot.remove();
        self.stored_bytes -= freed;
        freed
    }

    fn get(&self, hash: &Digest) -> Option<&[u8]> {
        self.blobs.get(hash).map(|e| e.data.as_slice())
    }
}

/// Raw and compressed size of a modelled transfer.
///
/// Re-exported alias of `avm-compress`'s accounting type so callers get
/// `ratio()` / `compressed_fraction()` for free.
pub type TransferCost = CompressionStats;

/// An ordered collection of snapshots from one execution, backed by a
/// content-addressed payload pool (see the module docs).
///
/// This is the reproduction of §4.4's snapshot machinery on the recorder
/// side and §3.5's download models on the auditor side: push captures as
/// they are taken, then either [`materialize`](SnapshotStore::materialize) a
/// full download (authenticated against the recorded Merkle root), price it
/// with [`transfer_cost_upto`](SnapshotStore::transfer_cost_upto), or go
/// digest-addressed via [`chain_manifest_upto`](SnapshotStore::chain_manifest_upto)
/// / [`serve_blobs`](SnapshotStore::serve_blobs) (see [`crate::ondemand`]).
///
/// ```
/// use avm_core::snapshot::{capture, SnapshotStore};
/// use avm_compress::CompressionLevel;
/// use avm_vm::bytecode::assemble;
/// use avm_vm::{GuestRegistry, Machine, VmImage};
///
/// let image = VmImage::bytecode("doc", 64 * 1024, assemble("halt", 0).unwrap(), 0, 0);
/// let registry = GuestRegistry::new();
/// let mut machine = Machine::from_image(&image, &registry).unwrap();
/// machine.memory_mut().write_u8(0x9000, 7).unwrap();
///
/// // Record side: capture a full snapshot; the store interns 512 B chunk
/// // payloads by SHA-256, so the mostly-zero guest stores far less than it
/// // captured.
/// let mut store = SnapshotStore::new();
/// store.push(capture(&mut machine, 0, true));
/// assert!(store.stored_payload_bytes() < store.logical_payload_bytes());
///
/// // Audit side: a full download reconstructs bit-identical state (the
/// // recorded state root is verified internally) at a measurable cost.
/// let restored = store.materialize(0, &image, &registry).unwrap();
/// assert_eq!(restored.state_digest(), machine.state_digest());
/// let cost = store.transfer_cost_upto(0, CompressionLevel::Default);
/// assert!(cost.compressed_bytes < cost.raw_bytes);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SnapshotStore {
    /// Retained snapshots; `snapshots[i].id == base_id + i`.
    snapshots: Vec<StoredSnapshot>,
    pool: PayloadPool,
    /// Id of the first retained snapshot (> 0 after pruning).
    base_id: u64,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Creates an empty store whose next pushed snapshot must carry
    /// `base_id` — the shape a store has right after
    /// [`SnapshotStore::prune_upto`] dropped everything below `base_id`.
    /// Recovery uses this to rebuild a pruned store from persisted
    /// manifests without replaying the pruned-away history.
    pub fn with_base(base_id: u64) -> SnapshotStore {
        SnapshotStore {
            base_id,
            ..SnapshotStore::default()
        }
    }

    /// Digests of every payload blob the pool currently holds (unordered).
    /// This is the live set a durable blob store must retain for this
    /// store's snapshots to keep materializing.
    pub fn pooled_digests(&self) -> Vec<Digest> {
        self.pool.blobs.keys().copied().collect()
    }

    /// Adds a snapshot (ids must be dense and increasing; the next id is
    /// [`SnapshotStore::next_id`]), interning its payloads into the
    /// content-addressed pool.
    pub fn push(&mut self, snapshot: Snapshot) {
        debug_assert_eq!(snapshot.id, self.next_id());
        let mem_payload_bytes = snapshot.memory_bytes();
        let disk_payload_bytes = snapshot.disk_bytes();
        let mem_chunks = snapshot
            .mem_chunks
            .into_iter()
            .map(|(idx, hash, chunk)| {
                self.pool.intern(hash, chunk);
                (idx, hash)
            })
            .collect();
        let disk_blocks = snapshot
            .disk_blocks
            .into_iter()
            .map(|(idx, hash, block)| {
                self.pool.intern(hash, block);
                (idx, hash)
            })
            .collect();
        self.snapshots.push(StoredSnapshot {
            id: snapshot.id,
            step: snapshot.step,
            full_memory: snapshot.full_memory,
            halted: snapshot.halted,
            state_root: snapshot.state_root,
            cpu_state: snapshot.cpu_state,
            dev_state: snapshot.dev_state,
            mem_chunks,
            disk_blocks,
            mem_payload_bytes,
            disk_payload_bytes,
        });
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshot is retained.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Id of the first retained snapshot (0 until pruned).
    pub fn base_id(&self) -> u64 {
        self.base_id
    }

    /// Id the next pushed snapshot must carry.
    pub fn next_id(&self) -> u64 {
        self.base_id + self.snapshots.len() as u64
    }

    /// Returns snapshot `id`, if retained (pruned and never-pushed ids are
    /// both `None`).
    pub fn get(&self, id: u64) -> Option<&StoredSnapshot> {
        let pos = id.checked_sub(self.base_id)?;
        self.snapshots.get(pos as usize)
    }

    /// All retained snapshots, in id order.
    pub fn all(&self) -> &[StoredSnapshot] {
        &self.snapshots
    }

    /// The retained prefix of the chain with ids `<= upto_id` (clamped, so
    /// wild ids from an untrusted log stay total).
    pub(crate) fn chain_upto(&self, upto_id: u64) -> &[StoredSnapshot] {
        let end = upto_id
            .saturating_sub(self.base_id)
            .saturating_add(if upto_id >= self.base_id { 1 } else { 0 })
            .min(self.snapshots.len() as u64);
        &self.snapshots[..end as usize]
    }

    /// Resolves a content hash to its payload, if the pool holds it.
    pub fn payload(&self, hash: &Digest) -> Option<&[u8]> {
        self.pool.get(hash)
    }

    /// Unique payload bytes the pool actually holds.  This is the O(unique
    /// chunks) storage cost of the store, and it shrinks when
    /// [`SnapshotStore::prune_upto`] drops the last reference to a blob.
    pub fn stored_payload_bytes(&self) -> u64 {
        self.pool.stored_bytes
    }

    /// Payload bytes that were pushed but *not* stored because identical
    /// content was already pooled (cumulative over all pushes).
    pub fn deduped_payload_bytes(&self) -> u64 {
        self.pool.deduped_bytes
    }

    /// Logical payload bytes pushed across all snapshots ever (what a
    /// non-deduplicating, non-pruning store would hold).
    pub fn logical_payload_bytes(&self) -> u64 {
        self.pool.pushed_bytes
    }

    /// Number of unique payload blobs in the pool.
    pub fn unique_payloads(&self) -> usize {
        self.pool.blobs.len()
    }

    /// Id of the first snapshot whose memory section is part of the state
    /// at `upto_id`: the last full-memory snapshot in the retained chain
    /// (its dump overwrites every chunk, superseding every earlier memory
    /// section), or the base id when the chain holds no full dump.  Computed
    /// once per traversal, so the accounting and materialization walks stay
    /// O(chain).
    ///
    /// This single base id drives [`SnapshotStore::materialize`], the
    /// transfer accounting and the on-demand chain manifest
    /// ([`SnapshotStore::chain_manifest_upto`]), so they can never disagree
    /// about which sections an auditor must download.  `upto_id` may exceed
    /// the store (an untrusted log can reference snapshot ids the store
    /// never saw); the range is clamped so the accounting entry points stay
    /// total.
    pub(crate) fn memory_base(&self, upto_id: u64) -> u64 {
        self.chain_upto(upto_id)
            .iter()
            .rev()
            .find(|s| s.full_memory)
            .map_or(self.base_id, |s| s.id)
    }

    /// Rebases the chain onto snapshot `new_base_id`: snapshots with smaller
    /// ids are dropped, the chain state they contributed is collapsed into a
    /// synthetic full snapshot at `new_base_id` (the exact state
    /// [`SnapshotStore::materialize`] reconstructs there, so it still
    /// authenticates against the recorded root), and every blob no surviving
    /// snapshot references is evicted from the pool.
    ///
    /// Returns the payload bytes freed.  Pruning at or below the current
    /// base is a no-op; pruning at an unretained id is an error.  Later
    /// snapshots — and snapshots captured after the prune — keep
    /// materializing unchanged.
    pub fn prune_upto(&mut self, new_base_id: u64) -> Result<u64, CoreError> {
        if new_base_id <= self.base_id {
            return if self.get(self.base_id).is_some() || new_base_id == self.base_id {
                Ok(0)
            } else {
                Err(CoreError::Snapshot(format!(
                    "cannot prune empty store at snapshot {new_base_id}"
                )))
            };
        }
        let target = self.get(new_base_id).ok_or_else(|| {
            CoreError::Snapshot(format!("cannot prune at unretained snapshot {new_base_id}"))
        })?;
        // Collapse the chain into the effective state at the new base, with
        // the same supersession predicate every other walk uses.
        let base = self.memory_base(new_base_id);
        let mut mem: BTreeMap<u32, Digest> = BTreeMap::new();
        let mut disk: BTreeMap<u32, Digest> = BTreeMap::new();
        for s in self.chain_upto(new_base_id) {
            if s.id >= base {
                for (idx, hash) in s.mem_chunk_refs() {
                    mem.insert(*idx, *hash);
                }
            }
            for (idx, hash) in s.disk_block_refs() {
                disk.insert(*idx, *hash);
            }
        }
        let mem_chunks: Vec<(u32, Digest)> = mem.into_iter().collect();
        let disk_blocks: Vec<(u32, Digest)> = disk.into_iter().collect();
        let payload_len = |hash: &Digest| {
            self.pool.get(hash).map(|b| b.len() as u64).expect(
                "every reference of a retained snapshot holds a pool ref, so the blob exists",
            )
        };
        let mem_payload_bytes = mem_chunks.iter().map(|(_, h)| payload_len(h)).sum();
        let disk_payload_bytes = disk_blocks.iter().map(|(_, h)| payload_len(h)).sum();
        let rebased = StoredSnapshot {
            id: new_base_id,
            step: target.step,
            // The rebased snapshot *is* the chain's memory base now.
            full_memory: true,
            halted: target.halted,
            state_root: target.state_root,
            cpu_state: target.cpu_state.clone(),
            dev_state: target.dev_state.clone(),
            mem_chunks,
            disk_blocks,
            mem_payload_bytes,
            disk_payload_bytes,
        };
        // Acquire the rebased snapshot's references before releasing the
        // dropped snapshots', so blobs shared between them never hit zero.
        for (_, hash) in rebased.mem_chunks.iter().chain(&rebased.disk_blocks) {
            self.pool.retain(hash);
        }
        let drop_count = (new_base_id - self.base_id) as usize + 1;
        let mut freed = 0u64;
        for s in &self.snapshots[..drop_count] {
            for (_, hash) in s.mem_chunks.iter().chain(&s.disk_blocks) {
                freed += self.pool.release(hash);
            }
        }
        let tail = self.snapshots.split_off(drop_count);
        self.snapshots = std::iter::once(rebased).chain(tail).collect();
        self.base_id = new_base_id;
        Ok(freed)
    }

    /// Number of bytes an auditor must download to reconstruct the state at
    /// snapshot `upto_id`: every snapshot header in the retained chain, the
    /// chain of incremental disk blocks, the memory sections not superseded
    /// by a later full dump (including the base full dump itself), per-entry
    /// index framing, and the target's CPU/device state — exactly the bytes
    /// [`SnapshotStore::materialize`] consumes.
    pub fn transfer_bytes_upto(&self, upto_id: u64) -> u64 {
        let mut total = 0u64;
        let base = self.memory_base(upto_id);
        for s in self.chain_upto(upto_id) {
            if s.id >= base {
                total += s.memory_bytes() + s.mem_chunks.len() as u64 * 4;
            }
            total += s.disk_bytes() + s.disk_blocks.len() as u64 * 4;
            total += SNAPSHOT_HEADER_BYTES;
        }
        let Some(last) = self.get(upto_id) else {
            return total;
        };
        total + last.cpu_state.len() as u64 + last.dev_state.len() as u64
    }

    /// Serialises the exact byte stream the modelled transfer protocol ships
    /// for a download up to snapshot `upto_id`: per snapshot a fixed header
    /// (id, step, flags, state root), the needed memory sections and the
    /// incremental disk sections as `u32 index || payload`, and finally the
    /// target's CPU and device state.
    ///
    /// The stream's length always equals
    /// [`SnapshotStore::transfer_bytes_upto`]; it exists so compression of
    /// the transferred state can be measured on the real payload rather than
    /// guessed at.
    pub fn transfer_stream_upto(&self, upto_id: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.transfer_bytes_upto(upto_id) as usize);
        let base = self.memory_base(upto_id);
        for s in self.chain_upto(upto_id) {
            out.extend_from_slice(&s.id.to_le_bytes());
            out.extend_from_slice(&s.step.to_le_bytes());
            out.push(u8::from(s.full_memory));
            out.push(u8::from(s.halted));
            out.extend_from_slice(s.state_root.as_bytes());
            if s.id >= base {
                for (idx, hash) in &s.mem_chunks {
                    out.extend_from_slice(&idx.to_le_bytes());
                    out.extend_from_slice(self.pool.get(hash).expect("pooled chunk"));
                }
            }
            for (idx, hash) in &s.disk_blocks {
                out.extend_from_slice(&idx.to_le_bytes());
                out.extend_from_slice(self.pool.get(hash).expect("pooled block"));
            }
        }
        if let Some(last) = self.get(upto_id) {
            out.extend_from_slice(&last.cpu_state);
            out.extend_from_slice(&last.dev_state);
        }
        out
    }

    /// Raw and compressed bytes of the transfer up to snapshot `upto_id`,
    /// compressing the actual [`SnapshotStore::transfer_stream_upto`] stream
    /// at `level` — the §6.12 numbers, which report *compressed* snapshots.
    pub fn transfer_cost_upto(&self, upto_id: u64, level: CompressionLevel) -> TransferCost {
        CompressionStats::measure(&self.transfer_stream_upto(upto_id), level)
    }

    /// Reconstructs a machine in the state captured by snapshot `upto_id`,
    /// starting from the reference `image` and applying the snapshot chain.
    ///
    /// The reconstructed state is authenticated against the stored root; a
    /// mismatch means the snapshot data was tampered with.
    pub fn materialize(
        &self,
        upto_id: u64,
        image: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<Machine, CoreError> {
        self.materialize_with_cost(upto_id, image, registry)
            .map(|(machine, _)| machine)
    }

    /// [`SnapshotStore::materialize`], additionally returning the transfer
    /// bytes consumed — counted at the apply sites, so tests can pin the
    /// accounting in [`SnapshotStore::transfer_bytes_upto`] to what
    /// materialization actually uses.
    pub fn materialize_with_cost(
        &self,
        upto_id: u64,
        image: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<(Machine, u64), CoreError> {
        let target = self
            .get(upto_id)
            .ok_or_else(|| CoreError::Snapshot(format!("snapshot {upto_id} not found")))?;
        let mut machine = Machine::from_image(image, registry).map_err(CoreError::Vm)?;
        let mut consumed = 0u64;
        let base = self.memory_base(upto_id);
        for s in self.chain_upto(upto_id) {
            consumed += SNAPSHOT_HEADER_BYTES;
            if s.id >= base {
                for (idx, hash) in &s.mem_chunks {
                    let chunk = self.pool.get(hash).ok_or_else(|| {
                        CoreError::Snapshot(format!(
                            "chunk {idx} of snapshot {} missing from pool",
                            s.id
                        ))
                    })?;
                    if chunk.len() != CHUNK_SIZE {
                        return Err(CoreError::Snapshot("bad chunk size".to_string()));
                    }
                    machine
                        .memory_mut()
                        .set_chunk_from_slice(*idx as usize, chunk)
                        .map_err(CoreError::Vm)?;
                    consumed += 4 + chunk.len() as u64;
                }
            }
            for (idx, hash) in &s.disk_blocks {
                let block = self.pool.get(hash).ok_or_else(|| {
                    CoreError::Snapshot(format!(
                        "disk block {idx} of snapshot {} missing from pool",
                        s.id
                    ))
                })?;
                if block.len() != DISK_BLOCK_SIZE {
                    return Err(CoreError::Snapshot("bad disk block size".to_string()));
                }
                machine
                    .devices_mut()
                    .disk
                    .set_block(*idx as usize, block)
                    .map_err(CoreError::Vm)?;
                consumed += 4 + block.len() as u64;
            }
        }
        machine
            .restore_cpu_state(&target.cpu_state)
            .map_err(CoreError::Vm)?;
        machine
            .devices_mut()
            .restore_volatile(&target.dev_state)
            .map_err(CoreError::Vm)?;
        machine.set_control_state(target.step, target.halted, false);
        machine.clear_dirty_tracking();
        consumed += target.cpu_state.len() as u64 + target.dev_state.len() as u64;

        let root = compute_state_root(&machine);
        if root != target.state_root {
            return Err(CoreError::Snapshot(format!(
                "materialized state root {} does not match recorded root {}",
                root.short_hex(),
                target.state_root.short_hex()
            )));
        }
        Ok((machine, consumed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_vm::bytecode::assemble;
    use avm_vm::{StopCondition, VmExit, CHUNKS_PER_PAGE, PAGE_SIZE};

    fn image() -> VmImage {
        // A guest that stores an increasing counter to memory and disk each
        // time it receives a packet, so state actually changes between
        // snapshots.
        let src = r"
                movi r1, 0x8000     ; rx buffer
                movi r2, 64         ; max len
                movi r5, 0x9000     ; counter cell
                movi r7, 0          ; disk offset register
            loop:
                recv r0, r1, r2
                cmp r0, r6          ; r6 == 0
                jne got
                idle
                jmp loop
            got:
                load r3, r5
                addi r3, 1
                store r3, r5
                movi r4, 8
                diskwr r7, r5, r4
                jmp loop
            ";
        let code = assemble(src, 0).unwrap();
        VmImage::bytecode("snapshot-test", 128 * 1024, code, 0, 0).with_disk(vec![0u8; 16384])
    }

    fn run_until_idle(m: &mut Machine) {
        loop {
            match m.run(StopCondition::Unbounded).unwrap() {
                VmExit::Idle | VmExit::Halted => break,
                _ => {}
            }
        }
    }

    /// Chunk index of the guest's counter cell at 0x9000.
    const COUNTER_CHUNK: u32 = (0x9000 / CHUNK_SIZE) as u32;

    #[test]
    fn capture_and_materialize_single_snapshot() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);

        let snap = capture(&mut m, 0, true);
        assert_eq!(snap.id, 0);
        assert!(snap.memory_bytes() > 0);
        assert!(snap.disk_bytes() > 0);
        assert_eq!(snap.state_root, compute_state_root(&m));

        let mut store = SnapshotStore::new();
        store.push(snap);
        let restored = store.materialize(0, &img, &reg).unwrap();
        assert_eq!(restored.state_digest(), m.state_digest());
        assert_eq!(restored.step_count(), m.step_count());
    }

    #[test]
    fn incremental_chain_materializes_each_point() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        let mut reference_digests = Vec::new();

        run_until_idle(&mut m);
        for i in 0..4u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            let snap = capture(&mut m, i, false);
            store.push(snap);
            reference_digests.push(m.state_digest());
        }
        assert_eq!(store.len(), 4);
        for i in 0..4u64 {
            let restored = store.materialize(i, &img, &reg).unwrap();
            assert_eq!(
                restored.state_digest(),
                reference_digests[i as usize],
                "snapshot {i}"
            );
        }
    }

    #[test]
    fn incremental_snapshots_are_smaller_than_full() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let full = capture(&mut m, 0, true);
        m.inject_packet(vec![2]);
        run_until_idle(&mut m);
        let incr = capture(&mut m, 1, false);
        assert!(incr.memory_bytes() < full.memory_bytes());
        assert!(incr.total_bytes() < full.total_bytes());
        // Chunk granularity: the incremental capture carries whole chunks,
        // not whole pages — the counter bump costs one 512 B chunk.
        assert!(incr
            .mem_chunks
            .iter()
            .all(|(_, _, c)| c.len() == CHUNK_SIZE));
        assert!(
            incr.memory_bytes() < incr.chunk_count() as u64 * PAGE_SIZE as u64,
            "sub-page capture must undercut page granularity"
        );
    }

    #[test]
    fn tampered_snapshot_detected_at_materialization() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let mut snap = capture(&mut m, 0, true);
        // Tamper with the captured counter chunk (e.g. pretend the counter
        // was higher), re-hashing it like a forger rewriting their own
        // capture would.
        if let Some((_, hash, chunk)) = snap
            .mem_chunks
            .iter_mut()
            .find(|(idx, _, _)| *idx == COUNTER_CHUNK)
        {
            chunk[0] ^= 0xff;
            *hash = sha256(chunk);
        }
        let mut store = SnapshotStore::new();
        store.push(snap);
        assert!(matches!(
            store.materialize(0, &img, &reg).unwrap_err(),
            CoreError::Snapshot(_)
        ));
    }

    /// Tampering with a payload while keeping its original digest mis-keys
    /// the blob.  If the pool already holds the true content under that key
    /// (dedup), materialization silently self-heals; if not, the state-root
    /// authentication rejects the forged bytes.  Either way the forgery
    /// cannot produce a wrong-but-accepted state.
    #[test]
    fn stale_digest_tampering_cannot_forge_state() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let reference = m.state_digest();
        let mut snap = capture(&mut m, 0, true);
        if let Some((_, _, chunk)) = snap
            .mem_chunks
            .iter_mut()
            .find(|(idx, _, _)| *idx == COUNTER_CHUNK)
        {
            chunk[0] ^= 0xff; // content changed, digest left stale
        }
        let mut store = SnapshotStore::new();
        store.push(snap);
        match store.materialize(0, &img, &reg) {
            // Dedup resolved the stale key to the true content: the forged
            // bytes never made it into the reconstructed state.
            Ok(restored) => assert_eq!(restored.state_digest(), reference),
            // Or the forged bytes were applied and authentication caught it.
            Err(e) => assert!(matches!(e, CoreError::Snapshot(_))),
        }
    }

    /// A partially-resident (demand-paged) machine must never be captured:
    /// it would intern stale raw contents under authentic digests and
    /// poison the content-addressed pool.
    #[test]
    #[should_panic(expected = "staged demand-paged state")]
    fn capture_of_partially_resident_machine_is_rejected() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let authentic = vec![9u8; CHUNK_SIZE];
        let hash = sha256(&authentic);
        m.memory_mut().stage_lazy_chunk(3, authentic, hash).unwrap();
        let _ = capture(&mut m, 0, true);
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let store = SnapshotStore::new();
        assert!(store.is_empty());
        assert!(store
            .materialize(0, &image(), &GuestRegistry::new())
            .is_err());
    }

    /// An untrusted log can reference snapshot ids the store never saw; the
    /// accounting entry points must stay total (no slice panic) and
    /// materialization must report the missing snapshot as an error.
    #[test]
    fn out_of_range_ids_do_not_panic() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for i in 0..3u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, i == 0));
        }
        for wild_id in [3u64, 9, u64::MAX] {
            let bytes = store.transfer_bytes_upto(wild_id);
            assert!(bytes > 0);
            assert_eq!(store.transfer_stream_upto(wild_id).len() as u64, bytes);
            assert!(matches!(
                store.materialize(wild_id, &img, &reg).unwrap_err(),
                CoreError::Snapshot(_)
            ));
        }
    }

    #[test]
    fn transfer_accounting_counts_chain() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for i in 0..3u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, false));
        }
        let t0 = store.transfer_bytes_upto(0);
        let t2 = store.transfer_bytes_upto(2);
        assert!(t2 >= t0);
        assert!(t2 > 0);
    }

    /// Regression: for a chain `[full(0), inc(1), inc(2)]` the base full dump
    /// is state the auditor must download — the old accounting skipped the
    /// memory section of *every* non-target full snapshot, undercounting by
    /// the entire base dump.
    #[test]
    fn transfer_accounting_counts_base_full_dump() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let full = capture(&mut m, 0, true);
        let base_dump_bytes = full.memory_bytes();
        store.push(full);
        for i in 1..3u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, false));
        }
        let t2 = store.transfer_bytes_upto(2);
        assert!(
            t2 > base_dump_bytes,
            "transfer accounting must include the base full dump ({base_dump_bytes} bytes), got {t2}"
        );
        // The accounting equals the bytes materialization consumes, and the
        // serialised transfer stream is exactly that long.
        for id in 0..3u64 {
            let (_, consumed) = store.materialize_with_cost(id, &img, &reg).unwrap();
            assert_eq!(consumed, store.transfer_bytes_upto(id), "snapshot {id}");
            assert_eq!(
                store.transfer_stream_upto(id).len() as u64,
                store.transfer_bytes_upto(id),
                "snapshot {id}"
            );
        }
    }

    /// Memory sections that a later full dump overwrites are not part of the
    /// transfer (or of materialization): `[full(0), inc(1), full(2), inc(3)]`
    /// costs the same up to id 3 as the chain without snapshot 0's and 1's
    /// memory sections.
    #[test]
    fn superseded_memory_sections_are_skipped() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for (i, full) in [(0u64, true), (1, false), (2, true), (3, false)] {
            m.inject_packet(vec![i as u8 + 1]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, full));
        }
        let (restored, consumed) = store.materialize_with_cost(3, &img, &reg).unwrap();
        assert_eq!(consumed, store.transfer_bytes_upto(3));
        assert_eq!(restored.state_digest(), m.state_digest());
        // Superseded sections excluded: the total is less than the sum of all
        // snapshots' memory payloads would imply.
        let superseded: u64 = store.get(0).unwrap().memory_bytes();
        let all_payloads: u64 = store.all().iter().map(|s| s.total_bytes()).sum();
        assert!(store.transfer_bytes_upto(3) < all_payloads);
        assert!(superseded > 0);
        // But everything from the last full dump onward is included.
        assert!(
            store.transfer_bytes_upto(3)
                >= store.get(2).unwrap().memory_bytes() + store.get(3).unwrap().memory_bytes()
        );
    }

    /// The content-addressed pool makes repeated full captures of an idle
    /// guest free: the second capture's chunks are all dedup hits, so the
    /// stored payload does not grow, while the logical accounting does.
    #[test]
    fn idle_full_captures_store_no_new_payload() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let mut store = SnapshotStore::new();
        store.push(capture(&mut m, 0, true));
        let stored_after_first = store.stored_payload_bytes();
        assert!(stored_after_first > 0);
        // A mostly-zero guest dedups heavily even within one capture.
        assert!(
            stored_after_first < store.logical_payload_bytes(),
            "identical chunks within one full dump should share a blob"
        );
        store.push(capture(&mut m, 1, true)); // no writes since snapshot 0
        assert_eq!(
            store.stored_payload_bytes(),
            stored_after_first,
            "an idle full capture must add zero stored payload bytes"
        );
        assert_eq!(
            store.logical_payload_bytes(),
            stored_after_first + store.deduped_payload_bytes()
        );
        // Both snapshots still materialize bit-identically (roots verified
        // inside materialize).
        let m0 = store.materialize(0, &img, &reg).unwrap();
        let m1 = store.materialize(1, &img, &reg).unwrap();
        assert_eq!(m0.state_digest(), m1.state_digest());
        assert_eq!(m1.state_digest(), m.state_digest());
    }

    /// Pruning rebases the chain: earlier snapshots disappear, unreferenced
    /// blobs are evicted, and everything from the new base onward — plus
    /// snapshots captured after the prune — still materializes and
    /// authenticates.
    #[test]
    fn prune_drops_blobs_and_preserves_later_snapshots() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        let mut digests = Vec::new();
        for i in 0..5u64 {
            m.inject_packet(vec![i as u8 + 1]);
            run_until_idle(&mut m);
            store.push(capture_with_cache(&mut m, &mut cache, i, i == 0));
            digests.push(m.state_digest());
        }
        let stored_before = store.stored_payload_bytes();

        let freed = store.prune_upto(2).unwrap();
        assert!(freed > 0, "the dropped counter-chunk versions must free");
        assert_eq!(store.base_id(), 2);
        assert_eq!(store.len(), 3);
        assert_eq!(store.next_id(), 5);
        assert_eq!(
            store.stored_payload_bytes(),
            stored_before - freed,
            "freed bytes must reconcile with the pool accounting"
        );
        // Pruned ids are gone; the accounting stays total on them.
        assert!(store.get(1).is_none());
        assert!(store.materialize(1, &img, &reg).is_err());
        let _ = store.transfer_bytes_upto(1);
        // Every surviving snapshot materializes bit-identically (materialize
        // authenticates the root internally — the rebased base included).
        for id in 2..5u64 {
            let restored = store.materialize(id, &img, &reg).unwrap();
            assert_eq!(restored.state_digest(), digests[id as usize], "id {id}");
            let (_, consumed) = store.materialize_with_cost(id, &img, &reg).unwrap();
            assert_eq!(consumed, store.transfer_bytes_upto(id), "id {id}");
        }

        // Recapture after the prune: the chain keeps growing from next_id.
        m.inject_packet(vec![9]);
        run_until_idle(&mut m);
        store.push(capture_with_cache(
            &mut m,
            &mut cache,
            store.next_id(),
            false,
        ));
        let restored = store.materialize(5, &img, &reg).unwrap();
        assert_eq!(restored.state_digest(), m.state_digest());

        // Pruning again at the base is a no-op; pruning at a dropped or
        // unknown id is an error.
        assert_eq!(store.prune_upto(2).unwrap(), 0);
        assert!(store.prune_upto(99).is_err());
    }

    /// A prune in the middle of incremental-only history (no full dump after
    /// the base) must fold the dropped disk and memory increments into the
    /// rebased snapshot — state from snapshot 0 survives via the rebase.
    #[test]
    fn prune_folds_incremental_history_into_base() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for i in 0..4u64 {
            m.inject_packet(vec![i as u8 + 1]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, false)); // incremental only
        }
        let want = store.materialize(3, &img, &reg).unwrap().state_digest();
        store.prune_upto(2).unwrap();
        assert!(store.get(2).unwrap().full_memory, "rebased base is full");
        let got = store.materialize(3, &img, &reg).unwrap().state_digest();
        assert_eq!(got, want);
    }

    /// The compression-aware transfer model measures the real stream: raw
    /// equals the byte accounting, and the mostly-zero guest state compresses
    /// far below raw.
    #[test]
    fn transfer_cost_reports_raw_and_compressed() {
        use avm_compress::CompressionLevel;
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![7]);
        run_until_idle(&mut m);
        let mut store = SnapshotStore::new();
        store.push(capture(&mut m, 0, true));
        let cost = store.transfer_cost_upto(0, CompressionLevel::Default);
        assert_eq!(cost.raw_bytes, store.transfer_bytes_upto(0));
        assert!(cost.compressed_bytes > 0);
        assert!(
            cost.compressed_bytes < cost.raw_bytes / 4,
            "idle guest memory should compress well: {} vs {}",
            cost.compressed_bytes,
            cost.raw_bytes
        );
    }

    #[test]
    fn cached_roots_match_uncached_rebuild_across_snapshots() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        run_until_idle(&mut m);
        for i in 0..6u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            // Refresh twice between captures: updates must be idempotent.
            let mid_root = cache.refresh(&m);
            assert_eq!(mid_root, build_state_tree_uncached(&m).root(), "mid {i}");
            let snap = capture_with_cache(&mut m, &mut cache, i, i % 2 == 0);
            assert_eq!(
                snap.state_root,
                build_state_tree_uncached(&m).root(),
                "snapshot {i}"
            );
            assert_eq!(snap.state_root, compute_state_root(&m), "stateless {i}");
        }
        // After invalidation the rebuilt tree agrees with the incremental one.
        let before = cache.refresh(&m);
        cache.invalidate();
        assert_eq!(cache.refresh(&m), before);
        assert!(cache.tree().is_some());
    }

    /// The header-leaf skip must never miss a header change: device-state
    /// mutations that dirty no chunk (an injected packet, a console write)
    /// still have to show up in the next refreshed root, while refreshes
    /// with no header activity at all stay correct too.
    #[test]
    fn header_leaves_skip_is_sound() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        run_until_idle(&mut m);
        capture_with_cache(&mut m, &mut cache, 0, true);

        // Idle machine: repeated refreshes, version unchanged, root stable
        // and equal to a full rebuild.
        let v = m.state_version();
        let r1 = cache.refresh(&m);
        assert_eq!(m.state_version(), v);
        assert_eq!(r1, build_state_tree_uncached(&m).root());
        assert_eq!(cache.refresh(&m), r1);

        // A packet injection changes only volatile device state (the NIC rx
        // queue) — no chunk is dirtied.  The refresh must pick it up.
        m.inject_packet(vec![0xAB, 0xCD]);
        let r2 = cache.refresh(&m);
        assert_ne!(r1, r2, "injected packet must change the header leaves");
        assert_eq!(r2, build_state_tree_uncached(&m).root());

        // Memory-only writes between refreshes: header version is untouched
        // (the skip engages) and the root still matches a rebuild.
        m.memory_mut().write_u8(0x9100, 9).unwrap();
        let v2 = m.state_version();
        let r3 = cache.refresh(&m);
        assert_eq!(m.state_version(), v2);
        assert_ne!(r2, r3);
        assert_eq!(r3, build_state_tree_uncached(&m).root());
    }

    #[test]
    fn cache_survives_direct_tampering_via_dirty_bits() {
        // Writes through memory_mut()/disk (how a cheating operator would
        // tamper mid-run) set dirty bits, so the cached tree must pick them
        // up on the next refresh.
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        run_until_idle(&mut m);
        capture_with_cache(&mut m, &mut cache, 0, true);
        m.memory_mut().write_u64(0x9000, 0xDEAD).unwrap();
        m.devices_mut().disk.write(0, &[0xAB; 16]).unwrap();
        assert_eq!(cache.refresh(&m), build_state_tree_uncached(&m).root());
    }

    #[test]
    fn snapshot_accounting_includes_framing() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let snap = capture(&mut m, 0, true);
        assert_eq!(
            snap.chunk_count(),
            m.memory().page_count() * CHUNKS_PER_PAGE
        );
        assert_eq!(
            snap.metadata_bytes(),
            (snap.mem_chunks.len() + snap.disk_blocks.len()) as u64 * 4 + 50
        );
        assert_eq!(
            snap.total_bytes(),
            snap.memory_bytes()
                + snap.disk_bytes()
                + snap.cpu_state.len() as u64
                + snap.dev_state.len() as u64
                + snap.metadata_bytes()
        );
    }

    #[test]
    fn state_root_changes_with_state() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        let r1 = compute_state_root(&m);
        m.inject_packet(vec![9]);
        run_until_idle(&mut m);
        let r2 = compute_state_root(&m);
        assert_ne!(r1, r2);
        // The tree exposes per-leaf proofs.
        let tree = build_state_tree(&m);
        assert!(tree.leaf_count() > 3);
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify_hash(sha256(&m.save_cpu_state()), &tree.root()));
    }
}
