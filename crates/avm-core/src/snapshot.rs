//! Incremental snapshots with authenticated (Merkle) state roots.
//!
//! The AVMM "periodically takes a snapshot of the AVM's state … snapshots are
//! incremental, that is, they only contain the state that has changed since
//! the last snapshot.  The AVMM also maintains a hash tree over the state;
//! after each snapshot, it updates the tree and then records the top-level
//! value in the log" (paper §4.4).  Auditors use snapshots as the starting
//! points of spot checks (§3.5, §6.12) and authenticate downloaded state
//! against the recorded root.
//!
//! Mirroring the prototype's behaviour reported in §6.12, a snapshot carries
//! a *full* dump of guest memory pages plus *incremental* (dirty-only) disk
//! blocks; [`Snapshot::incremental_memory`] captures dirty-only memory as
//! well for harnesses that want the optimised variant.
//!
//! # The incremental state-root pipeline
//!
//! The state root covers a fixed leaf order — CPU state, device state,
//! control word, every memory page, every disk block — so recorder and
//! auditor always derive comparable roots.  Naively that is O(total state)
//! of hashing per snapshot; the paper's own AVMM "maintains" the tree
//! instead of rebuilding it, and so does this module:
//!
//! 1. `avm-vm` memoises each page/block SHA-256, invalidating a slot the
//!    moment that page/block is written ([`avm_vm::GuestMemory::page_hash`],
//!    [`avm_vm::devices::Disk::block_hash`]).
//! 2. [`StateTreeCache`] keeps the Merkle tree alive across snapshots and,
//!    on [`StateTreeCache::refresh`], re-derives only the three header
//!    leaves plus the leaves flagged by the VM's dirty bits, updating the
//!    tree in one O(dirty + log n) batch
//!    ([`MerkleTree::update_leaf_hashes`]).
//!
//! **Invalidation contract:** `refresh` trusts the dirty bits to name every
//! page/block whose contents changed since the cache was last in sync.
//! That holds as long as dirty bits are only cleared at capture points
//! (which is when the cache is refreshed); callers that clear dirty
//! tracking elsewhere must call [`StateTreeCache::invalidate`] first.
//! Refreshing a leaf whose content did not change is always safe — updates
//! are idempotent — so it does not matter if dirty bits over-approximate.
//! [`build_state_tree_uncached`] remains as the reference implementation;
//! tests and benches cross-check the cached root against it.

use avm_crypto::merkle::MerkleTree;
use avm_crypto::sha256::{sha256, Digest};
use avm_vm::devices::DISK_BLOCK_SIZE;
use avm_vm::{GuestRegistry, Machine, VmImage, PAGE_SIZE};

use crate::error::CoreError;

/// Fixed framing bytes per snapshot: `id` (8) + `step` (8) + the
/// `full_memory`/`halted` flags (2) + the state root (32).
pub const SNAPSHOT_HEADER_BYTES: u64 = 50;

/// A point-in-time capture of AVM state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Dense snapshot identifier (0, 1, 2, …).
    pub id: u64,
    /// Machine step count at capture time.
    pub step: u64,
    /// Whether the memory section contains every page (`true`) or only pages
    /// dirtied since the previous snapshot (`false`).
    pub full_memory: bool,
    /// Captured memory pages as `(page index, contents)`.
    pub mem_pages: Vec<(u32, Vec<u8>)>,
    /// Captured disk blocks as `(block index, contents)` — always incremental.
    pub disk_blocks: Vec<(u32, Vec<u8>)>,
    /// Serialized CPU state.
    pub cpu_state: Vec<u8>,
    /// Serialized volatile device state.
    pub dev_state: Vec<u8>,
    /// Whether the guest had halted.
    pub halted: bool,
    /// Merkle root over the complete machine state at capture time.
    pub state_root: Digest,
}

impl Snapshot {
    /// Bytes of captured memory page payloads.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_pages.iter().map(|(_, p)| p.len() as u64).sum()
    }

    /// Bytes of captured disk block payloads.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_blocks.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Number of memory pages this snapshot carries (all pages for a full
    /// capture, dirty pages only for an incremental one).
    pub fn page_count(&self) -> usize {
        self.mem_pages.len()
    }

    /// Framing bytes beyond the raw payloads: the per-entry `u32` indices
    /// (which dominate relative overhead for small dirty-only captures) plus
    /// the fixed header ([`SNAPSHOT_HEADER_BYTES`]).
    pub fn metadata_bytes(&self) -> u64 {
        (self.mem_pages.len() + self.disk_blocks.len()) as u64 * 4 + SNAPSHOT_HEADER_BYTES
    }

    /// Total size of the snapshot as stored or transferred: payloads
    /// (memory + disk + CPU + devices) plus [`Snapshot::metadata_bytes`].
    ///
    /// Counting the framing keeps full and dirty-only captures comparable —
    /// a dirty-only capture pays per-entry index overhead that a "payload
    /// only" total would hide.
    pub fn total_bytes(&self) -> u64 {
        self.memory_bytes()
            + self.disk_bytes()
            + self.cpu_state.len() as u64
            + self.dev_state.len() as u64
            + self.metadata_bytes()
    }
}

/// Hashes the three header leaves (CPU, devices, control word) that precede
/// the per-page and per-block leaves in the fixed leaf order.
fn header_leaves(machine: &Machine) -> [Digest; 3] {
    let mut control = Vec::with_capacity(10);
    control.extend_from_slice(&machine.step_count().to_le_bytes());
    control.push(u8::from(machine.is_halted()));
    control.push(u8::from(machine.is_waiting_clock()));
    [
        sha256(&machine.save_cpu_state()),
        sha256(&machine.devices().save_volatile()),
        sha256(&control),
    ]
}

/// Computes the Merkle root over the complete state of `machine`.
///
/// The leaf order is fixed (CPU state, device state, control word, every
/// memory page, every disk block), so the recording AVMM and a replaying
/// auditor always derive comparable roots.  Page and block leaves come from
/// the VM's memoised hash caches; hot paths that take repeated roots should
/// hold a [`StateTreeCache`] instead, which also reuses the tree's interior
/// nodes.
pub fn compute_state_root(machine: &Machine) -> Digest {
    build_state_tree(machine).root()
}

/// Builds the full Merkle tree over machine state (exposed so auditors can
/// produce inclusion proofs for individual pages).
pub fn build_state_tree(machine: &Machine) -> MerkleTree {
    let mem = machine.memory();
    let disk = &machine.devices().disk;
    let mut leaves: Vec<Digest> =
        Vec::with_capacity(3 + mem.page_count() + disk.block_count());
    leaves.extend_from_slice(&header_leaves(machine));
    for i in 0..mem.page_count() {
        leaves.push(mem.page_hash(i).expect("page in range"));
    }
    for i in 0..disk.block_count() {
        leaves.push(disk.block_hash(i).expect("block in range"));
    }
    MerkleTree::from_leaf_hashes(leaves)
}

/// Reference tree construction that rehashes every page and block from raw
/// contents, bypassing the VM hash caches and any [`StateTreeCache`].
///
/// This is the seed implementation's cost model, kept as the baseline the
/// property tests cross-check against and the `fig6_snapshot_incremental`
/// bench compares with.
pub fn build_state_tree_uncached(machine: &Machine) -> MerkleTree {
    let mem = machine.memory();
    let disk = &machine.devices().disk;
    let mut leaves: Vec<Digest> =
        Vec::with_capacity(3 + mem.page_count() + disk.block_count());
    leaves.extend_from_slice(&header_leaves(machine));
    for i in 0..mem.page_count() {
        leaves.push(sha256(mem.page(i).expect("page in range")));
    }
    for i in 0..disk.block_count() {
        leaves.push(sha256(disk.block(i).expect("block in range")));
    }
    MerkleTree::from_leaf_hashes(leaves)
}

/// A Merkle state tree kept alive between snapshots so each refresh costs
/// O(dirty leaves + log n) instead of O(total state).
///
/// See the module docs for the invalidation contract.  A fresh (or
/// [`StateTreeCache::invalidate`]d) cache rebuilds the tree in full on its
/// next refresh, so holding one is never less correct than calling
/// [`compute_state_root`] — only faster.
#[derive(Debug, Clone, Default)]
pub struct StateTreeCache {
    tree: Option<MerkleTree>,
}

impl StateTreeCache {
    /// Creates an empty cache (the first refresh builds the full tree).
    pub fn new() -> StateTreeCache {
        StateTreeCache::default()
    }

    /// Drops the cached tree, forcing the next refresh to rebuild it.
    ///
    /// Required before reusing the cache on a *different* machine, or after
    /// clearing dirty bits without refreshing.
    pub fn invalidate(&mut self) {
        self.tree = None;
    }

    /// The cached tree, if one has been built (for inclusion proofs).
    pub fn tree(&self) -> Option<&MerkleTree> {
        self.tree.as_ref()
    }

    /// Synchronises the cached tree with `machine` and returns the root.
    ///
    /// The three header leaves are always re-derived (they are tiny); page
    /// and block leaves are re-derived only where the machine's dirty bits
    /// say the contents may have changed since the last refresh.
    pub fn refresh(&mut self, machine: &Machine) -> Digest {
        let mem = machine.memory();
        let disk = &machine.devices().disk;
        let leaf_count = 3 + mem.page_count() + disk.block_count();
        match &mut self.tree {
            Some(tree) if tree.leaf_count() == leaf_count => {
                let header = header_leaves(machine);
                let dirty_pages = mem.dirty_pages();
                let dirty_blocks = disk.dirty_blocks();
                let mut updates: Vec<(usize, Digest)> =
                    Vec::with_capacity(3 + dirty_pages.len() + dirty_blocks.len());
                updates.push((0, header[0]));
                updates.push((1, header[1]));
                updates.push((2, header[2]));
                for i in dirty_pages {
                    updates.push((3 + i, mem.page_hash(i).expect("dirty page in range")));
                }
                let block_base = 3 + mem.page_count();
                for b in dirty_blocks {
                    updates.push((block_base + b, disk.block_hash(b).expect("dirty block in range")));
                }
                let ok = tree.update_leaf_hashes(&updates);
                debug_assert!(ok, "state tree leaf indices in range");
                tree.root()
            }
            _ => {
                let tree = build_state_tree(machine);
                let root = tree.root();
                self.tree = Some(tree);
                root
            }
        }
    }
}

/// Captures a snapshot of `machine` and clears its dirty tracking.
///
/// `full_memory` selects between the paper-prototype behaviour (full memory
/// dump, §6.12) and dirty-page-only memory.  This convenience form rebuilds
/// the state tree from the (memoised) leaf hashes; hot paths taking repeated
/// snapshots should use [`capture_with_cache`].
pub fn capture(machine: &mut Machine, id: u64, full_memory: bool) -> Snapshot {
    let mut cache = StateTreeCache::new();
    capture_with_cache(machine, &mut cache, id, full_memory)
}

/// Captures a snapshot of `machine`, maintaining `cache` incrementally, and
/// clears the machine's dirty tracking.
///
/// The dirty bits consumed here serve double duty: they select which leaves
/// of `cache` to refresh *and* which pages/blocks the snapshot carries, so
/// the snapshot and the root it records are always mutually consistent.
pub fn capture_with_cache(
    machine: &mut Machine,
    cache: &mut StateTreeCache,
    id: u64,
    full_memory: bool,
) -> Snapshot {
    let state_root = cache.refresh(machine);
    let mem = machine.memory();
    let mem_pages: Vec<(u32, Vec<u8>)> = if full_memory {
        (0..mem.page_count())
            .map(|i| (i as u32, mem.page(i).expect("page").to_vec()))
            .collect()
    } else {
        mem.dirty_pages()
            .into_iter()
            .map(|i| (i as u32, mem.page(i).expect("page").to_vec()))
            .collect()
    };
    let disk = &machine.devices().disk;
    let disk_blocks = disk
        .dirty_blocks()
        .into_iter()
        .map(|i| (i as u32, disk.block(i).expect("block").to_vec()))
        .collect();
    let snapshot = Snapshot {
        id,
        step: machine.step_count(),
        full_memory,
        mem_pages,
        disk_blocks,
        cpu_state: machine.save_cpu_state(),
        dev_state: machine.devices().save_volatile(),
        halted: machine.is_halted(),
        state_root,
    };
    machine.memory_mut().clear_dirty();
    machine.devices_mut().disk.clear_dirty();
    snapshot
}

/// An ordered collection of snapshots from one execution.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStore {
    snapshots: Vec<Snapshot>,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Adds a snapshot (ids must be dense and increasing).
    pub fn push(&mut self, snapshot: Snapshot) {
        debug_assert_eq!(snapshot.id as usize, self.snapshots.len());
        self.snapshots.push(snapshot);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when no snapshot has been taken.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Returns snapshot `id`.
    pub fn get(&self, id: u64) -> Option<&Snapshot> {
        self.snapshots.get(id as usize)
    }

    /// All snapshots.
    pub fn all(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Number of bytes an auditor must download to reconstruct the state at
    /// snapshot `upto_id`: the chain of incremental disk blocks plus the
    /// memory section of each snapshot needed, including per-entry index
    /// framing and the fixed per-snapshot header (so dirty-only chains are
    /// accounted consistently with [`Snapshot::total_bytes`]).
    pub fn transfer_bytes_upto(&self, upto_id: u64) -> u64 {
        let mut total = 0u64;
        for s in self.snapshots.iter().take(upto_id as usize + 1) {
            // Full-memory snapshots supersede earlier memory sections; only
            // the last one needs to be transferred.
            if !(s.full_memory && s.id < upto_id) {
                total += s.memory_bytes() + s.mem_pages.len() as u64 * 4;
            }
            total += s.disk_bytes() + s.disk_blocks.len() as u64 * 4;
            total += SNAPSHOT_HEADER_BYTES;
        }
        let Some(last) = self.get(upto_id) else {
            return total;
        };
        total + last.cpu_state.len() as u64 + last.dev_state.len() as u64
    }

    /// Reconstructs a machine in the state captured by snapshot `upto_id`,
    /// starting from the reference `image` and applying the snapshot chain.
    ///
    /// The reconstructed state is authenticated against the stored root; a
    /// mismatch means the snapshot data was tampered with.
    pub fn materialize(
        &self,
        upto_id: u64,
        image: &VmImage,
        registry: &GuestRegistry,
    ) -> Result<Machine, CoreError> {
        let target = self
            .get(upto_id)
            .ok_or_else(|| CoreError::Snapshot(format!("snapshot {upto_id} not found")))?;
        let mut machine = Machine::from_image(image, registry).map_err(CoreError::Vm)?;
        for s in self.snapshots.iter().take(upto_id as usize + 1) {
            // Skip memory sections that a later full-memory snapshot overwrites.
            let apply_memory = !(s.full_memory && s.id < upto_id)
                || !self.snapshots[(s.id as usize + 1)..=(upto_id as usize)]
                    .iter()
                    .any(|later| later.full_memory);
            if apply_memory {
                for (idx, page) in &s.mem_pages {
                    if page.len() != PAGE_SIZE {
                        return Err(CoreError::Snapshot("bad page size".to_string()));
                    }
                    machine
                        .memory_mut()
                        .set_page_from_slice(*idx as usize, page)
                        .map_err(CoreError::Vm)?;
                }
            }
            for (idx, block) in &s.disk_blocks {
                if block.len() != DISK_BLOCK_SIZE {
                    return Err(CoreError::Snapshot("bad disk block size".to_string()));
                }
                machine
                    .devices_mut()
                    .disk
                    .set_block(*idx as usize, block)
                    .map_err(CoreError::Vm)?;
            }
        }
        machine
            .restore_cpu_state(&target.cpu_state)
            .map_err(CoreError::Vm)?;
        machine
            .devices_mut()
            .restore_volatile(&target.dev_state)
            .map_err(CoreError::Vm)?;
        machine.set_control_state(target.step, target.halted, false);
        machine.memory_mut().clear_dirty();
        machine.devices_mut().disk.clear_dirty();

        let root = compute_state_root(&machine);
        if root != target.state_root {
            return Err(CoreError::Snapshot(format!(
                "materialized state root {} does not match recorded root {}",
                root.short_hex(),
                target.state_root.short_hex()
            )));
        }
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_vm::bytecode::assemble;
    use avm_vm::{StopCondition, VmExit};

    fn image() -> VmImage {
        // A guest that stores an increasing counter to memory and disk each
        // time it receives a packet, so state actually changes between
        // snapshots.
        let src = r"
                movi r1, 0x8000     ; rx buffer
                movi r2, 64         ; max len
                movi r5, 0x9000     ; counter cell
                movi r7, 0          ; disk offset register
            loop:
                recv r0, r1, r2
                cmp r0, r6          ; r6 == 0
                jne got
                idle
                jmp loop
            got:
                load r3, r5
                addi r3, 1
                store r3, r5
                movi r4, 8
                diskwr r7, r5, r4
                jmp loop
            ";
        let code = assemble(src, 0).unwrap();
        VmImage::bytecode("snapshot-test", 128 * 1024, code, 0, 0).with_disk(vec![0u8; 16384])
    }

    fn run_until_idle(m: &mut Machine) {
        loop {
            match m.run(StopCondition::Unbounded).unwrap() {
                VmExit::Idle | VmExit::Halted => break,
                _ => {}
            }
        }
    }

    #[test]
    fn capture_and_materialize_single_snapshot() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);

        let snap = capture(&mut m, 0, true);
        assert_eq!(snap.id, 0);
        assert!(snap.memory_bytes() > 0);
        assert!(snap.disk_bytes() > 0);
        assert_eq!(snap.state_root, compute_state_root(&m));

        let mut store = SnapshotStore::new();
        store.push(snap);
        let restored = store.materialize(0, &img, &reg).unwrap();
        assert_eq!(restored.state_digest(), m.state_digest());
        assert_eq!(restored.step_count(), m.step_count());
    }

    #[test]
    fn incremental_chain_materializes_each_point() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        let mut reference_digests = Vec::new();

        run_until_idle(&mut m);
        for i in 0..4u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            let snap = capture(&mut m, i, false);
            store.push(snap);
            reference_digests.push(m.state_digest());
        }
        assert_eq!(store.len(), 4);
        for i in 0..4u64 {
            let restored = store.materialize(i, &img, &reg).unwrap();
            assert_eq!(restored.state_digest(), reference_digests[i as usize], "snapshot {i}");
        }
    }

    #[test]
    fn incremental_snapshots_are_smaller_than_full() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let full = capture(&mut m, 0, true);
        m.inject_packet(vec![2]);
        run_until_idle(&mut m);
        let incr = capture(&mut m, 1, false);
        assert!(incr.memory_bytes() < full.memory_bytes());
        assert!(incr.total_bytes() < full.total_bytes());
    }

    #[test]
    fn tampered_snapshot_detected_at_materialization() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let mut snap = capture(&mut m, 0, true);
        // Tamper with a captured page (e.g. pretend the counter was higher).
        if let Some((_, page)) = snap.mem_pages.iter_mut().find(|(idx, _)| *idx == 9) {
            page[0] ^= 0xff;
        }
        let mut store = SnapshotStore::new();
        store.push(snap);
        assert!(matches!(
            store.materialize(0, &img, &reg).unwrap_err(),
            CoreError::Snapshot(_)
        ));
    }

    #[test]
    fn missing_snapshot_is_an_error() {
        let store = SnapshotStore::new();
        assert!(store.is_empty());
        assert!(store
            .materialize(0, &image(), &GuestRegistry::new())
            .is_err());
    }

    #[test]
    fn transfer_accounting_counts_chain() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut store = SnapshotStore::new();
        run_until_idle(&mut m);
        for i in 0..3u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            store.push(capture(&mut m, i, false));
        }
        let t0 = store.transfer_bytes_upto(0);
        let t2 = store.transfer_bytes_upto(2);
        assert!(t2 >= t0);
        assert!(t2 > 0);
    }

    #[test]
    fn cached_roots_match_uncached_rebuild_across_snapshots() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        run_until_idle(&mut m);
        for i in 0..6u64 {
            m.inject_packet(vec![i as u8]);
            run_until_idle(&mut m);
            // Refresh twice between captures: updates must be idempotent.
            let mid_root = cache.refresh(&m);
            assert_eq!(mid_root, build_state_tree_uncached(&m).root(), "mid {i}");
            let snap = capture_with_cache(&mut m, &mut cache, i, i % 2 == 0);
            assert_eq!(
                snap.state_root,
                build_state_tree_uncached(&m).root(),
                "snapshot {i}"
            );
            assert_eq!(snap.state_root, compute_state_root(&m), "stateless {i}");
        }
        // After invalidation the rebuilt tree agrees with the incremental one.
        let before = cache.refresh(&m);
        cache.invalidate();
        assert_eq!(cache.refresh(&m), before);
        assert!(cache.tree().is_some());
    }

    #[test]
    fn cache_survives_direct_tampering_via_dirty_bits() {
        // Writes through memory_mut()/disk (how a cheating operator would
        // tamper mid-run) set dirty bits, so the cached tree must pick them
        // up on the next refresh.
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        let mut cache = StateTreeCache::new();
        run_until_idle(&mut m);
        capture_with_cache(&mut m, &mut cache, 0, true);
        m.memory_mut().write_u64(0x9000, 0xDEAD).unwrap();
        m.devices_mut().disk.write(0, &[0xAB; 16]).unwrap();
        assert_eq!(cache.refresh(&m), build_state_tree_uncached(&m).root());
    }

    #[test]
    fn snapshot_accounting_includes_framing() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        m.inject_packet(vec![1]);
        run_until_idle(&mut m);
        let snap = capture(&mut m, 0, true);
        assert_eq!(snap.page_count(), m.memory().page_count());
        assert_eq!(
            snap.metadata_bytes(),
            (snap.mem_pages.len() + snap.disk_blocks.len()) as u64 * 4 + 50
        );
        assert_eq!(
            snap.total_bytes(),
            snap.memory_bytes()
                + snap.disk_bytes()
                + snap.cpu_state.len() as u64
                + snap.dev_state.len() as u64
                + snap.metadata_bytes()
        );
    }

    #[test]
    fn state_root_changes_with_state() {
        let img = image();
        let reg = GuestRegistry::new();
        let mut m = Machine::from_image(&img, &reg).unwrap();
        run_until_idle(&mut m);
        let r1 = compute_state_root(&m);
        m.inject_packet(vec![9]);
        run_until_idle(&mut m);
        let r2 = compute_state_root(&m);
        assert_ne!(r1, r2);
        // The tree exposes per-leaf proofs.
        let tree = build_state_tree(&m);
        assert!(tree.leaf_count() > 3);
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify_hash(sha256(&m.save_cpu_state()), &tree.root()));
    }
}
