//! Multi-party support: authenticator collection, the challenge protocol and
//! evidence distribution (paper §4.6).
//!
//! In a multi-player game or a federated system, the auditor of a machine
//! `M` needs authenticators that *other* users collected from `M`; a machine
//! that answers some peers but ignores an auditor must not be able to avoid
//! the audit; and evidence found by one user must be distributable to (and
//! independently checkable by) everyone else.

use std::collections::HashMap;

use avm_crypto::keys::VerifyingKey;
use avm_log::Authenticator;
use avm_vm::{GuestRegistry, VmImage};

use crate::audit::Evidence;

/// A per-auditor store of authenticators collected from other machines.
///
/// "When some user wants to audit a machine M, he needs to collect
/// authenticators from other users that may have communicated with M."
#[derive(Debug, Clone, Default)]
pub struct AuthenticatorStore {
    by_machine: HashMap<String, Vec<Authenticator>>,
}

impl AuthenticatorStore {
    /// Creates an empty store.
    pub fn new() -> AuthenticatorStore {
        AuthenticatorStore::default()
    }

    /// Records an authenticator received from `machine`.
    pub fn add(&mut self, machine: &str, auth: Authenticator) {
        let list = self.by_machine.entry(machine.to_string()).or_default();
        if !list.contains(&auth) {
            list.push(auth);
        }
    }

    /// Merges authenticators collected by another user (e.g. Charlie sends
    /// Alice everything he has collected about Bob before she audits Bob).
    pub fn merge_from(&mut self, other: &AuthenticatorStore) {
        for (machine, auths) in &other.by_machine {
            for a in auths {
                self.add(machine, a.clone());
            }
        }
    }

    /// All authenticators collected for `machine`, sorted by sequence number.
    pub fn for_machine(&self, machine: &str) -> Vec<Authenticator> {
        let mut v = self.by_machine.get(machine).cloned().unwrap_or_default();
        v.sort_by_key(|a| a.seq);
        v
    }

    /// Authenticators for `machine` with sequence numbers in `[from, to]`.
    pub fn for_machine_in_range(&self, machine: &str, from: u64, to: u64) -> Vec<Authenticator> {
        self.for_machine(machine)
            .into_iter()
            .filter(|a| a.seq >= from && a.seq <= to)
            .collect()
    }

    /// The highest sequence number committed to by `machine`, if any.
    pub fn latest_seq(&self, machine: &str) -> Option<u64> {
        self.by_machine
            .get(machine)
            .and_then(|v| v.iter().map(|a| a.seq).max())
    }

    /// Number of machines with collected authenticators.
    pub fn machine_count(&self) -> usize {
        self.by_machine.len()
    }
}

/// A challenge issued against an unresponsive machine.
///
/// "Alice forwards the message that M does not answer as a challenge for M
/// to the other nodes.  All nodes stop communicating with M until it responds
/// to the challenge."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    /// The machine being challenged.
    pub target: String,
    /// Who issued the challenge.
    pub issued_by: String,
    /// First log sequence number whose segment is demanded.
    pub from_seq: u64,
    /// Last log sequence number whose segment is demanded (typically the
    /// latest authenticator the issuer holds).
    pub to_seq: u64,
}

/// Tracks challenges and suspended peers at one node.
#[derive(Debug, Clone, Default)]
pub struct ChallengeTracker {
    open: HashMap<String, Challenge>,
}

impl ChallengeTracker {
    /// Creates an empty tracker.
    pub fn new() -> ChallengeTracker {
        ChallengeTracker::default()
    }

    /// Records a challenge; communication with the target is suspended.
    pub fn open_challenge(&mut self, challenge: Challenge) {
        self.open.insert(challenge.target.clone(), challenge);
    }

    /// True if the node must not communicate with `peer` (an unanswered
    /// challenge is outstanding against it).
    pub fn is_suspended(&self, peer: &str) -> bool {
        self.open.contains_key(peer)
    }

    /// The open challenge against `peer`, if any.
    pub fn challenge_for(&self, peer: &str) -> Option<&Challenge> {
        self.open.get(peer)
    }

    /// Marks a challenge as answered: the target produced the demanded log
    /// segment, so communication resumes.
    pub fn resolve(&mut self, peer: &str) -> Option<Challenge> {
        self.open.remove(peer)
    }

    /// Targets of all open challenges.
    pub fn suspended_peers(&self) -> Vec<String> {
        let mut v: Vec<String> = self.open.keys().cloned().collect();
        v.sort();
        v
    }
}

/// A pool of fault evidence shared among the honest participants.
///
/// "When one user obtains evidence of a fault, he may need to distribute
/// that evidence to other interested parties … who can verify it
/// independently; then both can decide never to play with Bob again."
#[derive(Default)]
pub struct EvidencePool {
    verified: HashMap<String, Vec<Evidence>>,
    rejected: u64,
}

impl EvidencePool {
    /// Creates an empty pool.
    pub fn new() -> EvidencePool {
        EvidencePool::default()
    }

    /// Submits evidence against a machine.  The pool verifies it
    /// independently before accepting it; bogus evidence is discarded.
    ///
    /// Returns `true` if the evidence was accepted.
    pub fn submit(
        &mut self,
        evidence: Evidence,
        machine_key: &VerifyingKey,
        reference: &VmImage,
        registry: &GuestRegistry,
    ) -> bool {
        if evidence.verify(machine_key, reference, registry) {
            self.verified
                .entry(evidence.machine.clone())
                .or_default()
                .push(evidence);
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// True if verified evidence exists against `machine`.
    pub fn is_exposed(&self, machine: &str) -> bool {
        self.verified.contains_key(machine)
    }

    /// Verified evidence against `machine`.
    pub fn evidence_against(&self, machine: &str) -> &[Evidence] {
        self.verified
            .get(machine)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of submissions that failed independent verification.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }
}

impl core::fmt::Debug for EvidencePool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EvidencePool")
            .field("machines_exposed", &self.verified.len())
            .field("rejected", &self.rejected)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_crypto::keys::{SignatureScheme, SigningKey};
    use avm_crypto::sha256::Digest;
    use avm_log::{EntryKind, LogEntry};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(seed: u64) -> SigningKey {
        let mut rng = StdRng::seed_from_u64(seed);
        SigningKey::generate(&mut rng, SignatureScheme::Rsa(512))
    }

    fn auth(k: &SigningKey, seq: u64) -> Authenticator {
        let entry = LogEntry::chained(&Digest::ZERO, seq, EntryKind::Send, vec![seq as u8]);
        Authenticator::create(k, &entry, Digest::ZERO)
    }

    #[test]
    fn store_collects_merges_and_filters() {
        let bob_key = key(1);
        let mut alice = AuthenticatorStore::new();
        let mut charlie = AuthenticatorStore::new();
        alice.add("bob", auth(&bob_key, 3));
        alice.add("bob", auth(&bob_key, 3)); // duplicate ignored
        charlie.add("bob", auth(&bob_key, 7));
        charlie.add("dave", auth(&key(2), 1));

        alice.merge_from(&charlie);
        assert_eq!(alice.machine_count(), 2);
        let bobs = alice.for_machine("bob");
        assert_eq!(bobs.len(), 2);
        assert_eq!(bobs[0].seq, 3);
        assert_eq!(bobs[1].seq, 7);
        assert_eq!(alice.latest_seq("bob"), Some(7));
        assert_eq!(alice.latest_seq("nobody"), None);
        assert_eq!(alice.for_machine_in_range("bob", 4, 10).len(), 1);
        assert!(alice.for_machine("nobody").is_empty());
    }

    #[test]
    fn challenge_lifecycle() {
        let mut tracker = ChallengeTracker::new();
        assert!(!tracker.is_suspended("bob"));
        tracker.open_challenge(Challenge {
            target: "bob".into(),
            issued_by: "alice".into(),
            from_seq: 1,
            to_seq: 55,
        });
        assert!(tracker.is_suspended("bob"));
        assert_eq!(tracker.suspended_peers(), vec!["bob".to_string()]);
        assert_eq!(tracker.challenge_for("bob").unwrap().to_seq, 55);
        // Bob answers the challenge: communication resumes.
        let resolved = tracker.resolve("bob").unwrap();
        assert_eq!(resolved.issued_by, "alice");
        assert!(!tracker.is_suspended("bob"));
        assert!(tracker.resolve("bob").is_none());
    }

    #[test]
    fn evidence_pool_rejects_unverifiable_evidence() {
        use crate::error::FaultReason;
        use avm_vm::bytecode::assemble;
        use avm_vm::VmImage;

        let image = VmImage::bytecode("x", 4096, assemble("halt", 0).unwrap(), 0, 0);
        let bob_key = key(1);
        let mut pool = EvidencePool::new();
        // Fabricated evidence with an empty segment cannot be verified.
        let bogus = Evidence {
            machine: "bob".into(),
            fault: FaultReason::MissingLog,
            prev_hash: Digest::ZERO,
            segment: vec![],
            authenticators: vec![],
            reference_image: image.digest(),
        };
        assert!(!pool.submit(
            bogus,
            &bob_key.verifying_key(),
            &image,
            &GuestRegistry::new()
        ));
        assert!(!pool.is_exposed("bob"));
        assert_eq!(pool.rejected_count(), 1);
        assert!(pool.evidence_against("bob").is_empty());
        assert!(format!("{pool:?}").contains("rejected"));
    }
}
