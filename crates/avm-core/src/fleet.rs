//! Fleet-scale auditing: one provider node, N concurrent audit sessions.
//!
//! The paper's deployment model (§2, §6) has *many mutually distrusting
//! auditors* — every customer of a machine audits it independently.  The
//! single-client [`crate::endpoint::SimNetTransport`] cannot express that:
//! it borrows the whole simulated network for one blocking exchange at a
//! time.  This module restructures the audit plane around long-lived
//! endpoints on a shared [`SimNet`]:
//!
//! * [`ProviderNode`] — the operator's audit server as a *sessionful*
//!   network endpoint.  Each auditor speaks inside its own session (the
//!   session id travels in every framed packet, giving each auditor a
//!   private request-id space), requests queue per session, and a
//!   round-robin scheduler with a configurable per-tick service budget
//!   drains them fairly.  Responses to the cacheable, auditor-independent
//!   requests (manifest, sections, §3.5 log chunks) are encoded **once**
//!   into a shared response cache — N auditors checking the same epoch pay
//!   the serialisation and hashing cost a single time.  Idle sessions can
//!   be expired after a configurable quiet period.
//! * [`FleetAuditor`] — the §3.5 spot check re-expressed as a
//!   non-blocking state machine so hundreds of copies interleave on one
//!   network.  It performs *exactly* the exchanges, accounting and
//!   retransmission policy of [`crate::endpoint::AuditClient`] over a
//!   [`crate::endpoint::SimNetTransport`]; a single-session fleet run is
//!   field-identical to that path (pinned by unit and property tests).
//!   With a [`ReplayCpuModel`] configured, replay CPU charges to the
//!   simulated clock; in **pipelined** mode the auditor replays the chunk
//!   segment-wise and puts each segment's blob batches on the wire the
//!   moment that segment's CPU finishes — fetch for segment i+1 overlaps
//!   replay of segment i instead of stalling behind the whole replay
//!   (verdicts and transfer columns never move, only completion latency).
//! * [`run_fleet`] — builds M providers and N auditors over one link
//!   config, drives them with [`avm_net::run_event_loop`], and returns
//!   every report plus per-session completion latencies, provider cache
//!   and scheduler statistics, and per-node traffic counters.
//!
//! Semantics never move: the verdict, the transfer columns and the wire
//! accounting of every session equal the single-client transport's.  Only
//! *when* each packet is served differs — and on a fleet of one, not even
//! that.

use std::collections::{HashMap, VecDeque};

use avm_attest::AttestVerdict;
use avm_compress::CompressionStats;
use avm_crypto::sha256::Digest;
use avm_log::{LogEntry, LogSource};
use avm_net::{
    run_event_loop, Delivery, Endpoint, EventLoopReport, LinkConfig, NodeId, NodeStats, SimNet,
};
use avm_vm::{GuestRegistry, VmImage};
use avm_wire::attest::AttestChallenge;
use avm_wire::audit::{
    open_session_frame, open_session_message, seal_encoded_message, seal_session_message,
    AuditRequest, AuditResponseRef, SegmentAddress, CLIENT_SESSION,
};
use avm_wire::{BlobRequest, Decode, Encode, DEFAULT_BLOB_BATCH};

use crate::attest::{challenge_nonce, Attestor, LaunchPolicy};
use crate::endpoint::{
    decode_entries, protocol_violation, AuditServer, TransportStats, DEFAULT_MAX_ATTEMPTS,
};
use crate::error::{CoreError, FaultReason};
use crate::ondemand::{
    operator_missing, verify_blob_batch, AuditorBlobCache, BlobFetch, ChainManifest, DedupTransfer,
    FaultClassification, OnDemandSession,
};
use crate::paraudit::{partition_chunk, ReplayCpuModel};
use crate::replay::{ReplayOutcome, ReplaySummary, Replayer};
use crate::snapshot::{SnapshotStore, TransferCost};
use crate::spotcheck::{snapshot_positions_in, SpotCheckReport, TRANSFER_COMPRESSION};

// ---------------------------------------------------------------------------
// Provider node
// ---------------------------------------------------------------------------

/// Scheduling and session-lifetime knobs for a [`ProviderNode`].
///
/// The defaults serve every queued request the moment it is due and never
/// expire sessions — which is exactly what keeps a fleet of one on the
/// single-client transport's timing.  Budgeted service and idle expiry are
/// opt-in fleet behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProviderConfig {
    /// Requests served per scheduler pass; the rest stay queued until the
    /// next tick.  `usize::MAX` (default) = drain everything due now.
    pub service_budget: usize,
    /// When a pass leaves a backlog, re-tick after this many simulated µs.
    /// `0` (default) = continue at the same instant (budget still bounds
    /// each pass, so auditors between passes see interleaved service).
    pub tick_interval_us: u64,
    /// Expire a session this many µs after its last request, reclaiming its
    /// state.  `None` (default) = sessions live for the whole run.
    pub idle_expiry_us: Option<u64>,
}

impl Default for ProviderConfig {
    fn default() -> ProviderConfig {
        ProviderConfig {
            service_budget: usize::MAX,
            tick_interval_us: 0,
            idle_expiry_us: None,
        }
    }
}

/// Shared-response-cache accounting (see [`ProviderStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from an already-encoded response.
    pub hits: u64,
    /// Requests that had to be served and encoded (the encoding is then
    /// cached).
    pub misses: u64,
    /// Distinct responses currently cached.
    pub entries: u64,
    /// Total encoded bytes held by the cache.
    pub bytes: u64,
}

/// What one [`ProviderNode`] did over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProviderStats {
    /// Sessions opened (first packet seen with a new (peer, session) pair).
    pub sessions_created: u64,
    /// Sessions reclaimed by idle expiry.
    pub sessions_expired: u64,
    /// Sessions still live when the stats were read.
    pub active_sessions: u64,
    /// Requests answered (including re-answers to retransmitted requests).
    pub requests_served: u64,
    /// Shared response cache accounting.
    pub cache: CacheStats,
}

/// Key of one cacheable response: these requests are auditor-independent,
/// so their encoded responses are shared across every session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ResponseKey {
    Manifest(u64),
    Sections(u64),
    LogChunk { start_snapshot: u64, chunk: u64 },
}

impl ResponseKey {
    fn of(request: &AuditRequest) -> Option<ResponseKey> {
        match request {
            AuditRequest::Manifest { snapshot_id } => Some(ResponseKey::Manifest(*snapshot_id)),
            AuditRequest::Sections { upto_id } => Some(ResponseKey::Sections(*upto_id)),
            AuditRequest::LogSegment(SegmentAddress::Chunk {
                start_snapshot,
                chunk,
            }) => Some(ResponseKey::LogChunk {
                start_snapshot: *start_snapshot,
                chunk: *chunk,
            }),
            // Blob requests are auditor-specific (each asks for exactly what
            // its replay faulted and its cache lacks); Seq segments are the
            // full-log audit path, not the hot fleet path.
            _ => None,
        }
    }
}

/// One auditor's server-side session state.
#[derive(Debug)]
struct SessionState {
    /// Requests delivered but not yet served, in arrival order.
    pending: VecDeque<(u64, AuditRequest)>,
    /// Simulated time of the last packet from this session.
    last_active_us: u64,
}

/// The operator's audit server as a long-lived, sessionful endpoint on a
/// shared [`SimNet`] (see the module docs).
pub struct ProviderNode<'a> {
    node: NodeId,
    server: AuditServer<'a>,
    config: ProviderConfig,
    sessions: HashMap<(NodeId, u64), SessionState>,
    /// Session keys in creation order — the scheduler's rotation order.
    /// (Never iterate the map: hash order would break determinism.)
    order: Vec<(NodeId, u64)>,
    /// Rotation position; persists across passes so budgeted service is
    /// fair over time, not just within a pass.
    cursor: usize,
    cache: HashMap<ResponseKey, Vec<u8>>,
    cache_hits: u64,
    cache_misses: u64,
    cache_bytes: u64,
    sessions_created: u64,
    sessions_expired: u64,
    requests_served: u64,
}

impl<'a> ProviderNode<'a> {
    /// A provider endpoint receiving on `node`, answering from `server`.
    pub fn new(node: NodeId, server: AuditServer<'a>, config: ProviderConfig) -> ProviderNode<'a> {
        ProviderNode {
            node,
            server,
            config,
            sessions: HashMap::new(),
            order: Vec::new(),
            cursor: 0,
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_bytes: 0,
            sessions_created: 0,
            sessions_expired: 0,
            requests_served: 0,
        }
    }

    /// Run accounting so far.
    pub fn stats(&self) -> ProviderStats {
        ProviderStats {
            sessions_created: self.sessions_created,
            sessions_expired: self.sessions_expired,
            active_sessions: self.sessions.len() as u64,
            requests_served: self.requests_served,
            cache: CacheStats {
                hits: self.cache_hits,
                misses: self.cache_misses,
                entries: self.cache.len() as u64,
                bytes: self.cache_bytes,
            },
        }
    }

    /// The framed response for `(session, request_id, request)`, served from
    /// the shared cache when the request is auditor-independent.
    fn sealed_response(
        &mut self,
        session_id: u64,
        request_id: u64,
        request: &AuditRequest,
    ) -> Vec<u8> {
        match ResponseKey::of(request) {
            Some(key) => {
                if self.cache.contains_key(&key) {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                    let encoded = self.server.handle(request).encode_to_vec();
                    self.cache_bytes += encoded.len() as u64;
                    self.cache.insert(key, encoded);
                }
                seal_encoded_message(session_id, request_id, &self.cache[&key])
            }
            None => seal_encoded_message(
                session_id,
                request_id,
                &self.server.handle(request).encode_to_vec(),
            ),
        }
    }

    /// One scheduler pass: serve up to `service_budget` queued requests,
    /// visiting sessions round-robin from where the last pass stopped.
    /// Returns true when a backlog remains.
    fn serve_pass(&mut self, net: &mut SimNet) -> bool {
        let mut budget = self.config.service_budget;
        let mut idle_streak = 0;
        while budget > 0 && !self.order.is_empty() && idle_streak < self.order.len() {
            let index = self.cursor % self.order.len();
            self.cursor = (index + 1) % self.order.len();
            let key = self.order[index];
            let next = self
                .sessions
                .get_mut(&key)
                .and_then(|s| s.pending.pop_front());
            match next {
                Some((request_id, request)) => {
                    let packet = self.sealed_response(key.1, request_id, &request);
                    let _ = net.send(self.node, key.0, packet);
                    self.requests_served += 1;
                    budget -= 1;
                    idle_streak = 0;
                }
                None => idle_streak += 1,
            }
        }
        self.sessions.values().any(|s| !s.pending.is_empty())
    }

    /// Reclaims sessions whose queues are empty and whose last packet is at
    /// least `idle_expiry_us` old.
    fn expire_idle(&mut self, now: u64) {
        let Some(expiry) = self.config.idle_expiry_us else {
            return;
        };
        let sessions = &self.sessions;
        let expired: Vec<(NodeId, u64)> = self
            .order
            .iter()
            .copied()
            .filter(|key| {
                sessions.get(key).is_some_and(|s| {
                    s.pending.is_empty() && now.saturating_sub(s.last_active_us) >= expiry
                })
            })
            .collect();
        if expired.is_empty() {
            return;
        }
        for key in &expired {
            self.sessions.remove(key);
            self.sessions_expired += 1;
        }
        self.order.retain(|key| !expired.contains(key));
        self.cursor = if self.order.is_empty() {
            0
        } else {
            self.cursor % self.order.len()
        };
    }
}

impl Endpoint for ProviderNode<'_> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn on_delivery(&mut self, net: &mut SimNet, delivery: Delivery) {
        // Undecodable packets are dropped, like the stateless transport's
        // provider loop: the auditor's timeout owns recovery.
        let Ok((session_id, request_id, request)) =
            open_session_message::<AuditRequest>(&delivery.payload)
        else {
            return;
        };
        let key = (delivery.from, session_id);
        if let std::collections::hash_map::Entry::Vacant(slot) = self.sessions.entry(key) {
            slot.insert(SessionState {
                pending: VecDeque::new(),
                last_active_us: 0,
            });
            self.order.push(key);
            self.sessions_created += 1;
        }
        let session = self.sessions.get_mut(&key).expect("session just ensured");
        session.last_active_us = net.now();
        session.pending.push_back((request_id, request));
    }

    fn on_tick(&mut self, net: &mut SimNet) -> Option<u64> {
        let now = net.now();
        self.expire_idle(now);
        if self.serve_pass(net) {
            return Some(now.saturating_add(self.config.tick_interval_us));
        }
        // No backlog: wake only if sessions are waiting to be expired.
        let expiry = self.config.idle_expiry_us?;
        self.order
            .iter()
            .filter_map(|key| self.sessions.get(key))
            .map(|s| s.last_active_us.saturating_add(expiry))
            .min()
    }
}

// ---------------------------------------------------------------------------
// Fleet auditor
// ---------------------------------------------------------------------------

/// What one [`FleetAuditor`] is asked to check, and when to start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditTask {
    /// Snapshot the §3.5 chunk starts at.
    pub start_snapshot: u64,
    /// Chunk size `k` (snapshots per chunk).
    pub chunk: u64,
    /// On-demand (§3.5 incremental) vs full-download state transfer.
    pub on_demand: bool,
    /// Simulated µs at which this auditor opens its session.
    pub start_at_us: u64,
}

/// One in-flight request/response exchange.
#[derive(Debug)]
struct PendingExchange {
    request_id: u64,
    packet: Vec<u8>,
    /// When the first send happened (elapsed time is measured from here,
    /// across retransmissions — like the blocking transport).
    started_at: u64,
    /// Retransmit-if-silent deadline.
    deadline: u64,
    attempts: u32,
}

/// State carried across the on-demand blob exchange batches.
struct BlobExchange {
    log_cost: TransferCost,
    snapshot_cost: TransferCost,
    consistent: bool,
    fault: Option<FaultReason>,
    progress: ReplaySummary,
    dedup: DedupTransfer,
    session: OnDemandSession,
    classification: FaultClassification,
    batches: Vec<BlobRequest>,
    /// Modelled instant each batch's request becomes sendable (0 = at
    /// once).  The classic path leaves every entry at 0; the pipelined
    /// path stamps each batch with the simulated time the replay CPU for
    /// its segment finishes.
    ready_at: Vec<u64>,
    next_batch: usize,
    fetch: BlobFetch,
    encoded: Vec<u8>,
}

/// Where the spot-check state machine is.
enum Phase {
    /// Waiting for `start_at_us`.
    Idle,
    /// Attestation challenge sent; the session proceeds to the log chunk
    /// only once the launch measurement verifies.
    Attest { challenge: AttestChallenge },
    /// Log chunk requested.
    Chunk,
    /// Full-download mode: sections requested.  In pipelined mode the
    /// replay already ran while the sections stream is on the wire, and its
    /// verdict rides here.
    Sections {
        entries: Vec<LogEntry>,
        log_cost: TransferCost,
        prereplayed: Option<(bool, Option<FaultReason>, ReplaySummary)>,
    },
    /// On-demand mode: manifest requested.
    Manifest {
        entries: Vec<LogEntry>,
        log_cost: TransferCost,
        snapshot_cost: TransferCost,
    },
    /// On-demand mode: settle-time blob batches in flight.
    Blobs(Box<BlobExchange>),
    /// Wire work done; modelled replay CPU still charging.  Complete at
    /// `at` with the finished report.
    Draining { at: u64, report: SpotCheckReport },
    /// Finished (report or error recorded).
    Done,
}

/// A §3.5 spot check as a non-blocking endpoint: the exchanges, accounting
/// and retransmission policy of [`crate::endpoint::AuditClient`] over
/// [`crate::endpoint::SimNetTransport`], restructured so N copies interleave
/// on one shared network (see the module docs).
pub struct FleetAuditor<'a> {
    node: NodeId,
    provider: NodeId,
    session_id: u64,
    provider_store: &'a SnapshotStore,
    image: &'a VmImage,
    registry: &'a GuestRegistry,
    task: AuditTask,
    timeout_us: u64,
    max_attempts: u32,
    cache: AuditorBlobCache,
    stats: TransportStats,
    next_request_id: u64,
    pending: Option<PendingExchange>,
    phase: Phase,
    outcome: Option<Result<SpotCheckReport, CoreError>>,
    finished_at_us: Option<u64>,
    /// When set, replay CPU is charged to the simulated clock at this rate
    /// (default: replay is a zero-time event, the pinned classic timing).
    replay_cpu: Option<ReplayCpuModel>,
    /// Overlap wire wait with modelled replay CPU (segment-wise replay,
    /// per-segment fetches) instead of stalling fetches behind the full
    /// replay.  Only meaningful with `replay_cpu` set.
    pipelined: bool,
    /// Modelled instant this auditor's replay CPU goes idle; settlement
    /// never precedes it.
    cpu_busy_until: u64,
    /// A request staged until its segment's replay CPU finishes.
    deferred: Option<(u64, AuditRequest)>,
    /// When set, the session opens with an attestation challenge under this
    /// policy and only proceeds to spot checks on a verified launch.
    attest_policy: Option<&'a LaunchPolicy>,
    /// The launch verdict, once the attestation exchange settled.
    attest_verdict: Option<AttestVerdict>,
}

impl<'a> FleetAuditor<'a> {
    /// An auditor on `node` auditing `provider` inside session `session_id`.
    ///
    /// `provider_store` is the *accounting plane* (the same store the
    /// provider serves from — see [`crate::endpoint::AuditTransport`]);
    /// `timeout_us` is the retransmit-if-silent deadline, normally derived
    /// from the link exactly like [`crate::endpoint::SimNetTransport::new`]
    /// derives it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        provider: NodeId,
        session_id: u64,
        provider_store: &'a SnapshotStore,
        image: &'a VmImage,
        registry: &'a GuestRegistry,
        task: AuditTask,
        timeout_us: u64,
    ) -> FleetAuditor<'a> {
        FleetAuditor {
            node,
            provider,
            session_id,
            provider_store,
            image,
            registry,
            task,
            timeout_us,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            cache: AuditorBlobCache::new(),
            stats: TransportStats::default(),
            next_request_id: 1,
            pending: None,
            phase: Phase::Idle,
            outcome: None,
            finished_at_us: None,
            replay_cpu: None,
            pipelined: false,
            cpu_busy_until: 0,
            deferred: None,
            attest_policy: None,
            attest_verdict: None,
        }
    }

    /// Resumes with a persistent blob cache from earlier audits.
    pub fn with_cache(mut self, cache: AuditorBlobCache) -> FleetAuditor<'a> {
        self.cache = cache;
        self
    }

    /// Charges replay CPU to the simulated clock under `model`, optionally
    /// `pipelined`: replay runs segment-wise and each segment's blob
    /// batches go on the wire the moment that segment's CPU is done, so
    /// wire wait and replay CPU overlap instead of strictly alternating
    /// (stalled).  The verdict and every transfer column are unaffected —
    /// only the session's completion latency moves.
    pub fn with_replay_cpu(mut self, model: ReplayCpuModel, pipelined: bool) -> FleetAuditor<'a> {
        self.replay_cpu = Some(model);
        self.pipelined = pipelined;
        self
    }

    /// Opens the session with an attestation challenge under `policy`
    /// before any spot-check exchange: the chunk request goes out only
    /// after the provider's launch measurement verifies; any other verdict
    /// ends the session with that verdict on record.  The challenge nonce
    /// is derived from the session id and issue time
    /// ([`crate::attest::challenge_nonce`]), so every session challenges
    /// with a distinct nonce and runs stay reproducible.
    pub fn with_attestation(mut self, policy: &'a LaunchPolicy) -> FleetAuditor<'a> {
        self.attest_policy = Some(policy);
        self
    }

    /// The launch verdict of this session's attestation exchange (`None`
    /// until it settles, and always `None` without
    /// [`FleetAuditor::with_attestation`]).
    pub fn attest_verdict(&self) -> Option<AttestVerdict> {
        self.attest_verdict
    }

    /// True once the session has a verdict (or failed).
    pub fn finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// Session completion latency: µs of simulated time from the scheduled
    /// start to the verdict.  `None` until finished.
    pub fn latency_us(&self) -> Option<u64> {
        self.finished_at_us
            .map(|at| at.saturating_sub(self.task.start_at_us))
    }

    /// Wire accounting so far (the report's `transport` field once done).
    pub fn transport_stats(&self) -> TransportStats {
        self.stats
    }

    /// Consumes the auditor: the report (or the error that ended the
    /// session; an unfinished session is an error) and the blob cache, for
    /// persistence across restarts.
    pub fn into_parts(self) -> (Result<SpotCheckReport, CoreError>, AuditorBlobCache) {
        let outcome = self.outcome.unwrap_or_else(|| {
            Err(CoreError::Snapshot(format!(
                "audit session {} did not finish",
                self.session_id
            )))
        });
        (outcome, self.cache)
    }

    /// Sends `request` as the next exchange of this session.
    fn send_request(&mut self, net: &mut SimNet, request: &AuditRequest) {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let packet = seal_session_message(self.session_id, request_id, request);
        // Accounted per attempt *before* the send, dropped packets included
        // — identical to the blocking transport.
        self.stats.request_bytes += packet.len() as u64;
        let started_at = net.now();
        let _ = net.send(self.node, self.provider, packet.clone());
        self.pending = Some(PendingExchange {
            request_id,
            packet,
            started_at,
            deadline: started_at + self.timeout_us,
            attempts: 1,
        });
    }

    fn complete(&mut self, now: u64, outcome: Result<SpotCheckReport, CoreError>) {
        self.phase = Phase::Done;
        self.pending = None;
        self.deferred = None;
        self.outcome = Some(outcome);
        self.finished_at_us = Some(now);
    }

    /// Advances the state machine with an accepted response (borrowed from
    /// the delivered packet — bulk payloads are only copied where they are
    /// kept).  `Err` ends the session (the caller records it).
    fn handle_response(
        &mut self,
        net: &mut SimNet,
        response: AuditResponseRef<'_>,
    ) -> Result<(), CoreError> {
        // Provider-side errors surface as CoreError, like AuditClient.
        if let AuditResponseRef::Error { message } = response {
            return Err(CoreError::Snapshot(message.to_string()));
        }
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Attest { challenge } => self.on_attest(net, response, challenge),
            Phase::Chunk => self.on_chunk(net, response),
            Phase::Sections {
                entries,
                log_cost,
                prereplayed,
            } => self.on_sections(net, response, entries, log_cost, prereplayed),
            Phase::Manifest {
                entries,
                log_cost,
                snapshot_cost,
            } => self.on_manifest(net, response, entries, log_cost, snapshot_cost),
            Phase::Blobs(exchange) => self.on_blobs(net, response, exchange),
            // No exchange is pending while CPU drains, so no response can
            // arrive here; restore the phase for form's sake.
            Phase::Draining { at, report } => {
                self.phase = Phase::Draining { at, report };
                Ok(())
            }
            Phase::Idle | Phase::Done => Ok(()),
        }
    }

    /// Sends the opening log-chunk request of the spot check.
    fn start_chunk(&mut self, net: &mut SimNet) {
        self.phase = Phase::Chunk;
        let request = AuditRequest::LogSegment(SegmentAddress::Chunk {
            start_snapshot: self.task.start_snapshot,
            chunk: self.task.chunk,
        });
        self.send_request(net, &request);
    }

    fn on_attest(
        &mut self,
        net: &mut SimNet,
        response: AuditResponseRef<'_>,
        challenge: AttestChallenge,
    ) -> Result<(), CoreError> {
        let quote = match response {
            AuditResponseRef::Attestation(quote) => quote.to_owned(),
            other => return Err(protocol_violation("Attestation", other.variant_name())),
        };
        let policy = self
            .attest_policy
            .expect("Attest phase only entered with a policy");
        let (verdict, _envelope) = policy.verify(&quote, &challenge, net.now());
        self.attest_verdict = Some(verdict);
        if !verdict.is_verified() {
            return Err(CoreError::Snapshot(format!(
                "attestation rejected: {verdict}"
            )));
        }
        // Launch verified — the same session continues into the spot check.
        self.start_chunk(net);
        Ok(())
    }

    fn on_chunk(
        &mut self,
        net: &mut SimNet,
        response: AuditResponseRef<'_>,
    ) -> Result<(), CoreError> {
        let encoded_entries = match response {
            AuditResponseRef::LogSegment { entries, .. } => entries,
            other => return Err(protocol_violation("LogSegment", other.variant_name())),
        };
        let entries = decode_entries(&encoded_entries)?;
        let log_cost = CompressionStats::measure_stream(
            entries.iter().map(|e| e.encode_to_vec()),
            TRANSFER_COMPRESSION,
        );
        // The auditor never trusts the provider's classification: a corrupt
        // SNAPSHOT record in what was *received* is itself the verdict.
        if let Err(fault) = snapshot_positions_in(&entries) {
            let report = SpotCheckReport {
                start_snapshot: self.task.start_snapshot,
                chunk_size: self.task.chunk,
                consistent: false,
                fault: Some(fault),
                entries_replayed: 0,
                steps_replayed: 0,
                snapshot_transfer_bytes: 0,
                log_transfer_bytes: log_cost.raw_bytes,
                snapshot_transfer_compressed_bytes: 0,
                log_transfer_compressed_bytes: log_cost.compressed_bytes,
                snapshot_transfer_dedup_bytes: 0,
                snapshot_transfer_dedup_compressed_bytes: 0,
                on_demand: None,
                transport: self.stats,
            };
            self.complete(net.now(), Ok(report));
            return Ok(());
        }
        if self.task.on_demand {
            // Accounting plane first (no wire traffic), then the manifest —
            // the same order as the blocking client.
            let snapshot_cost = self
                .provider_store
                .transfer_cost_upto(self.task.start_snapshot, TRANSFER_COMPRESSION);
            let request = AuditRequest::Manifest {
                snapshot_id: self.task.start_snapshot,
            };
            self.phase = Phase::Manifest {
                entries,
                log_cost,
                snapshot_cost,
            };
            self.send_request(net, &request);
        } else {
            let request = AuditRequest::Sections {
                upto_id: self.task.start_snapshot,
            };
            // Pipelined full-download mode: the verdict never depends on
            // the sections stream (the machine materializes from the
            // accounting plane, which holds the same authenticated bytes),
            // so replay runs *while* the stream is on the wire and the
            // session completes at max(stream arrival, CPU done) instead
            // of their sum.
            let prereplayed = match (self.pipelined, self.replay_cpu) {
                (true, Some(model)) => {
                    let mut replayer = Replayer::from_snapshot(
                        self.image,
                        self.registry,
                        self.provider_store,
                        self.task.start_snapshot,
                    )?;
                    let (consistent, fault) = match replayer.replay(&entries) {
                        ReplayOutcome::Consistent(_) => (true, None),
                        ReplayOutcome::Fault(f) => (false, Some(f)),
                    };
                    let progress = replayer.summary();
                    self.cpu_busy_until = net.now()
                        + model.cost_micros(progress.steps_executed, progress.entries_replayed);
                    Some((consistent, fault, progress))
                }
                _ => None,
            };
            self.phase = Phase::Sections {
                entries,
                log_cost,
                prereplayed,
            };
            self.send_request(net, &request);
        }
        Ok(())
    }

    fn on_sections(
        &mut self,
        net: &mut SimNet,
        response: AuditResponseRef<'_>,
        entries: Vec<LogEntry>,
        log_cost: TransferCost,
        prereplayed: Option<(bool, Option<FaultReason>, ReplaySummary)>,
    ) -> Result<(), CoreError> {
        // The stream is measured straight from the packet buffer — the
        // full-dump column never materializes an owned copy of it.
        let stream = match response {
            AuditResponseRef::Sections { stream } => stream,
            other => return Err(protocol_violation("Sections", other.variant_name())),
        };
        debug_assert_eq!(
            stream.len() as u64,
            self.provider_store
                .transfer_bytes_upto(self.task.start_snapshot),
            "section stream and full-dump accounting diverged"
        );
        let snapshot_cost = CompressionStats::measure(stream, TRANSFER_COMPRESSION);
        let (consistent, fault, progress) = match prereplayed {
            Some(verdict) => verdict,
            None => {
                let mut replayer = Replayer::from_snapshot(
                    self.image,
                    self.registry,
                    self.provider_store,
                    self.task.start_snapshot,
                )?;
                let (consistent, fault) = match replayer.replay(&entries) {
                    ReplayOutcome::Consistent(_) => (true, None),
                    ReplayOutcome::Fault(f) => (false, Some(f)),
                };
                let progress = replayer.summary();
                if let Some(model) = self.replay_cpu {
                    // Stalled mode: the whole replay charges after the
                    // stream arrives.
                    self.cpu_busy_until = net.now()
                        + model.cost_micros(progress.steps_executed, progress.entries_replayed);
                }
                (consistent, fault, progress)
            }
        };
        let report = SpotCheckReport {
            start_snapshot: self.task.start_snapshot,
            chunk_size: self.task.chunk,
            consistent,
            fault,
            entries_replayed: progress.entries_replayed,
            steps_replayed: progress.steps_executed,
            snapshot_transfer_bytes: snapshot_cost.raw_bytes,
            log_transfer_bytes: log_cost.raw_bytes,
            snapshot_transfer_compressed_bytes: snapshot_cost.compressed_bytes,
            log_transfer_compressed_bytes: log_cost.compressed_bytes,
            snapshot_transfer_dedup_bytes: 0,
            snapshot_transfer_dedup_compressed_bytes: 0,
            on_demand: None,
            transport: self.stats,
        };
        self.finish_report(net, report);
        Ok(())
    }

    /// Records `report`, waiting out any modelled replay CPU still charging
    /// (with no model configured this completes immediately — the pinned
    /// classic timing).
    fn finish_report(&mut self, net: &SimNet, report: SpotCheckReport) {
        let now = net.now();
        if self.cpu_busy_until > now {
            self.phase = Phase::Draining {
                at: self.cpu_busy_until,
                report,
            };
            self.pending = None;
        } else {
            self.complete(now, Ok(report));
        }
    }

    fn on_manifest(
        &mut self,
        net: &mut SimNet,
        response: AuditResponseRef<'_>,
        entries: Vec<LogEntry>,
        log_cost: TransferCost,
        snapshot_cost: TransferCost,
    ) -> Result<(), CoreError> {
        // Decoded straight from the packet buffer; only the decoded
        // manifest survives, never an owned copy of its encoding.
        let manifest_bytes = match response {
            AuditResponseRef::Manifest { manifest } => manifest,
            other => return Err(protocol_violation("Manifest", other.variant_name())),
        };
        let manifest = ChainManifest::decode_exact(manifest_bytes)
            .map_err(|e| CoreError::Snapshot(format!("manifest does not decode: {e}")))?;
        let (mut replayer, session) = Replayer::from_manifest_on_demand(
            manifest,
            self.image,
            self.registry,
            self.provider_store,
            &self.cache,
        )?;
        let dedup = session.price_full_download(self.provider_store, TRANSFER_COMPRESSION)?;
        let (consistent, fault, progress, classification, batches, ready_at, fetch) =
            match (self.pipelined, self.replay_cpu) {
                (true, Some(model)) => {
                    // Pipelined mode: replay segment-wise, classify the
                    // faults each segment appended, and stamp that
                    // segment's batches with the instant its replay CPU
                    // finishes — so batch i rides the wire while segment
                    // i+1 replays.  Replay itself never waits for the
                    // wire (divergent state is staged from the accounting
                    // plane; the blob exchange prices what faulted), which
                    // is exactly what makes the overlap sound.
                    let positions = snapshot_positions_in(&entries).unwrap_or_default();
                    let units = partition_chunk(&entries, &positions);
                    let mut classifier = session.incremental_classifier();
                    let mut cpu_done = net.now();
                    let mut consistent = true;
                    let mut fault = None;
                    let mut batches: Vec<BlobRequest> = Vec::new();
                    let mut ready_at: Vec<u64> = Vec::new();
                    let mut fetch = BlobFetch::default();
                    let mut steps_before = 0u64;
                    for unit in &units {
                        let segment = &entries[unit.range.clone()];
                        let outcome = replayer.replay(segment);
                        let steps_now = replayer.summary().steps_executed;
                        cpu_done +=
                            model.cost_micros(steps_now - steps_before, segment.len() as u64);
                        steps_before = steps_now;
                        let fresh = classifier.classify_new(&session, replayer.machine())?;
                        let mut missing: Vec<avm_wire::BlobDigest> = Vec::new();
                        for digest in &fresh {
                            if self.cache.contains(digest) {
                                fetch.cache_hits += 1;
                            } else {
                                missing.push(digest.0);
                            }
                        }
                        for batch in BlobRequest::batches(&missing, DEFAULT_BLOB_BATCH) {
                            batches.push(batch);
                            ready_at.push(cpu_done);
                        }
                        if let ReplayOutcome::Fault(f) = outcome {
                            consistent = false;
                            fault = Some(f);
                            break; // serial replay stops at the fault too
                        }
                    }
                    self.cpu_busy_until = cpu_done;
                    let classification = classifier.into_classification(replayer.machine());
                    let progress = replayer.summary();
                    (
                        consistent,
                        fault,
                        progress,
                        classification,
                        batches,
                        ready_at,
                        fetch,
                    )
                }
                _ => {
                    let (consistent, fault) = match replayer.replay(&entries) {
                        ReplayOutcome::Consistent(_) => (true, None),
                        ReplayOutcome::Fault(f) => (false, Some(f)),
                    };
                    let progress = replayer.summary();
                    let classification = session.classify_faults(replayer.machine())?;
                    if let Some(model) = self.replay_cpu {
                        // Stalled mode: the full replay charges before the
                        // first blob batch can go out.
                        self.cpu_busy_until = net.now()
                            + model.cost_micros(progress.steps_executed, progress.entries_replayed);
                    }
                    // The front half of the blob exchange: consult the
                    // cache, batch the rest.  (`needed` is duplicate-free.)
                    let mut fetch = BlobFetch::default();
                    let mut missing: Vec<avm_wire::BlobDigest> = Vec::new();
                    for digest in &classification.needed {
                        if self.cache.contains(digest) {
                            fetch.cache_hits += 1;
                        } else {
                            missing.push(digest.0);
                        }
                    }
                    let batches = BlobRequest::batches(&missing, DEFAULT_BLOB_BATCH);
                    let ready_at = vec![self.cpu_busy_until; batches.len()];
                    (
                        consistent,
                        fault,
                        progress,
                        classification,
                        batches,
                        ready_at,
                        fetch,
                    )
                }
            };
        let exchange = Box::new(BlobExchange {
            log_cost,
            snapshot_cost,
            consistent,
            fault,
            progress,
            dedup,
            session,
            classification,
            batches,
            ready_at,
            next_batch: 0,
            fetch,
            encoded: Vec::new(),
        });
        let _ = entries; // replayed above; the chunk's job is done
        if exchange.batches.is_empty() {
            self.settle(net, *exchange);
            return Ok(());
        }
        let request = AuditRequest::Blobs(exchange.batches[0].clone());
        let ready = exchange.ready_at[0];
        self.phase = Phase::Blobs(exchange);
        self.dispatch_batch(net, request, ready);
        Ok(())
    }

    /// Sends a blob batch now, or stages it until its segment's replay CPU
    /// is done (`ready` in the past — the classic path's 0 always is —
    /// sends immediately).
    fn dispatch_batch(&mut self, net: &mut SimNet, request: AuditRequest, ready: u64) {
        if net.now() >= ready {
            self.send_request(net, &request);
        } else {
            self.deferred = Some((ready, request));
        }
    }

    fn on_blobs(
        &mut self,
        net: &mut SimNet,
        response: AuditResponseRef<'_>,
        mut exchange: Box<BlobExchange>,
    ) -> Result<(), CoreError> {
        let blob_response = match response {
            AuditResponseRef::Blobs(r) => r,
            other => return Err(protocol_violation("Blobs", other.variant_name())),
        };
        let request = &exchange.batches[exchange.next_batch];
        // Per-blob authentication, exactly the shared protocol step — the
        // payloads are verified while still borrowed from the packet (one
        // multi-buffer hash batch per response) and copied only when they
        // enter the cache.
        if blob_response.blobs.len() != request.digests.len() {
            return Err(CoreError::Snapshot(format!(
                "blob response carries {} payloads for {} requested digests",
                blob_response.blobs.len(),
                request.digests.len()
            )));
        }
        let digests: Vec<Digest> = request.digests.iter().map(|raw| Digest(*raw)).collect();
        let mut payloads: Vec<&[u8]> = Vec::with_capacity(digests.len());
        for (digest, blob) in digests.iter().zip(&blob_response.blobs) {
            payloads.push(blob.ok_or_else(|| operator_missing(digest))?);
        }
        verify_blob_batch(&digests, &payloads)?;
        exchange.fetch.round_trips += 1;
        exchange.fetch.request_bytes += request.encoded_len() as u64;
        exchange.fetch.payload_bytes += blob_response.payload_bytes();
        exchange
            .encoded
            .extend_from_slice(&blob_response.encode_to_vec());
        for (digest, payload) in digests.into_iter().zip(payloads) {
            self.cache.insert_trusted(digest, payload.to_vec());
            exchange.fetch.fetched.push(digest);
        }
        exchange.next_batch += 1;
        if exchange.next_batch < exchange.batches.len() {
            let request = AuditRequest::Blobs(exchange.batches[exchange.next_batch].clone());
            let ready = exchange.ready_at[exchange.next_batch];
            self.phase = Phase::Blobs(exchange);
            self.dispatch_batch(net, request, ready);
        } else {
            self.settle(net, *exchange);
        }
        Ok(())
    }

    /// Assembles the final on-demand report from a finished blob exchange.
    fn settle(&mut self, net: &SimNet, exchange: BlobExchange) {
        let BlobExchange {
            log_cost,
            snapshot_cost,
            consistent,
            fault,
            progress,
            dedup,
            session,
            classification,
            mut fetch,
            encoded,
            ..
        } = exchange;
        fetch.response.raw_bytes = encoded.len() as u64;
        let cost = session.assemble_cost(classification, fetch, &encoded, TRANSFER_COMPRESSION);
        let report = SpotCheckReport {
            start_snapshot: self.task.start_snapshot,
            chunk_size: self.task.chunk,
            consistent,
            fault,
            entries_replayed: progress.entries_replayed,
            steps_replayed: progress.steps_executed,
            snapshot_transfer_bytes: snapshot_cost.raw_bytes,
            log_transfer_bytes: log_cost.raw_bytes,
            snapshot_transfer_compressed_bytes: snapshot_cost.compressed_bytes,
            log_transfer_compressed_bytes: log_cost.compressed_bytes,
            snapshot_transfer_dedup_bytes: dedup.transfer.raw_bytes,
            snapshot_transfer_dedup_compressed_bytes: dedup.transfer.compressed_bytes,
            on_demand: Some(cost),
            transport: self.stats,
        };
        self.finish_report(net, report);
    }
}

impl Endpoint for FleetAuditor<'_> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn on_delivery(&mut self, net: &mut SimNet, delivery: Delivery) {
        if matches!(self.phase, Phase::Done) {
            return;
        }
        let Some(pending) = &self.pending else {
            return;
        };
        // Peek the session envelope without decoding the body: stale
        // retransmissions from older exchanges are discarded before the
        // (potentially megabyte-sized) response payload is even parsed.
        let Ok((session_id, request_id, body)) = open_session_frame(&delivery.payload) else {
            return;
        };
        if session_id != self.session_id || request_id != pending.request_id {
            return; // stale response to an older exchange
        }
        let Ok(response) = AuditResponseRef::decode_exact(body) else {
            return;
        };
        self.stats.round_trips += 1;
        self.stats.response_bytes += delivery.payload.len() as u64;
        self.stats.elapsed_micros += net.now() - pending.started_at;
        self.pending = None;
        if let Err(error) = self.handle_response(net, response) {
            self.complete(net.now(), Err(error));
        }
    }

    fn on_tick(&mut self, net: &mut SimNet) -> Option<u64> {
        if matches!(self.phase, Phase::Done) {
            return None;
        }
        if matches!(self.phase, Phase::Idle) {
            if net.now() < self.task.start_at_us {
                return Some(self.task.start_at_us);
            }
            match self.attest_policy {
                // Attest-then-audit: the session's first exchange proves
                // the launch; the chunk request follows on a verified
                // verdict ([`FleetAuditor::on_attest`]).
                Some(_) => {
                    let now = net.now();
                    let challenge = AttestChallenge {
                        nonce: challenge_nonce(self.session_id, now),
                        issued_at_us: now,
                    };
                    self.phase = Phase::Attest { challenge };
                    self.send_request(net, &AuditRequest::Attest(challenge));
                }
                None => self.start_chunk(net),
            }
        }
        let now = net.now();
        // Modelled replay CPU still charging: complete the moment it is
        // done (the wire work already finished).
        if matches!(self.phase, Phase::Draining { .. }) {
            let Phase::Draining { at, report } = std::mem::replace(&mut self.phase, Phase::Done)
            else {
                unreachable!("matched Draining above");
            };
            if now < at {
                self.phase = Phase::Draining { at, report };
                return Some(at);
            }
            self.complete(now, Ok(report));
            return None;
        }
        // A blob batch staged behind its segment's replay CPU: send it the
        // moment the CPU frees up.
        if let Some((at, _)) = &self.deferred {
            if now < *at {
                return Some(*at);
            }
            let (_, request) = self.deferred.take().expect("deferred checked");
            self.send_request(net, &request);
        }
        let (deadline, attempts, started_at, packet_len) = {
            let pending = self.pending.as_ref()?;
            (
                pending.deadline,
                pending.attempts,
                pending.started_at,
                pending.packet.len(),
            )
        };
        if now < deadline {
            return Some(deadline);
        }
        // The timer only fires on a *silent* wire: any packet still in
        // flight (a large response serialising past the nominal timeout, a
        // stale duplicate draining) will wake the loop, and the next tick
        // re-evaluates — the deadline stretches to the wire going quiet,
        // exactly like the blocking transport.
        if net.in_flight_count() > 0 {
            return None;
        }
        if attempts >= self.max_attempts {
            self.stats.elapsed_micros += now - started_at;
            let error = CoreError::Snapshot(format!(
                "audit transport: no response after {} attempts ({} µs timeout each)",
                self.max_attempts, self.timeout_us
            ));
            self.complete(now, Err(error));
            return None;
        }
        self.stats.retransmissions += 1;
        self.stats.request_bytes += packet_len as u64;
        let packet = self
            .pending
            .as_ref()
            .expect("pending checked")
            .packet
            .clone();
        let _ = net.send(self.node, self.provider, packet);
        let pending = self.pending.as_mut().expect("pending checked");
        pending.attempts += 1;
        pending.deadline = now + self.timeout_us;
        Some(pending.deadline)
    }
}

// ---------------------------------------------------------------------------
// Fleet runner
// ---------------------------------------------------------------------------

/// Shape of one fleet run: topology, workload and scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Link config used for every auditor↔provider pair.
    pub link: LinkConfig,
    /// Number of concurrent auditors (N).
    pub auditors: usize,
    /// Number of provider nodes (M); auditor `i` targets provider `i % M`.
    /// All providers serve the same machine's log and store.
    pub providers: usize,
    /// Gap between consecutive auditors' session starts, in simulated µs
    /// (`0` = everyone starts at once).
    pub inter_arrival_us: u64,
    /// Spot-check chunk start (every auditor checks the same epoch — the
    /// shared-cache case; vary per auditor by driving the endpoints
    /// directly).
    pub start_snapshot: u64,
    /// Spot-check chunk size `k`.
    pub chunk: u64,
    /// §3.5 on-demand mode (vs full state download).
    pub on_demand: bool,
    /// Charge replay CPU to the simulated clock under this model.  `None`
    /// (default): replay is a zero-time event — the pinned classic timing.
    pub replay_cpu: Option<ReplayCpuModel>,
    /// With `replay_cpu` set: overlap wire wait with replay CPU (fetch for
    /// segment i+1 while segment i replays) instead of stalling fetches
    /// behind the full replay.  Verdicts and transfer columns never move;
    /// only completion latency does.
    pub pipelined: bool,
    /// Provider scheduling and session-lifetime knobs.
    pub provider: ProviderConfig,
    /// Event-loop safety bound.
    pub max_steps: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            link: LinkConfig::default(),
            auditors: 1,
            providers: 1,
            inter_arrival_us: 0,
            start_snapshot: 0,
            chunk: 1,
            on_demand: true,
            replay_cpu: None,
            pipelined: false,
            provider: ProviderConfig::default(),
            max_steps: 10_000_000,
        }
    }
}

/// Everything a fleet run produced.
pub struct FleetOutcome {
    /// One report (or terminal error) per auditor, in auditor order.
    pub reports: Vec<Result<SpotCheckReport, CoreError>>,
    /// Per-auditor launch verdicts, in auditor order — `None` everywhere on
    /// a plain [`run_fleet`]; populated by [`run_attested_fleet`] (still
    /// `None` for a session that never received a quote).
    pub attest_verdicts: Vec<Option<AttestVerdict>>,
    /// Session completion latency (scheduled start → verdict) per
    /// *successful* session, in auditor order.
    pub latencies_us: Vec<u64>,
    /// Per-provider scheduler, session and cache accounting.
    pub providers: Vec<ProviderStats>,
    /// Per-node traffic counters from the shared network.
    pub node_stats: Vec<(NodeId, NodeStats)>,
    /// How the event loop ended.
    pub event_loop: EventLoopReport,
}

/// Runs N concurrent spot-check sessions against M provider nodes sharing
/// one simulated network (see the module docs).
///
/// Providers bind nodes `1..=M`, auditors bind `M+1..`; auditor `i` opens
/// session `CLIENT_SESSION + i` against provider `1 + (i % M)` — so a fleet
/// of one speaks byte-identical packets to the single-client transport.
pub fn run_fleet(
    log: &dyn LogSource,
    store: &SnapshotStore,
    image: &VmImage,
    registry: &GuestRegistry,
    config: &FleetConfig,
) -> FleetOutcome {
    run_fleet_inner(log, store, image, registry, config, None)
}

/// [`run_fleet`] with attest-then-audit sessions: every provider node
/// answers challenges from `attestor`, and every auditor opens its session
/// with an attestation challenge under `policy`, proceeding into its spot
/// check only on a verified launch.  Per-session verdicts land in
/// [`FleetOutcome::attest_verdicts`]; a rejected launch ends that session
/// with an error report and no audit traffic beyond the challenge.
pub fn run_attested_fleet(
    log: &dyn LogSource,
    store: &SnapshotStore,
    image: &VmImage,
    registry: &GuestRegistry,
    config: &FleetConfig,
    attestor: &Attestor,
    policy: &LaunchPolicy,
) -> FleetOutcome {
    run_fleet_inner(
        log,
        store,
        image,
        registry,
        config,
        Some((attestor, policy)),
    )
}

fn run_fleet_inner(
    log: &dyn LogSource,
    store: &SnapshotStore,
    image: &VmImage,
    registry: &GuestRegistry,
    config: &FleetConfig,
    attest: Option<(&Attestor, &LaunchPolicy)>,
) -> FleetOutcome {
    let timeout_us = 8 * config.link.latency_us + config.link.serialise_micros(1 << 20);
    let mut net = SimNet::new(config.link);
    let provider_count = config.providers.max(1);
    let mut providers: Vec<ProviderNode> = (0..provider_count)
        .map(|p| {
            let mut server = AuditServer::with_log_source(log, store);
            if let Some((attestor, _)) = attest {
                server = server.with_attestor(attestor);
            }
            ProviderNode::new(NodeId(p as u32 + 1), server, config.provider)
        })
        .collect();
    let mut auditors: Vec<FleetAuditor> = (0..config.auditors)
        .map(|i| {
            let mut auditor = FleetAuditor::new(
                NodeId((provider_count + 1 + i) as u32),
                NodeId((i % provider_count) as u32 + 1),
                CLIENT_SESSION + i as u64,
                store,
                image,
                registry,
                AuditTask {
                    start_snapshot: config.start_snapshot,
                    chunk: config.chunk,
                    on_demand: config.on_demand,
                    start_at_us: i as u64 * config.inter_arrival_us,
                },
                timeout_us,
            );
            if let Some(model) = config.replay_cpu {
                auditor = auditor.with_replay_cpu(model, config.pipelined);
            }
            if let Some((_, policy)) = attest {
                auditor = auditor.with_attestation(policy);
            }
            auditor
        })
        .collect();
    let mut endpoints: Vec<&mut dyn Endpoint> = Vec::with_capacity(provider_count + auditors.len());
    for provider in providers.iter_mut() {
        endpoints.push(provider);
    }
    for auditor in auditors.iter_mut() {
        endpoints.push(auditor);
    }
    let event_loop = run_event_loop(&mut net, &mut endpoints, config.max_steps);
    drop(endpoints);
    let provider_stats = providers.iter().map(|p| p.stats()).collect();
    let node_stats = net.all_stats();
    let mut reports = Vec::with_capacity(auditors.len());
    let mut attest_verdicts = Vec::with_capacity(auditors.len());
    let mut latencies_us = Vec::new();
    for auditor in auditors {
        if let Some(latency) = auditor.latency_us() {
            latencies_us.push(latency);
        }
        attest_verdicts.push(auditor.attest_verdict());
        let (outcome, _cache) = auditor.into_parts();
        reports.push(outcome);
    }
    FleetOutcome {
        reports,
        attest_verdicts,
        latencies_us,
        providers: provider_stats,
        node_stats,
        event_loop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{AuditClient, SimNetTransport};
    use crate::testutil::record_with_snapshots;

    /// The tentpole pin: a fleet of ONE is *field-identical* — semantics,
    /// transfer columns, wire accounting, measured simulated latency — to
    /// the blocking single-client transport, in both download modes and
    /// under deterministic packet loss.
    #[test]
    fn single_session_fleet_is_field_identical_to_simnet_transport() {
        let (bob, image) = record_with_snapshots(4);
        let registry = GuestRegistry::new();
        for (on_demand, drop_every) in [(true, 0), (false, 0), (true, 3), (false, 5)] {
            let link = LinkConfig {
                drop_every,
                ..LinkConfig::default()
            };

            let mut client = AuditClient::new(SimNetTransport::new(
                AuditServer::new(bob.log(), bob.snapshots()),
                link,
            ));
            let baseline = if on_demand {
                client.spot_check_on_demand(2, 1, &image, &registry)
            } else {
                client.spot_check(2, 1, &image, &registry)
            }
            .unwrap();

            let config = FleetConfig {
                link,
                on_demand,
                start_snapshot: 2,
                chunk: 1,
                ..FleetConfig::default()
            };
            let outcome = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
            assert!(outcome.event_loop.quiescent);
            let fleet_report = outcome.reports[0].as_ref().unwrap();
            assert_eq!(
                &baseline, fleet_report,
                "fleet N=1 diverged (on_demand={on_demand}, drop_every={drop_every})"
            );
        }
    }

    /// N auditors checking the same epoch: every verdict matches the serial
    /// baseline, the provider opened one session per auditor, and the shared
    /// response cache served all but the first encoding of each response.
    #[test]
    fn concurrent_sessions_share_the_response_cache() {
        let (bob, image) = record_with_snapshots(4);
        let registry = GuestRegistry::new();

        let mut client = AuditClient::new(SimNetTransport::new(
            AuditServer::new(bob.log(), bob.snapshots()),
            LinkConfig::default(),
        ));
        let baseline = client
            .spot_check_on_demand(2, 1, &image, &registry)
            .unwrap();

        let n = 8;
        let config = FleetConfig {
            auditors: n,
            start_snapshot: 2,
            chunk: 1,
            inter_arrival_us: 500,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
        assert!(outcome.event_loop.quiescent);
        assert_eq!(outcome.reports.len(), n);
        for report in &outcome.reports {
            let report = report.as_ref().unwrap();
            assert!(report.consistent);
            assert_eq!(baseline.semantic(), report.semantic());
        }
        assert_eq!(outcome.latencies_us.len(), n);

        let provider = &outcome.providers[0];
        assert_eq!(provider.sessions_created, n as u64);
        assert_eq!(provider.sessions_expired, 0);
        // Each auditor sends the same chunk + manifest requests; the first
        // pays the encoding, the rest hit the cache.  (Blob requests are
        // per-auditor and bypass it.)
        assert_eq!(provider.cache.entries, 2);
        assert_eq!(provider.cache.misses, 2);
        assert_eq!(provider.cache.hits, 2 * (n as u64 - 1));
    }

    /// With replay CPU charged to the simulated clock, the pipelined mode
    /// (fetch segment i+1's blobs while segment i replays) strictly beats
    /// the stalled mode (all replay, then all fetches) on a lossy link —
    /// while the verdict, the fetched blob set and every fault counter stay
    /// identical.  The classic zero-CPU report also agrees with the stalled
    /// one on everything but timing (`semantic()` equality).
    #[test]
    fn pipelined_fetch_beats_stalled_fetch_on_a_lossy_link() {
        let (bob, image) = record_with_snapshots(4);
        let registry = GuestRegistry::new();
        let link = LinkConfig {
            drop_every: 3,
            ..LinkConfig::default()
        };
        let run = |replay_cpu: Option<ReplayCpuModel>, pipelined: bool| {
            let config = FleetConfig {
                link,
                on_demand: true,
                start_snapshot: 0,
                chunk: 4,
                replay_cpu,
                pipelined,
                ..FleetConfig::default()
            };
            let outcome = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
            assert!(outcome.event_loop.quiescent);
            let report = outcome.reports[0].as_ref().unwrap().clone();
            (report, outcome.latencies_us[0])
        };
        let model = ReplayCpuModel::DEFAULT;
        let (classic, classic_latency) = run(None, false);
        let (stalled, stalled_latency) = run(Some(model), false);
        let (pipelined, pipelined_latency) = run(Some(model), true);

        // Charging CPU moves *when*, never *what*: the stalled report equals
        // the classic one outside the transport timing column.
        assert_eq!(classic.semantic(), stalled.semantic());
        assert!(stalled_latency > classic_latency);

        // Pipelining recovers part of the CPU charge by overlapping it with
        // the wire — strictly between the other two.
        assert!(
            pipelined_latency < stalled_latency,
            "pipelined {pipelined_latency} !< stalled {stalled_latency}"
        );
        assert!(pipelined_latency >= classic_latency);

        // Same verdict, same faults, same blobs over the wire; only batch
        // boundaries (and so round-trip framing) may differ.
        assert_eq!(pipelined.consistent, stalled.consistent);
        assert_eq!(pipelined.fault, stalled.fault);
        assert_eq!(pipelined.entries_replayed, stalled.entries_replayed);
        assert_eq!(pipelined.steps_replayed, stalled.steps_replayed);
        let stalled_cost = stalled.on_demand.as_ref().unwrap();
        let pipelined_cost = pipelined.on_demand.as_ref().unwrap();
        let sorted = |cost: &crate::ondemand::OnDemandCost| {
            let mut fetched: Vec<[u8; 32]> = cost.fetched.iter().map(|d| d.0).collect();
            fetched.sort_unstable();
            fetched
        };
        assert!(!stalled_cost.fetched.is_empty(), "workload fetched nothing");
        assert_eq!(sorted(stalled_cost), sorted(pipelined_cost));
        assert_eq!(pipelined_cost.cache_hits, stalled_cost.cache_hits);
        assert_eq!(pipelined_cost.chunks_faulted, stalled_cost.chunks_faulted);
        assert_eq!(pipelined_cost.blocks_faulted, stalled_cost.blocks_faulted);
        assert_eq!(
            pipelined_cost.untouched_staged,
            stalled_cost.untouched_staged
        );
        assert_eq!(pipelined_cost.manifest_bytes, stalled_cost.manifest_bytes);
    }

    /// Full-download mode with replay CPU charged: the pipelined auditor
    /// replays while the sections stream is on the wire, completing at
    /// max(stream, CPU) instead of their sum — same report either way.
    #[test]
    fn pipelined_full_download_overlaps_replay_with_the_stream() {
        let (bob, image) = record_with_snapshots(4);
        let registry = GuestRegistry::new();
        let run = |replay_cpu: Option<ReplayCpuModel>, pipelined: bool| {
            let config = FleetConfig {
                on_demand: false,
                start_snapshot: 0,
                chunk: 4,
                replay_cpu,
                pipelined,
                ..FleetConfig::default()
            };
            let outcome = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
            assert!(outcome.event_loop.quiescent);
            let report = outcome.reports[0].as_ref().unwrap().clone();
            (report, outcome.latencies_us[0])
        };
        let model = ReplayCpuModel::DEFAULT;
        let (classic, _) = run(None, false);
        let (stalled, stalled_latency) = run(Some(model), false);
        let (pipelined, pipelined_latency) = run(Some(model), true);
        assert_eq!(classic, stalled); // full mode: only completion time moves
        assert_eq!(classic, pipelined);
        assert!(
            pipelined_latency < stalled_latency,
            "pipelined {pipelined_latency} !< stalled {stalled_latency}"
        );
    }

    /// Idle expiry reclaims finished sessions (and only finished ones), and
    /// the loop still quiesces afterwards.
    #[test]
    fn idle_sessions_expire_after_the_quiet_period() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let config = FleetConfig {
            auditors: 3,
            start_snapshot: 1,
            chunk: 1,
            provider: ProviderConfig {
                idle_expiry_us: Some(50_000),
                ..ProviderConfig::default()
            },
            ..FleetConfig::default()
        };
        let outcome = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
        assert!(outcome.event_loop.quiescent);
        for report in &outcome.reports {
            assert!(report.as_ref().unwrap().consistent);
        }
        let provider = &outcome.providers[0];
        assert_eq!(provider.sessions_created, 3);
        assert_eq!(provider.sessions_expired, 3);
        assert_eq!(provider.active_sessions, 0);
    }

    /// A budget-limited scheduler serves queued sessions round-robin: with
    /// three sessions' requests queued and a budget of 2, the first pass
    /// serves two *different* sessions and the backlog drains next pass.
    #[test]
    fn budgeted_scheduler_serves_sessions_round_robin() {
        let (bob, _image) = record_with_snapshots(3);
        let mut provider = ProviderNode::new(
            NodeId(1),
            AuditServer::new(bob.log(), bob.snapshots()),
            ProviderConfig {
                service_budget: 2,
                tick_interval_us: 40,
                ..ProviderConfig::default()
            },
        );
        let mut net = SimNet::new(LinkConfig::default());
        for (peer, session) in [(10, 7), (11, 8), (12, 9)] {
            let packet =
                seal_session_message(session, 1, &AuditRequest::Manifest { snapshot_id: 1 });
            provider.on_delivery(
                &mut net,
                Delivery {
                    from: NodeId(peer),
                    to: NodeId(1),
                    payload: packet,
                    deliver_at: 0,
                    sent_at: 0,
                },
            );
        }
        assert_eq!(provider.stats().sessions_created, 3);

        // First pass: budget 2 → two sessions served, one queued; the
        // provider asks to be re-ticked after its interval.
        let wake = provider.on_tick(&mut net);
        assert_eq!(wake, Some(40));
        assert_eq!(provider.stats().requests_served, 2);
        assert_eq!(net.in_flight_count(), 2);

        // Second pass serves the third session — round-robin, not
        // first-session-wins — and goes quiet.
        let wake = provider.on_tick(&mut net);
        assert_eq!(wake, None);
        assert_eq!(provider.stats().requests_served, 3);
        assert_eq!(net.in_flight_count(), 3);
        // One manifest encoding, two cache hits: the budget changes *when*
        // each session is served, never *what* it costs.
        assert_eq!(provider.stats().cache.misses, 1);
        assert_eq!(provider.stats().cache.hits, 2);
    }

    /// Attest-then-audit sessions: every auditor's launch verdict is
    /// Verified, the spot-check verdicts equal the unattested fleet's, and
    /// the attestation exchange bypasses the shared response cache (each
    /// quote answers a distinct nonce).  Against a provider claiming a
    /// different image, every session stops at a distinct ImageMismatch
    /// verdict with an error report and no audit traffic beyond the
    /// challenge.
    #[test]
    fn attested_fleet_verifies_launch_then_audits() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let attestor = crate::attest::Attestor::for_avmm(&bob, &image).unwrap();
        let policy = LaunchPolicy::new(
            &image,
            "bob",
            avm_crypto::keys::SignatureScheme::Rsa(512),
            crate::testutil::key(1).verifying_key(),
        );
        let n = 4;
        let config = FleetConfig {
            auditors: n,
            start_snapshot: 1,
            chunk: 1,
            inter_arrival_us: 500,
            ..FleetConfig::default()
        };

        let plain = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
        assert!(plain.attest_verdicts.iter().all(Option::is_none));

        let attested = run_attested_fleet(
            bob.log(),
            bob.snapshots(),
            &image,
            &registry,
            &config,
            &attestor,
            &policy,
        );
        assert!(attested.event_loop.quiescent);
        assert_eq!(attested.reports.len(), n);
        for (i, report) in attested.reports.iter().enumerate() {
            assert_eq!(attested.attest_verdicts[i], Some(AttestVerdict::Verified));
            assert_eq!(
                report.as_ref().unwrap().semantic(),
                plain.reports[i].as_ref().unwrap().semantic()
            );
        }
        // Quotes are nonce-specific, so they never populate the shared
        // cache: same entries/misses as the unattested run.
        assert_eq!(attested.providers[0].cache, plain.providers[0].cache);

        // A provider attesting a different image: every session records the
        // ImageMismatch verdict and ends in an error before any audit.
        let wrong = crate::testutil::worker_image().with_disk(vec![1u8; 8192]);
        let wrong_policy = LaunchPolicy::new(
            &wrong,
            "bob",
            avm_crypto::keys::SignatureScheme::Rsa(512),
            crate::testutil::key(1).verifying_key(),
        );
        let rejected = run_attested_fleet(
            bob.log(),
            bob.snapshots(),
            &image,
            &registry,
            &config,
            &attestor,
            &wrong_policy,
        );
        assert!(rejected.event_loop.quiescent);
        for (i, report) in rejected.reports.iter().enumerate() {
            assert_eq!(
                rejected.attest_verdicts[i],
                Some(AttestVerdict::ImageMismatch)
            );
            let err = report.as_ref().unwrap_err().to_string();
            assert!(err.contains("image mismatch"), "{err}");
        }
        // One challenge per session, nothing more.
        assert_eq!(rejected.providers[0].requests_served, n as u64);
    }

    /// Multiple provider nodes: auditors spread across them and each
    /// provider serves only its own sessions.
    #[test]
    fn auditors_spread_across_multiple_providers() {
        let (bob, image) = record_with_snapshots(3);
        let registry = GuestRegistry::new();
        let config = FleetConfig {
            auditors: 4,
            providers: 2,
            start_snapshot: 1,
            chunk: 1,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(bob.log(), bob.snapshots(), &image, &registry, &config);
        assert!(outcome.event_loop.quiescent);
        for report in &outcome.reports {
            assert!(report.as_ref().unwrap().consistent);
        }
        assert_eq!(outcome.providers.len(), 2);
        for provider in &outcome.providers {
            assert_eq!(provider.sessions_created, 2);
        }
    }
}
