//! The simulated network core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use avm_wire::RttModel;

use crate::stats::NodeStats;

/// Identifier of a node attached to the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Per-link behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way latency in microseconds.
    pub latency_us: u64,
    /// Drop every n-th packet (0 = no loss).  Deterministic loss keeps the
    /// whole simulation reproducible.
    pub drop_every: u64,
    /// Link bandwidth in bytes per second (0 = infinite bandwidth: packets
    /// pay no serialisation delay).  Large payloads — blob batches, snapshot
    /// section streams — therefore cost wall time proportional to their
    /// size, with the same `bytes × 1 000 000 / bytes_per_sec` term an
    /// [`RttModel`] charges, so a lossless request/response exchange prices
    /// identically whether it is *simulated* here or *modelled* there (see
    /// [`LinkConfig::rtt_model`]).
    pub bytes_per_sec: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A switched LAN: ~96 µs one-way latency and 1 Gbit/s, mirroring the
        // paper's testbed where a bare-hardware ping RTT is 192 µs (§6.8)
        // on a 1 Gbps switch (§6.7).
        LinkConfig {
            latency_us: 96,
            drop_every: 0,
            bytes_per_sec: LinkConfig::LAN_BYTES_PER_SEC,
        }
    }
}

impl LinkConfig {
    /// 1 Gbit/s in bytes per second — the paper's switched LAN (§6.7).
    pub const LAN_BYTES_PER_SEC: u64 = 125_000_000;

    /// Serialisation delay, in microseconds, for a packet of `bytes` bytes
    /// on this link — the same formula [`RttModel`] uses, so the simulated
    /// and modelled price of one packet agree exactly.
    pub fn serialise_micros(&self, bytes: usize) -> u64 {
        if self.bytes_per_sec == 0 {
            return 0;
        }
        (bytes as u64).saturating_mul(1_000_000) / self.bytes_per_sec
    }

    /// The [`RttModel`] equivalent of this link: one round trip costs two
    /// one-way latencies, and bytes serialise at the same bandwidth.  A
    /// lossless request/response exchange simulated over this link takes
    /// exactly the time the returned model predicts when the model is
    /// applied per packet (infinite bandwidth maps to `u64::MAX`).
    pub fn rtt_model(&self) -> RttModel {
        RttModel {
            rtt_micros: 2 * self.latency_us,
            bytes_per_sec: if self.bytes_per_sec == 0 {
                u64::MAX
            } else {
                self.bytes_per_sec
            },
        }
    }

    /// The link equivalent of an [`RttModel`]: half the round trip each way,
    /// same bandwidth, no loss — the inverse of [`LinkConfig::rtt_model`].
    /// `LinkConfig::from_rtt_model(&RttModel::DEFAULT)` is the 2010-era WAN
    /// the spot-check reports price their modelled columns under.
    pub fn from_rtt_model(model: &RttModel) -> LinkConfig {
        LinkConfig {
            latency_us: model.rtt_micros / 2,
            drop_every: 0,
            bytes_per_sec: if model.bytes_per_sec == u64::MAX {
                0
            } else {
                model.bytes_per_sec
            },
        }
    }
}

/// A packet delivered to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Simulated time (µs) at which the packet arrives.
    pub deliver_at: u64,
    /// Simulated time (µs) at which the packet was sent.
    pub sent_at: u64,
}

/// In-flight packet ordered by delivery time (then by a tie-breaking counter
/// so FIFO order is preserved between equal timestamps).
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    deliver_at: u64,
    order: u64,
    delivery: Delivery,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.order).cmp(&(other.deliver_at, other.order))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
#[derive(Debug, Default)]
pub struct SimNet {
    now_us: u64,
    default_link: LinkConfig,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    send_counter: u64,
    per_link_sent: HashMap<(NodeId, NodeId), u64>,
    /// Per directed link: simulated time at which the transmitter finishes
    /// serialising the last packet handed to it.  A later packet on the same
    /// link starts transmitting only after this (finite-bandwidth links
    /// serialise packets back to back, they do not overlap).
    link_busy_until: HashMap<(NodeId, NodeId), u64>,
    stats: HashMap<NodeId, NodeStats>,
}

impl SimNet {
    /// Creates a network where every pair of nodes uses `default_link`.
    pub fn new(default_link: LinkConfig) -> SimNet {
        SimNet {
            default_link,
            ..SimNet::default()
        }
    }

    /// Creates a network with LAN-like defaults.
    pub fn lan() -> SimNet {
        SimNet::new(LinkConfig::default())
    }

    /// Current simulated time in microseconds.
    pub fn now(&self) -> u64 {
        self.now_us
    }

    /// Overrides the link configuration for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        self.links.insert((from, to), config);
    }

    fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Sends `payload` from `from` to `to` at the current simulated time.
    ///
    /// The packet arrives after its serialisation delay (payload size over
    /// the link bandwidth, queued behind packets still being transmitted on
    /// the same directed link) plus the link's one-way latency.
    ///
    /// Returns the delivery time if the packet was accepted, or `None` if the
    /// link's deterministic loss model dropped it.  A dropped packet still
    /// occupies the transmitter — it is lost downstream, not never sent.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) -> Option<u64> {
        let link = self.link(from, to);
        let sent = self.per_link_sent.entry((from, to)).or_insert(0);
        *sent += 1;
        let tx = self.stats.entry(from).or_default();
        tx.tx_packets += 1;
        tx.tx_bytes += payload.len() as u64;
        let busy = self.link_busy_until.entry((from, to)).or_insert(0);
        let tx_start = self.now_us.max(*busy);
        let tx_done = tx_start + link.serialise_micros(payload.len());
        *busy = tx_done;
        if link.drop_every != 0 && (*sent).is_multiple_of(link.drop_every) {
            self.stats.entry(from).or_default().dropped += 1;
            return None;
        }
        let deliver_at = tx_done + link.latency_us;
        self.send_counter += 1;
        self.in_flight.push(Reverse(InFlight {
            deliver_at,
            order: self.send_counter,
            delivery: Delivery {
                from,
                to,
                payload,
                deliver_at,
                sent_at: self.now_us,
            },
        }));
        Some(deliver_at)
    }

    /// Advances simulated time to `time_us` and returns every delivery that
    /// became due, in delivery order.
    ///
    /// Time never moves backwards; passing an earlier time only collects
    /// packets already due.
    pub fn advance_to(&mut self, time_us: u64) -> Vec<Delivery> {
        if time_us > self.now_us {
            self.now_us = time_us;
        }
        let mut due = Vec::new();
        while let Some(Reverse(top)) = self.in_flight.peek() {
            if top.deliver_at > self.now_us {
                break;
            }
            let Reverse(pkt) = self.in_flight.pop().expect("peeked");
            let rx = self.stats.entry(pkt.delivery.to).or_default();
            rx.rx_packets += 1;
            rx.rx_bytes += pkt.delivery.payload.len() as u64;
            due.push(pkt.delivery);
        }
        due
    }

    /// Time of the next pending delivery, if any.
    pub fn next_delivery_at(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse(p)| p.deliver_at)
    }

    /// Number of packets currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Traffic statistics for `node`.
    pub fn stats(&self, node: NodeId) -> NodeStats {
        self.stats.get(&node).copied().unwrap_or_default()
    }

    /// Traffic statistics for every node that has sent or received.
    pub fn all_stats(&self) -> Vec<(NodeId, NodeStats)> {
        let mut v: Vec<_> = self.stats.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);
    const C: NodeId = NodeId(3);

    #[test]
    fn packet_arrives_after_link_latency() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 100,
            drop_every: 0,
            ..LinkConfig::default()
        });
        let at = net.send(A, B, b"ping".to_vec()).unwrap();
        assert_eq!(at, 100);
        assert!(net.advance_to(99).is_empty());
        let due = net.advance_to(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].from, A);
        assert_eq!(due[0].to, B);
        assert_eq!(due[0].payload, b"ping");
        assert_eq!(due[0].sent_at, 0);
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn deliveries_are_ordered_and_fifo_for_ties() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 10,
            drop_every: 0,
            ..LinkConfig::default()
        });
        net.send(A, B, vec![1]).unwrap();
        net.send(A, B, vec![2]).unwrap();
        net.send(A, B, vec![3]).unwrap();
        let due = net.advance_to(50);
        let payloads: Vec<u8> = due.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![1, 2, 3]);
    }

    #[test]
    fn per_link_latency_override() {
        let mut net = SimNet::lan();
        net.set_link(
            A,
            C,
            LinkConfig {
                latency_us: 5000,
                drop_every: 0,
                ..LinkConfig::default()
            },
        );
        let t_ab = net.send(A, B, vec![0]).unwrap();
        let t_ac = net.send(A, C, vec![0]).unwrap();
        assert_eq!(t_ab, 96);
        assert_eq!(t_ac, 5000);
    }

    #[test]
    fn deterministic_loss_drops_every_nth() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 1,
            drop_every: 3,
            ..LinkConfig::default()
        });
        let mut accepted = 0;
        for _ in 0..9 {
            if net.send(A, B, vec![0]).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 6);
        assert_eq!(net.stats(A).dropped, 3);
        assert_eq!(net.stats(A).tx_packets, 9);
        let due = net.advance_to(10);
        assert_eq!(due.len(), 6);
        assert_eq!(net.stats(B).rx_packets, 6);
    }

    #[test]
    fn time_never_goes_backwards() {
        let mut net = SimNet::lan();
        net.advance_to(1000);
        assert_eq!(net.now(), 1000);
        net.advance_to(500);
        assert_eq!(net.now(), 1000);
        // A packet sent now is delivered relative to the later time.
        let at = net.send(A, B, vec![1]).unwrap();
        assert_eq!(at, 1096);
    }

    #[test]
    fn stats_account_bytes_both_directions() {
        let mut net = SimNet::lan();
        net.send(A, B, vec![0u8; 60]).unwrap();
        net.send(B, A, vec![0u8; 1400]).unwrap();
        net.advance_to(10_000);
        assert_eq!(net.stats(A).tx_bytes, 60);
        assert_eq!(net.stats(A).rx_bytes, 1400);
        assert_eq!(net.stats(B).tx_bytes, 1400);
        assert_eq!(net.stats(B).rx_bytes, 60);
        assert_eq!(net.all_stats().len(), 2);
        assert_eq!(net.stats(NodeId(99)), NodeStats::default());
    }

    #[test]
    fn next_delivery_time_exposed() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 42,
            drop_every: 0,
            ..LinkConfig::default()
        });
        assert_eq!(net.next_delivery_at(), None);
        net.send(A, B, vec![1]).unwrap();
        assert_eq!(net.next_delivery_at(), Some(42));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "node4");
    }

    #[test]
    fn serialisation_delay_charged_at_link_bandwidth() {
        // 1 byte per µs makes the arithmetic visible.
        let link = LinkConfig {
            latency_us: 100,
            drop_every: 0,
            bytes_per_sec: 1_000_000,
        };
        assert_eq!(link.serialise_micros(0), 0);
        assert_eq!(link.serialise_micros(500), 500);
        let mut net = SimNet::new(link);
        let at = net.send(A, B, vec![0u8; 500]).unwrap();
        assert_eq!(at, 600, "500 µs serialisation + 100 µs latency");
        // Infinite bandwidth: latency only.
        let infinite = LinkConfig {
            bytes_per_sec: 0,
            ..link
        };
        assert_eq!(infinite.serialise_micros(usize::MAX), 0);
        let mut net = SimNet::new(infinite);
        assert_eq!(net.send(A, B, vec![0u8; 500]).unwrap(), 100);
    }

    #[test]
    fn back_to_back_packets_queue_behind_the_transmitter() {
        let link = LinkConfig {
            latency_us: 10,
            drop_every: 0,
            bytes_per_sec: 1_000_000, // 1 byte/µs
        };
        let mut net = SimNet::new(link);
        // Two 100-byte packets handed to the link at t=0: the second starts
        // serialising only after the first finishes.
        assert_eq!(net.send(A, B, vec![0u8; 100]).unwrap(), 110);
        assert_eq!(net.send(A, B, vec![0u8; 100]).unwrap(), 210);
        // The reverse direction has its own transmitter.
        assert_eq!(net.send(B, A, vec![0u8; 100]).unwrap(), 110);
        // A dropped packet still occupies the transmitter: with drop_every=1
        // on a fresh link, a drop followed by an accepted packet queues it.
        let mut net = SimNet::new(link);
        net.set_link(
            A,
            C,
            LinkConfig {
                drop_every: 2,
                ..link
            },
        );
        assert_eq!(net.send(A, C, vec![0u8; 100]).unwrap(), 110);
        assert!(net.send(A, C, vec![0u8; 100]).is_none()); // dropped, tx busy until 200
        assert_eq!(net.send(A, C, vec![0u8; 100]).unwrap(), 310);
    }

    #[test]
    fn link_and_rtt_model_convert_both_ways() {
        let lan = LinkConfig::default();
        let model = lan.rtt_model();
        assert_eq!(model.rtt_micros, 192, "paper's bare-hw ping RTT (§6.8)");
        assert_eq!(model.bytes_per_sec, LinkConfig::LAN_BYTES_PER_SEC);
        assert_eq!(LinkConfig::from_rtt_model(&model), lan);
        // The WAN the spot-check reports model: RttModel::DEFAULT.
        let wan = LinkConfig::from_rtt_model(&RttModel::DEFAULT);
        assert_eq!(wan.latency_us, 25_000);
        assert_eq!(wan.bytes_per_sec, 1_250_000);
        assert_eq!(wan.rtt_model(), RttModel::DEFAULT);
        // Infinite bandwidth maps to the model's "effectively infinite".
        let infinite = LinkConfig {
            bytes_per_sec: 0,
            ..lan
        };
        assert_eq!(infinite.rtt_model().bytes_per_sec, u64::MAX);
        assert_eq!(LinkConfig::from_rtt_model(&infinite.rtt_model()), infinite);
    }

    /// A lossless request/response exchange costs exactly what the link's
    /// [`RttModel`] predicts when the model is applied per packet — the
    /// calibration the audit transports rely on.
    #[test]
    fn lossless_exchange_prices_identically_under_link_and_model() {
        let link = LinkConfig::default();
        let model = link.rtt_model();
        let (req_len, resp_len) = (1_037usize, 16_411usize);
        let mut net = SimNet::new(link);
        let t0 = net.now();
        let at_server = net.send(A, B, vec![0u8; req_len]).unwrap();
        net.advance_to(at_server);
        let at_client = net.send(B, A, vec![0u8; resp_len]).unwrap();
        net.advance_to(at_client);
        let simulated = net.now() - t0;
        let modelled = model.rtt_micros
            + model.latency_micros(0, req_len as u64)
            + model.latency_micros(0, resp_len as u64);
        assert_eq!(simulated, modelled);
        // And the single-call form (serialising both payloads in one term)
        // is within one µs per packet of the simulation.
        let single = model.latency_micros(1, (req_len + resp_len) as u64);
        assert!(single.abs_diff(simulated) <= 2);
    }

    /// Deterministic loss interacts with per-link counters, not global ones:
    /// each directed link drops its own every-nth packet, reproducibly.
    #[test]
    fn deterministic_loss_is_per_directed_link_and_reproducible() {
        let run = || {
            let mut net = SimNet::new(LinkConfig {
                latency_us: 1,
                drop_every: 4,
                ..LinkConfig::default()
            });
            let mut outcomes = Vec::new();
            for i in 0..12 {
                // Interleave directions; each keeps its own drop cadence.
                if i % 2 == 0 {
                    outcomes.push(net.send(A, B, vec![i]).is_some());
                } else {
                    outcomes.push(net.send(B, A, vec![i]).is_some());
                }
            }
            (outcomes, net.stats(A).dropped, net.stats(B).dropped)
        };
        let (outcomes, dropped_a, dropped_b) = run();
        // 6 packets per direction, every 4th dropped => exactly 1 drop each.
        assert_eq!(dropped_a, 1);
        assert_eq!(dropped_b, 1);
        assert_eq!(outcomes.iter().filter(|ok| !**ok).count(), 2);
        // Bit-identical on a second run: the loss model is deterministic.
        assert_eq!(run(), (outcomes, dropped_a, dropped_b));
    }

    /// Byte/packet accounting: tx counts every handed-over packet (dropped
    /// included), rx counts only delivered ones, and bytes follow suit.
    #[test]
    fn stats_account_drops_against_tx_only() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 1,
            drop_every: 2,
            ..LinkConfig::default()
        });
        for _ in 0..6 {
            net.send(A, B, vec![0u8; 10]);
        }
        net.advance_to(1_000);
        let a = net.stats(A);
        let b = net.stats(B);
        assert_eq!(a.tx_packets, 6);
        assert_eq!(a.tx_bytes, 60);
        assert_eq!(a.dropped, 3);
        assert_eq!(b.rx_packets, 3);
        assert_eq!(b.rx_bytes, 30);
        assert_eq!(b.tx_packets, 0);
    }
}
