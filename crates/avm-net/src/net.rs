//! The simulated network core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::stats::NodeStats;

/// Identifier of a node attached to the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Per-link behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way latency in microseconds.
    pub latency_us: u64,
    /// Drop every n-th packet (0 = no loss).  Deterministic loss keeps the
    /// whole simulation reproducible.
    pub drop_every: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // A switched LAN: ~96 µs one-way, mirroring the paper's testbed where
        // a bare-hardware ping RTT is 192 µs (§6.8).
        LinkConfig {
            latency_us: 96,
            drop_every: 0,
        }
    }
}

/// A packet delivered to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Simulated time (µs) at which the packet arrives.
    pub deliver_at: u64,
    /// Simulated time (µs) at which the packet was sent.
    pub sent_at: u64,
}

/// In-flight packet ordered by delivery time (then by a tie-breaking counter
/// so FIFO order is preserved between equal timestamps).
#[derive(Debug, Clone, PartialEq, Eq)]
struct InFlight {
    deliver_at: u64,
    order: u64,
    delivery: Delivery,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.order).cmp(&(other.deliver_at, other.order))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated network.
#[derive(Debug, Default)]
pub struct SimNet {
    now_us: u64,
    default_link: LinkConfig,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    in_flight: BinaryHeap<Reverse<InFlight>>,
    send_counter: u64,
    per_link_sent: HashMap<(NodeId, NodeId), u64>,
    stats: HashMap<NodeId, NodeStats>,
}

impl SimNet {
    /// Creates a network where every pair of nodes uses `default_link`.
    pub fn new(default_link: LinkConfig) -> SimNet {
        SimNet {
            default_link,
            ..SimNet::default()
        }
    }

    /// Creates a network with LAN-like defaults.
    pub fn lan() -> SimNet {
        SimNet::new(LinkConfig::default())
    }

    /// Current simulated time in microseconds.
    pub fn now(&self) -> u64 {
        self.now_us
    }

    /// Overrides the link configuration for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        self.links.insert((from, to), config);
    }

    fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Sends `payload` from `from` to `to` at the current simulated time.
    ///
    /// Returns the delivery time if the packet was accepted, or `None` if the
    /// link's deterministic loss model dropped it.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: Vec<u8>) -> Option<u64> {
        let link = self.link(from, to);
        let sent = self.per_link_sent.entry((from, to)).or_insert(0);
        *sent += 1;
        let tx = self.stats.entry(from).or_default();
        tx.tx_packets += 1;
        tx.tx_bytes += payload.len() as u64;
        if link.drop_every != 0 && (*sent).is_multiple_of(link.drop_every) {
            self.stats.entry(from).or_default().dropped += 1;
            return None;
        }
        let deliver_at = self.now_us + link.latency_us;
        self.send_counter += 1;
        self.in_flight.push(Reverse(InFlight {
            deliver_at,
            order: self.send_counter,
            delivery: Delivery {
                from,
                to,
                payload,
                deliver_at,
                sent_at: self.now_us,
            },
        }));
        Some(deliver_at)
    }

    /// Advances simulated time to `time_us` and returns every delivery that
    /// became due, in delivery order.
    ///
    /// Time never moves backwards; passing an earlier time only collects
    /// packets already due.
    pub fn advance_to(&mut self, time_us: u64) -> Vec<Delivery> {
        if time_us > self.now_us {
            self.now_us = time_us;
        }
        let mut due = Vec::new();
        while let Some(Reverse(top)) = self.in_flight.peek() {
            if top.deliver_at > self.now_us {
                break;
            }
            let Reverse(pkt) = self.in_flight.pop().expect("peeked");
            let rx = self.stats.entry(pkt.delivery.to).or_default();
            rx.rx_packets += 1;
            rx.rx_bytes += pkt.delivery.payload.len() as u64;
            due.push(pkt.delivery);
        }
        due
    }

    /// Time of the next pending delivery, if any.
    pub fn next_delivery_at(&self) -> Option<u64> {
        self.in_flight.peek().map(|Reverse(p)| p.deliver_at)
    }

    /// Number of packets currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Traffic statistics for `node`.
    pub fn stats(&self, node: NodeId) -> NodeStats {
        self.stats.get(&node).copied().unwrap_or_default()
    }

    /// Traffic statistics for every node that has sent or received.
    pub fn all_stats(&self) -> Vec<(NodeId, NodeStats)> {
        let mut v: Vec<_> = self.stats.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);
    const C: NodeId = NodeId(3);

    #[test]
    fn packet_arrives_after_link_latency() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 100,
            drop_every: 0,
        });
        let at = net.send(A, B, b"ping".to_vec()).unwrap();
        assert_eq!(at, 100);
        assert!(net.advance_to(99).is_empty());
        let due = net.advance_to(100);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].from, A);
        assert_eq!(due[0].to, B);
        assert_eq!(due[0].payload, b"ping");
        assert_eq!(due[0].sent_at, 0);
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn deliveries_are_ordered_and_fifo_for_ties() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 10,
            drop_every: 0,
        });
        net.send(A, B, vec![1]).unwrap();
        net.send(A, B, vec![2]).unwrap();
        net.send(A, B, vec![3]).unwrap();
        let due = net.advance_to(50);
        let payloads: Vec<u8> = due.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![1, 2, 3]);
    }

    #[test]
    fn per_link_latency_override() {
        let mut net = SimNet::lan();
        net.set_link(
            A,
            C,
            LinkConfig {
                latency_us: 5000,
                drop_every: 0,
            },
        );
        let t_ab = net.send(A, B, vec![0]).unwrap();
        let t_ac = net.send(A, C, vec![0]).unwrap();
        assert_eq!(t_ab, 96);
        assert_eq!(t_ac, 5000);
    }

    #[test]
    fn deterministic_loss_drops_every_nth() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 1,
            drop_every: 3,
        });
        let mut accepted = 0;
        for _ in 0..9 {
            if net.send(A, B, vec![0]).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 6);
        assert_eq!(net.stats(A).dropped, 3);
        assert_eq!(net.stats(A).tx_packets, 9);
        let due = net.advance_to(10);
        assert_eq!(due.len(), 6);
        assert_eq!(net.stats(B).rx_packets, 6);
    }

    #[test]
    fn time_never_goes_backwards() {
        let mut net = SimNet::lan();
        net.advance_to(1000);
        assert_eq!(net.now(), 1000);
        net.advance_to(500);
        assert_eq!(net.now(), 1000);
        // A packet sent now is delivered relative to the later time.
        let at = net.send(A, B, vec![1]).unwrap();
        assert_eq!(at, 1096);
    }

    #[test]
    fn stats_account_bytes_both_directions() {
        let mut net = SimNet::lan();
        net.send(A, B, vec![0u8; 60]).unwrap();
        net.send(B, A, vec![0u8; 1400]).unwrap();
        net.advance_to(10_000);
        assert_eq!(net.stats(A).tx_bytes, 60);
        assert_eq!(net.stats(A).rx_bytes, 1400);
        assert_eq!(net.stats(B).tx_bytes, 1400);
        assert_eq!(net.stats(B).rx_bytes, 60);
        assert_eq!(net.all_stats().len(), 2);
        assert_eq!(net.stats(NodeId(99)), NodeStats::default());
    }

    #[test]
    fn next_delivery_time_exposed() {
        let mut net = SimNet::new(LinkConfig {
            latency_us: 42,
            drop_every: 0,
        });
        assert_eq!(net.next_delivery_at(), None);
        net.send(A, B, vec![1]).unwrap();
        assert_eq!(net.next_delivery_at(), Some(42));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "node4");
    }
}
