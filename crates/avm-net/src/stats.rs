//! Traffic accounting used by the network-overhead experiment (§6.7).

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Packets sent (including ones the loss model later dropped).
    pub tx_packets: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Packets received.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Packets dropped by the loss model on links where this node was the sender.
    pub dropped: u64,
}

impl NodeStats {
    /// Average sending rate in kilobits per second over `duration_us`
    /// microseconds of simulated time.
    pub fn tx_kbps(&self, duration_us: u64) -> f64 {
        if duration_us == 0 {
            return 0.0;
        }
        let bits = self.tx_bytes as f64 * 8.0;
        let seconds = duration_us as f64 / 1_000_000.0;
        bits / seconds / 1000.0
    }

    /// Average sent-packet size in bytes.
    pub fn avg_tx_packet_size(&self) -> f64 {
        if self.tx_packets == 0 {
            0.0
        } else {
            self.tx_bytes as f64 / self.tx_packets as f64
        }
    }
}

/// A labelled traffic comparison row, e.g. "bare-hw" vs "avmm-rsa768"
/// (paper §6.7 reports 22 kbps vs 215.5 kbps).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Configuration label.
    pub label: String,
    /// Measured statistics.
    pub stats: NodeStats,
    /// Duration of the measurement in simulated microseconds.
    pub duration_us: u64,
}

impl TrafficReport {
    /// Sending rate in kbps.
    pub fn kbps(&self) -> f64 {
        self.stats.tx_kbps(self.duration_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kbps_computation() {
        let stats = NodeStats {
            tx_bytes: 125_000, // 1 Mbit
            tx_packets: 100,
            ..Default::default()
        };
        // Over one second: 1000 kbps.
        assert!((stats.tx_kbps(1_000_000) - 1000.0).abs() < 1e-9);
        assert_eq!(stats.tx_kbps(0), 0.0);
        assert!((stats.avg_tx_packet_size() - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn zero_packets_avg_size() {
        assert_eq!(NodeStats::default().avg_tx_packet_size(), 0.0);
    }

    #[test]
    fn traffic_report_rate() {
        let report = TrafficReport {
            label: "avmm-rsa768".to_string(),
            stats: NodeStats {
                tx_bytes: 26_937, // ~215.5 kbps over 1 s
                ..Default::default()
            },
            duration_us: 1_000_000,
        };
        assert!((report.kbps() - 215.496).abs() < 0.01);
    }
}
