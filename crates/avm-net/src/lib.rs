//! Discrete-event simulated network for the AVM reproduction.
//!
//! The paper's evaluation runs three workstations on a 1 Gbps switch and
//! measures ping round-trip times, per-packet overhead and aggregate traffic
//! (§6.7, §6.8).  This crate provides the controllable stand-in: a
//! discrete-event network with per-link latency, optional deterministic
//! loss, in-order delivery per link, and byte/packet accounting per node.
//!
//! Simulated time is in **microseconds**.  The network never advances time
//! by itself; the driver (the AVMM runtime in `avm-core`, or a test) calls
//! [`SimNet::advance_to`] and collects the deliveries that became due.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eventloop;
pub mod net;
pub mod stats;

pub use eventloop::{run_event_loop, Endpoint, EventLoopReport};
pub use net::{Delivery, LinkConfig, NodeId, SimNet};
pub use stats::{NodeStats, TrafficReport};
