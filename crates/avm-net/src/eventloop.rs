//! Deterministic multi-node event loop over one [`SimNet`].
//!
//! The single-client audit transport drives the network from inside one
//! blocking exchange: send, advance, collect.  A fleet cannot work that way
//! — one provider and N auditors all have traffic in flight at once, and
//! each delivery may trigger new sends from a different node.  This module
//! supplies the missing driver: every participant implements [`Endpoint`],
//! and [`run_event_loop`] advances simulated time to the next interesting
//! instant (earliest in-flight delivery or earliest endpoint timer),
//! dispatches the due deliveries to their destination endpoints, and ticks
//! every endpoint so timer-driven work (retransmissions, session starts,
//! idle expiry) happens at exactly the simulated microsecond it is due.
//!
//! Determinism: deliveries are dispatched in the order [`SimNet::advance_to`]
//! returns them, and endpoints are ticked in slice order at each step.  Two
//! runs over the same inputs produce identical traffic, identical timing,
//! and identical reports — which is what lets the fleet benchmark pin its
//! numbers and the property tests compare interleaved against serial runs.

use std::collections::HashMap;

use crate::net::{Delivery, NodeId, SimNet};

/// One simulated participant (a provider node or an auditor).
pub trait Endpoint {
    /// The node this endpoint receives traffic on.
    fn node(&self) -> NodeId;

    /// Handles one delivery addressed to [`Endpoint::node`].  The endpoint
    /// may send replies or new requests via `net` (time is `net.now()`).
    fn on_delivery(&mut self, net: &mut SimNet, delivery: Delivery);

    /// Performs any timer-driven work due at `net.now()` (retransmit, start
    /// a session, expire idle peers) and returns the next simulated
    /// microsecond this endpoint wants waking at, or `None` if it is idle.
    ///
    /// The loop exits once every endpoint returns `None` and no traffic is
    /// in flight, so a finished endpoint must stop asking for wakeups.
    fn on_tick(&mut self, net: &mut SimNet) -> Option<u64>;
}

/// What [`run_event_loop`] did: how far simulated time ran and why the loop
/// stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLoopReport {
    /// Simulation steps executed (one step = advance + dispatch + tick).
    pub steps: u64,
    /// Deliveries addressed to a node no endpoint claims (dropped).
    pub undelivered: u64,
    /// True if the loop quiesced (no in-flight traffic, no timers); false
    /// if it hit the `max_steps` safety bound first.
    pub quiescent: bool,
    /// Simulated time when the loop stopped.
    pub now_us: u64,
}

/// Drives `endpoints` over `net` until the system quiesces — no deliveries
/// in flight and no endpoint asking for a timer — or `max_steps` simulation
/// steps have run (a safety bound against livelock; a quiescent run's
/// report says which happened).
///
/// Endpoints are ticked once before time first advances, so initial sends
/// happen at the current `net.now()`.  If two endpoints claim the same
/// node id, the first in slice order receives the traffic.
pub fn run_event_loop(
    net: &mut SimNet,
    endpoints: &mut [&mut dyn Endpoint],
    max_steps: u64,
) -> EventLoopReport {
    let mut by_node: HashMap<NodeId, usize> = HashMap::with_capacity(endpoints.len());
    for (index, endpoint) in endpoints.iter().enumerate() {
        by_node.entry(endpoint.node()).or_insert(index);
    }
    let mut report = EventLoopReport {
        steps: 0,
        undelivered: 0,
        quiescent: false,
        now_us: net.now(),
    };
    loop {
        // Tick everyone due now and learn the earliest pending timer.
        let mut next_timer: Option<u64> = None;
        for endpoint in endpoints.iter_mut() {
            if let Some(at) = endpoint.on_tick(net) {
                next_timer = Some(next_timer.map_or(at, |t: u64| t.min(at)));
            }
        }
        let next_at = match (net.next_delivery_at(), next_timer) {
            (Some(d), Some(t)) => d.min(t),
            (Some(d), None) => d,
            (None, Some(t)) => t,
            (None, None) => {
                report.quiescent = true;
                report.now_us = net.now();
                return report;
            }
        };
        if report.steps >= max_steps {
            report.now_us = net.now();
            return report;
        }
        report.steps += 1;
        // A timer may be due at or before now (e.g. an endpoint that wants
        // an immediate re-tick after sending); never move time backwards.
        let next_at = next_at.max(net.now());
        for delivery in net.advance_to(next_at) {
            match by_node.get(&delivery.to) {
                Some(&index) => endpoints[index].on_delivery(net, delivery),
                None => report.undelivered += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkConfig;

    /// Replies `payload + 1` to everything it receives; never sets timers.
    struct Echo {
        node: NodeId,
        seen: Vec<u8>,
    }

    impl Endpoint for Echo {
        fn node(&self) -> NodeId {
            self.node
        }
        fn on_delivery(&mut self, net: &mut SimNet, delivery: Delivery) {
            let value = delivery.payload[0];
            self.seen.push(value);
            net.send(self.node, delivery.from, vec![value + 1]);
        }
        fn on_tick(&mut self, _net: &mut SimNet) -> Option<u64> {
            None
        }
    }

    /// Sends one ping at `start_at`, counts hops until `limit`, then idles.
    struct Pinger {
        node: NodeId,
        target: NodeId,
        start_at: u64,
        started: bool,
        hops: u32,
        limit: u32,
    }

    impl Endpoint for Pinger {
        fn node(&self) -> NodeId {
            self.node
        }
        fn on_delivery(&mut self, net: &mut SimNet, delivery: Delivery) {
            self.hops += 1;
            if self.hops < self.limit {
                net.send(self.node, delivery.from, delivery.payload);
            }
        }
        fn on_tick(&mut self, net: &mut SimNet) -> Option<u64> {
            if self.started {
                return None;
            }
            if net.now() < self.start_at {
                return Some(self.start_at);
            }
            self.started = true;
            net.send(self.node, self.target, vec![0]);
            None
        }
    }

    #[test]
    fn ping_pong_quiesces_deterministically() {
        let run = || {
            let mut net = SimNet::new(LinkConfig::default());
            let mut echo = Echo {
                node: NodeId(1),
                seen: Vec::new(),
            };
            let mut ping = Pinger {
                node: NodeId(2),
                target: NodeId(1),
                start_at: 50,
                started: false,
                hops: 0,
                limit: 3,
            };
            let report = run_event_loop(&mut net, &mut [&mut echo, &mut ping], 1_000);
            (report, echo.seen.clone(), ping.hops)
        };
        let (report, seen, hops) = run();
        assert!(report.quiescent);
        assert_eq!(report.undelivered, 0);
        assert_eq!(hops, 3);
        // Each bounce increments: the echo server saw 0, 1, 2.
        assert_eq!(seen, vec![0, 1, 2]);
        // Determinism: an identical run matches exactly, including timing.
        assert_eq!(run(), (report, seen, hops));
    }

    #[test]
    fn timer_only_endpoints_drive_time_forward() {
        // No traffic at all: the pinger's start timer must still advance
        // simulated time to exactly its start instant.
        let mut net = SimNet::new(LinkConfig::default());
        let mut ping = Pinger {
            node: NodeId(2),
            target: NodeId(7), // nobody home
            start_at: 400,
            started: false,
            hops: 0,
            limit: 1,
        };
        let report = run_event_loop(&mut net, &mut [&mut ping], 1_000);
        assert!(report.quiescent);
        assert!(report.now_us >= 400);
        // The ping went to an unclaimed node and was dropped, counted.
        assert_eq!(report.undelivered, 1);
    }

    #[test]
    fn max_steps_bounds_a_livelocked_pair() {
        // Two echoes bouncing forever: the safety bound must fire.
        let mut net = SimNet::new(LinkConfig::default());
        let mut a = Echo {
            node: NodeId(1),
            seen: Vec::new(),
        };
        let mut b = Pinger {
            node: NodeId(2),
            target: NodeId(1),
            start_at: 0,
            started: false,
            hops: 0,
            limit: u32::MAX,
        };
        let report = run_event_loop(&mut net, &mut [&mut a, &mut b], 16);
        assert!(!report.quiescent);
        assert_eq!(report.steps, 16);
    }
}
