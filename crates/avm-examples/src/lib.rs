//! Examples live in the workspace-level `examples/` directory (see Cargo.toml).
