//! Virtual devices: clock, NIC, block disk, local input and console.
//!
//! The devices are the only channel through which nondeterminism can enter a
//! guest.  The AVMM hooks exactly these points:
//!
//! * **Clock** reads are host-provided values; each read is a
//!   nondeterministic input (the paper's `TimeTracker` entries).
//! * **NIC** receive queues are filled by injection (each injected packet is
//!   logged with its step stamp); transmissions are externally visible
//!   output.
//! * **Local input** events (keyboard/mouse) are injected and logged.
//! * The **disk** is deterministic: its initial content comes from the VM
//!   image and all subsequent changes are made by the (deterministic) guest,
//!   so reads need not be logged (paper §4.4).
//! * The **console** is an output-only diagnostic channel.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

use avm_crypto::sha256::{sha256, Digest};
use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

use crate::error::{VmError, VmResult};

/// Size of one disk block for dirty tracking and incremental snapshots.
pub const DISK_BLOCK_SIZE: usize = 4096;

/// A local input event (keyboard, mouse, controller).
///
/// The encoding is deliberately generic: `device` selects the input device,
/// `code` is a key/axis code and `value` the state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputEvent {
    /// Input device identifier (0 = keyboard, 1 = mouse, ...).
    pub device: u8,
    /// Key or axis code.
    pub code: u32,
    /// New value (1 = press, 0 = release, or an axis delta).
    pub value: i64,
}

impl Encode for InputEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.device);
        w.put_u32(self.code);
        w.put_i64(self.value);
    }
}

impl Decode for InputEvent {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(InputEvent {
            device: r.get_u8()?,
            code: r.get_u32()?,
            value: r.get_i64()?,
        })
    }
}

/// The virtual clock port.
///
/// Guests request the time; the hypervisor supplies it.  Each read is a
/// nondeterministic input that the AVMM records.
#[derive(Debug, Clone, Default)]
pub struct ClockPort {
    /// Set when the guest has requested a value and none has been provided.
    pub pending_request: bool,
    /// Host-provided value awaiting consumption by the guest.
    pub response: Option<u64>,
    /// Number of clock reads completed by the guest.
    pub reads_served: u64,
}

impl ClockPort {
    /// Guest-side read attempt.  Returns the value if one is available,
    /// otherwise records a pending request (the machine will exit to the
    /// hypervisor).
    pub fn guest_read(&mut self) -> Option<u64> {
        if let Some(v) = self.response.take() {
            self.pending_request = false;
            self.reads_served += 1;
            Some(v)
        } else {
            self.pending_request = true;
            None
        }
    }

    /// Hypervisor-side delivery of a clock value.
    pub fn provide(&mut self, value: u64) -> VmResult<()> {
        if !self.pending_request {
            return Err(VmError::UnexpectedHostResponse);
        }
        self.response = Some(value);
        Ok(())
    }
}

/// Virtual network interface.
#[derive(Debug, Clone, Default)]
pub struct Nic {
    /// Packets injected by the hypervisor, not yet read by the guest.
    pub rx_queue: VecDeque<Vec<u8>>,
    /// Total packets received (injected).
    pub rx_packets: u64,
    /// Total packets transmitted by the guest.
    pub tx_packets: u64,
    /// Total payload bytes received.
    pub rx_bytes: u64,
    /// Total payload bytes transmitted.
    pub tx_bytes: u64,
}

impl Nic {
    /// Hypervisor-side packet injection.
    pub fn inject(&mut self, data: Vec<u8>) {
        self.rx_packets += 1;
        self.rx_bytes += data.len() as u64;
        self.rx_queue.push_back(data);
    }

    /// Guest-side receive poll.
    pub fn guest_recv(&mut self) -> Option<Vec<u8>> {
        self.rx_queue.pop_front()
    }

    /// Guest-side transmit accounting (the payload itself is surfaced as a
    /// [`crate::exit::VmExit::NetTx`]).
    pub fn note_tx(&mut self, len: usize) {
        self.tx_packets += 1;
        self.tx_bytes += len as u64;
    }

    /// True if a packet is waiting for the guest.
    pub fn has_rx(&self) -> bool {
        !self.rx_queue.is_empty()
    }
}

/// Local input device queue.
#[derive(Debug, Clone, Default)]
pub struct InputQueue {
    /// Events injected by the hypervisor, not yet read by the guest.
    pub queue: VecDeque<InputEvent>,
    /// Total events injected.
    pub injected: u64,
}

impl InputQueue {
    /// Hypervisor-side injection.
    pub fn inject(&mut self, ev: InputEvent) {
        self.injected += 1;
        self.queue.push_back(ev);
    }

    /// Guest-side poll.
    pub fn guest_poll(&mut self) -> Option<InputEvent> {
        self.queue.pop_front()
    }
}

/// Virtual block disk with dirty-block tracking.
///
/// Initial contents come from the VM image; because the guest is
/// deterministic, the disk never needs to be logged — only snapshotted.
///
/// Like [`crate::GuestMemory`], the disk supports demand paging for
/// on-demand audits (§3.5): [`Disk::stage_lazy_block`] stages authentic
/// at-snapshot contents that are installed the moment the guest first reads
/// or writes the block, with [`Disk::block_hash`] reporting the staged hash
/// throughout so state roots stay correct before the transfer happens.
/// Unlike guest memory — which is tracked and transferred in 512 B chunks —
/// the disk keeps page-sized ([`DISK_BLOCK_SIZE`]) granularity: block-device
/// writes arrive in whole sectors, so sub-block tracking would buy nothing.
#[derive(Debug, Clone)]
pub struct Disk {
    data: Vec<u8>,
    dirty: Vec<bool>,
    /// Lazily filled SHA-256 per block, invalidated by the write path (the
    /// same contract as `GuestMemory`'s page-hash cache: validity tracks
    /// content changes, never snapshot boundaries).
    hash_cache: RefCell<Vec<Option<Digest>>>,
    /// Authentic contents staged for demand paging, keyed by block index.
    staged: HashMap<usize, Vec<u8>>,
    /// Block indices installed from `staged`, in first-touch order.
    faulted: Vec<usize>,
    /// Sectors read by the guest (statistics only).
    pub reads: u64,
    /// Sectors written by the guest (statistics only).
    pub writes: u64,
}

impl Disk {
    /// Creates a disk of `size` bytes (rounded up to whole blocks), zero-filled.
    pub fn new(size: u64) -> Disk {
        let blocks = (size as usize).div_ceil(DISK_BLOCK_SIZE).max(1);
        Disk {
            data: vec![0u8; blocks * DISK_BLOCK_SIZE],
            dirty: vec![false; blocks],
            hash_cache: RefCell::new(vec![None; blocks]),
            staged: HashMap::new(),
            faulted: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Creates a disk initialized with `content` (padded to whole blocks).
    pub fn from_content(content: &[u8]) -> Disk {
        let mut disk = Disk::new(content.len().max(1) as u64);
        disk.data[..content.len()].copy_from_slice(content);
        disk
    }

    /// Disk size in bytes.
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    /// Number of dirty-trackable blocks.
    pub fn block_count(&self) -> usize {
        self.dirty.len()
    }

    fn check(&self, offset: u64, len: usize) -> VmResult<()> {
        let end = offset
            .checked_add(len as u64)
            .ok_or(VmError::DiskOutOfRange {
                sector: offset / DISK_BLOCK_SIZE as u64,
                sectors: self.block_count() as u64,
            })?;
        if end > self.size() {
            return Err(VmError::DiskOutOfRange {
                sector: offset / DISK_BLOCK_SIZE as u64,
                sectors: self.block_count() as u64,
            });
        }
        Ok(())
    }

    /// Installs staged blocks overlapping `[offset, offset+len)` (demand
    /// paging; mirrors `GuestMemory::fault_in_range`).  For writes, blocks
    /// the range fully covers are dropped from staging without a fault —
    /// their contents are about to be overwritten wholesale.
    fn fault_in_range(&mut self, offset: u64, len: usize, overwrite: bool) {
        if self.staged.is_empty() || len == 0 {
            return;
        }
        let start = offset as usize;
        let Some(end) = start.checked_add(len - 1) else {
            return;
        };
        let first = start / DISK_BLOCK_SIZE;
        let last = (end / DISK_BLOCK_SIZE).min(self.dirty.len().saturating_sub(1));
        for b in first..=last {
            let fully_covered =
                start <= b * DISK_BLOCK_SIZE && (b + 1) * DISK_BLOCK_SIZE <= end + 1;
            if overwrite && fully_covered {
                self.staged.remove(&b);
                continue;
            }
            if let Some(content) = self.staged.remove(&b) {
                self.data[b * DISK_BLOCK_SIZE..(b + 1) * DISK_BLOCK_SIZE].copy_from_slice(&content);
                self.faulted.push(b);
            }
        }
    }

    /// Reads `buf.len()` bytes at byte `offset`.
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) -> VmResult<()> {
        self.check(offset, buf.len())?;
        self.fault_in_range(offset, buf.len(), false);
        buf.copy_from_slice(&self.data[offset as usize..offset as usize + buf.len()]);
        self.reads += 1;
        Ok(())
    }

    /// Writes `data` at byte `offset`, marking touched blocks dirty.
    pub fn write(&mut self, offset: u64, data: &[u8]) -> VmResult<()> {
        self.check(offset, data.len())?;
        self.fault_in_range(offset, data.len(), true);
        self.data[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        let first = offset as usize / DISK_BLOCK_SIZE;
        let last =
            ((offset as usize + data.len().max(1) - 1) / DISK_BLOCK_SIZE).min(self.dirty.len() - 1);
        let cache = self.hash_cache.get_mut();
        for (dirty, slot) in self.dirty[first..=last]
            .iter_mut()
            .zip(&mut cache[first..=last])
        {
            *dirty = true;
            *slot = None;
        }
        self.writes += 1;
        Ok(())
    }

    /// Returns block `idx` contents.
    pub fn block(&self, idx: usize) -> Option<&[u8]> {
        if idx >= self.block_count() {
            return None;
        }
        Some(&self.data[idx * DISK_BLOCK_SIZE..(idx + 1) * DISK_BLOCK_SIZE])
    }

    /// Overwrites block `idx` (snapshot restore).
    pub fn set_block(&mut self, idx: usize, content: &[u8]) -> VmResult<()> {
        if idx >= self.block_count() || content.len() != DISK_BLOCK_SIZE {
            return Err(VmError::CorruptState("disk block restore out of range"));
        }
        self.data[idx * DISK_BLOCK_SIZE..(idx + 1) * DISK_BLOCK_SIZE].copy_from_slice(content);
        // A wholesale overwrite supersedes staged contents; no fault needed.
        self.staged.remove(&idx);
        self.dirty[idx] = true;
        self.hash_cache.get_mut()[idx] = None;
        Ok(())
    }

    /// SHA-256 of block `idx` contents, memoised until the block is written.
    pub fn block_hash(&self, idx: usize) -> Option<Digest> {
        let block = self.block(idx)?;
        let mut cache = self.hash_cache.borrow_mut();
        if let Some(h) = cache[idx] {
            return Some(h);
        }
        let h = sha256(block);
        cache[idx] = Some(h);
        Some(h)
    }

    /// Fills the hash-cache slots for `indices` that are currently empty,
    /// hashing the missing blocks across the scoped worker pool (mirrors
    /// [`crate::GuestMemory::prime_chunk_hashes`]).  Out-of-range indices
    /// are ignored.
    pub fn prime_block_hashes(&self, indices: &[usize]) {
        let mut cache = self.hash_cache.borrow_mut();
        let missing: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| i < cache.len() && cache[i].is_none())
            .collect();
        if missing.is_empty() {
            return;
        }
        let inputs: Vec<&[u8]> = missing
            .iter()
            .map(|&i| self.block(i).expect("block in range"))
            .collect();
        for (i, digest) in missing
            .iter()
            .zip(avm_crypto::parallel::sha256_batch(&inputs))
        {
            cache[*i] = Some(digest);
        }
    }

    /// Indices of blocks written since the last [`Disk::clear_dirty`].
    pub fn dirty_blocks(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| if d { Some(i) } else { None })
            .collect()
    }

    /// Clears all dirty bits.
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    // --- Demand paging (on-demand audits, §3.5) --------------------------

    /// Stages authentic contents for block `idx` to be installed on first
    /// access, seeding the hash cache with `hash` (the SHA-256 of `content`,
    /// verified by the audit layer before staging).  Mirrors
    /// [`crate::GuestMemory::stage_lazy_chunk`].
    pub fn stage_lazy_block(&mut self, idx: usize, content: Vec<u8>, hash: Digest) -> VmResult<()> {
        if content.len() != DISK_BLOCK_SIZE {
            return Err(VmError::CorruptState("staged disk block has wrong size"));
        }
        if idx >= self.block_count() {
            return Err(VmError::CorruptState(
                "staged disk block index out of range",
            ));
        }
        self.hash_cache.get_mut()[idx] = Some(hash);
        self.staged.insert(idx, content);
        Ok(())
    }

    /// Block indices faulted in from staging so far, in first-touch order.
    pub fn faulted_blocks(&self) -> &[usize] {
        &self.faulted
    }

    /// Number of staged blocks not yet touched.
    pub fn staged_block_count(&self) -> usize {
        self.staged.len()
    }
}

/// Console output sink (diagnostics; accumulated, drained by the hypervisor).
#[derive(Debug, Clone, Default)]
pub struct Console {
    /// Bytes written by the guest and not yet drained.
    pub buffer: Vec<u8>,
    /// Total bytes ever written.
    pub total_bytes: u64,
}

impl Console {
    /// Guest-side write.
    pub fn write(&mut self, data: &[u8]) {
        self.total_bytes += data.len() as u64;
        self.buffer.extend_from_slice(data);
    }

    /// Hypervisor-side drain.
    pub fn drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buffer)
    }
}

/// All device state of a machine.
#[derive(Debug, Clone)]
pub struct DeviceState {
    /// The virtual clock port.
    pub clock: ClockPort,
    /// The virtual NIC.
    pub nic: Nic,
    /// The local input queue.
    pub input: InputQueue,
    /// The virtual disk.
    pub disk: Disk,
    /// The console.
    pub console: Console,
}

impl DeviceState {
    /// Creates device state with a disk initialized from `disk_content`.
    pub fn new(disk_content: &[u8]) -> DeviceState {
        DeviceState {
            clock: ClockPort::default(),
            nic: Nic::default(),
            input: InputQueue::default(),
            disk: Disk::from_content(disk_content),
            console: Console::default(),
        }
    }

    /// Serializes the *volatile* device state (everything except disk
    /// contents, which are snapshotted block-wise like memory pages).
    pub fn save_volatile(&self) -> Vec<u8> {
        let mut w = Writer::new();
        // Clock.
        w.put_bool(self.clock.pending_request);
        match self.clock.response {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                w.put_u64(v);
            }
        }
        w.put_u64(self.clock.reads_served);
        // NIC.
        w.put_varint(self.nic.rx_queue.len() as u64);
        for p in &self.nic.rx_queue {
            w.put_bytes(p);
        }
        w.put_u64(self.nic.rx_packets);
        w.put_u64(self.nic.tx_packets);
        w.put_u64(self.nic.rx_bytes);
        w.put_u64(self.nic.tx_bytes);
        // Input queue.
        w.put_varint(self.input.queue.len() as u64);
        for ev in &self.input.queue {
            ev.encode(&mut w);
        }
        w.put_u64(self.input.injected);
        // Disk statistics (content handled separately).
        w.put_u64(self.disk.reads);
        w.put_u64(self.disk.writes);
        // Console.
        w.put_bytes(&self.console.buffer);
        w.put_u64(self.console.total_bytes);
        w.into_bytes()
    }

    /// Restores volatile device state saved by [`DeviceState::save_volatile`].
    pub fn restore_volatile(&mut self, bytes: &[u8]) -> VmResult<()> {
        let mut r = Reader::new(bytes);
        self.restore_volatile_inner(&mut r)
            .map_err(|_| VmError::CorruptState("device state blob"))?;
        if !r.is_empty() {
            return Err(VmError::CorruptState("trailing bytes in device state"));
        }
        Ok(())
    }

    fn restore_volatile_inner(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        self.clock.pending_request = r.get_bool()?;
        self.clock.response = match r.get_u8()? {
            0 => None,
            _ => Some(r.get_u64()?),
        };
        self.clock.reads_served = r.get_u64()?;
        let n = r.get_varint()?;
        self.nic.rx_queue.clear();
        for _ in 0..n {
            self.nic.rx_queue.push_back(r.get_bytes()?.to_vec());
        }
        self.nic.rx_packets = r.get_u64()?;
        self.nic.tx_packets = r.get_u64()?;
        self.nic.rx_bytes = r.get_u64()?;
        self.nic.tx_bytes = r.get_u64()?;
        let n = r.get_varint()?;
        self.input.queue.clear();
        for _ in 0..n {
            self.input.queue.push_back(InputEvent::decode(r)?);
        }
        self.input.injected = r.get_u64()?;
        self.disk.reads = r.get_u64()?;
        self.disk.writes = r.get_u64()?;
        self.console.buffer = r.get_bytes()?.to_vec();
        self.console.total_bytes = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_request_response_cycle() {
        let mut clock = ClockPort::default();
        assert_eq!(clock.guest_read(), None);
        assert!(clock.pending_request);
        // Providing without a request is an error only when no request pending.
        clock.provide(123).unwrap();
        assert_eq!(clock.guest_read(), Some(123));
        assert_eq!(clock.reads_served, 1);
        assert!(!clock.pending_request);
        assert_eq!(clock.provide(1), Err(VmError::UnexpectedHostResponse));
    }

    #[test]
    fn nic_inject_and_recv_in_order() {
        let mut nic = Nic::default();
        assert!(!nic.has_rx());
        nic.inject(vec![1, 2, 3]);
        nic.inject(vec![4]);
        assert!(nic.has_rx());
        assert_eq!(nic.guest_recv(), Some(vec![1, 2, 3]));
        assert_eq!(nic.guest_recv(), Some(vec![4]));
        assert_eq!(nic.guest_recv(), None);
        assert_eq!(nic.rx_packets, 2);
        assert_eq!(nic.rx_bytes, 4);
        nic.note_tx(100);
        assert_eq!((nic.tx_packets, nic.tx_bytes), (1, 100));
    }

    #[test]
    fn input_queue_order() {
        let mut q = InputQueue::default();
        let e1 = InputEvent {
            device: 0,
            code: 30,
            value: 1,
        };
        let e2 = InputEvent {
            device: 1,
            code: 2,
            value: -5,
        };
        q.inject(e1);
        q.inject(e2);
        assert_eq!(q.guest_poll(), Some(e1));
        assert_eq!(q.guest_poll(), Some(e2));
        assert_eq!(q.guest_poll(), None);
        assert_eq!(q.injected, 2);
    }

    #[test]
    fn input_event_wire_roundtrip() {
        let ev = InputEvent {
            device: 2,
            code: 0xABCD,
            value: i64::MIN,
        };
        let bytes = ev.encode_to_vec();
        assert_eq!(InputEvent::decode_exact(&bytes).unwrap(), ev);
    }

    #[test]
    fn disk_read_write_and_dirty_blocks() {
        let mut disk = Disk::new(3 * DISK_BLOCK_SIZE as u64);
        assert_eq!(disk.block_count(), 3);
        disk.write(DISK_BLOCK_SIZE as u64 - 2, &[9; 4]).unwrap();
        let mut buf = [0u8; 4];
        disk.read(DISK_BLOCK_SIZE as u64 - 2, &mut buf).unwrap();
        assert_eq!(buf, [9; 4]);
        assert_eq!(disk.dirty_blocks(), vec![0, 1]);
        disk.clear_dirty();
        assert!(disk.dirty_blocks().is_empty());
        assert!(disk.read(3 * DISK_BLOCK_SIZE as u64, &mut buf).is_err());
        assert!(disk.write(u64::MAX, &[1]).is_err());
    }

    #[test]
    fn disk_from_content_and_blocks() {
        let content = vec![7u8; DISK_BLOCK_SIZE + 10];
        let mut disk = Disk::from_content(&content);
        assert_eq!(disk.block_count(), 2);
        assert_eq!(disk.block(0).unwrap()[0], 7);
        assert_eq!(disk.block(1).unwrap()[10], 0);
        assert!(disk.block(2).is_none());
        let new_block = vec![1u8; DISK_BLOCK_SIZE];
        disk.set_block(1, &new_block).unwrap();
        assert_eq!(disk.block(1).unwrap()[0], 1);
        assert!(disk.set_block(5, &new_block).is_err());
        assert!(disk.set_block(0, &[1, 2]).is_err());
    }

    #[test]
    fn disk_block_hash_cache_invalidated_by_writes() {
        let mut disk = Disk::new(2 * DISK_BLOCK_SIZE as u64);
        let h0 = disk.block_hash(0).unwrap();
        assert_eq!(disk.block_hash(0).unwrap(), h0);
        disk.write(10, &[1, 2, 3]).unwrap();
        let h1 = disk.block_hash(0).unwrap();
        assert_ne!(h0, h1);
        // Dirty clearing leaves the cache intact; the hash stays correct.
        disk.clear_dirty();
        assert_eq!(disk.block_hash(0).unwrap(), h1);
        let block = vec![9u8; DISK_BLOCK_SIZE];
        disk.set_block(1, &block).unwrap();
        assert_eq!(disk.block_hash(1).unwrap(), sha256(&block));
        assert!(disk.block_hash(2).is_none());
        for i in 0..disk.block_count() {
            assert_eq!(disk.block_hash(i).unwrap(), sha256(disk.block(i).unwrap()));
        }
    }

    #[test]
    fn staged_block_faults_in_on_access() {
        let mut disk = Disk::new(3 * DISK_BLOCK_SIZE as u64);
        let mut authentic = vec![0u8; DISK_BLOCK_SIZE];
        authentic[0] = 0x55;
        let hash = sha256(&authentic);
        disk.stage_lazy_block(1, authentic.clone(), hash).unwrap();
        // Hash reports the staged contents; raw block is still stale.
        assert_eq!(disk.block_hash(1).unwrap(), hash);
        assert_eq!(disk.block(1).unwrap()[0], 0);
        assert_eq!(disk.staged_block_count(), 1);
        // A read faults it in without marking it dirty.
        let mut buf = [0u8; 1];
        disk.read(DISK_BLOCK_SIZE as u64, &mut buf).unwrap();
        assert_eq!(buf[0], 0x55);
        assert_eq!(disk.faulted_blocks(), &[1]);
        assert!(disk.dirty_blocks().is_empty());
        assert_eq!(disk.block_hash(1).unwrap(), hash);
        // A partial write to another staged block lands on authentic bytes.
        let mut b2 = vec![0u8; DISK_BLOCK_SIZE];
        b2[10] = 0x77;
        disk.stage_lazy_block(2, b2.clone(), sha256(&b2)).unwrap();
        disk.write(2 * DISK_BLOCK_SIZE as u64, &[0x11]).unwrap();
        assert_eq!(disk.faulted_blocks(), &[1, 2]);
        assert_eq!(disk.block(2).unwrap()[10], 0x77);
        assert_eq!(disk.block(2).unwrap()[0], 0x11);
        assert_eq!(disk.dirty_blocks(), vec![2]);
        // set_block drops staging without recording a fault.
        let mut disk2 = Disk::new(DISK_BLOCK_SIZE as u64);
        disk2.stage_lazy_block(0, authentic.clone(), hash).unwrap();
        disk2.set_block(0, &vec![1u8; DISK_BLOCK_SIZE]).unwrap();
        assert!(disk2.faulted_blocks().is_empty());
        assert_eq!(disk2.staged_block_count(), 0);
        // So does a write() that fully covers the staged block.
        let mut disk3 = Disk::new(DISK_BLOCK_SIZE as u64);
        disk3.stage_lazy_block(0, authentic.clone(), hash).unwrap();
        disk3.write(0, &vec![2u8; DISK_BLOCK_SIZE]).unwrap();
        assert!(disk3.faulted_blocks().is_empty());
        assert_eq!(disk3.staged_block_count(), 0);
        assert_eq!(disk3.block(0).unwrap()[0], 2);
        // Validation.
        assert!(disk2.stage_lazy_block(5, authentic.clone(), hash).is_err());
        assert!(disk2.stage_lazy_block(0, vec![1, 2], hash).is_err());
    }

    #[test]
    fn console_accumulates_and_drains() {
        let mut c = Console::default();
        c.write(b"hello ");
        c.write(b"world");
        assert_eq!(c.total_bytes, 11);
        assert_eq!(c.drain(), b"hello world");
        assert!(c.drain().is_empty());
        assert_eq!(c.total_bytes, 11);
    }

    #[test]
    fn device_state_volatile_roundtrip() {
        let mut dev = DeviceState::new(b"disk image");
        dev.clock.guest_read();
        dev.clock.provide(42).unwrap();
        dev.nic.inject(vec![1, 2, 3]);
        dev.nic.note_tx(7);
        dev.input.inject(InputEvent {
            device: 0,
            code: 1,
            value: 1,
        });
        dev.console.write(b"boot ok");
        dev.disk.write(0, b"xyz").unwrap();

        let blob = dev.save_volatile();
        let mut restored = DeviceState::new(b"disk image");
        // Disk content is restored separately; emulate it here.
        restored.disk = dev.disk.clone();
        restored.restore_volatile(&blob).unwrap();

        assert_eq!(restored.clock.response, Some(42));
        assert_eq!(restored.nic.rx_queue, dev.nic.rx_queue);
        assert_eq!(restored.nic.tx_bytes, 7);
        assert_eq!(restored.input.queue, dev.input.queue);
        assert_eq!(restored.console.buffer, b"boot ok");

        // Corrupt blob is rejected.
        assert!(restored.restore_volatile(&blob[..blob.len() - 1]).is_err());
    }
}
