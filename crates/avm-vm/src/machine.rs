//! The virtual machine: memory + devices + CPU behind a hypervisor interface.

use std::collections::VecDeque;

use avm_crypto::sha256::{Digest, Sha256};

use crate::devices::{DeviceState, InputEvent};
use crate::error::{VmError, VmResult};
use crate::exit::{StopCondition, VmExit};
use crate::image::{GuestRegistry, ImageKind, VmImage};
use crate::mem::GuestMemory;

/// Result of a single CPU step, produced by a [`CpuCore`] implementation.
#[derive(Debug)]
pub enum CpuAction {
    /// The CPU made progress.
    Ran {
        /// Number of machine steps consumed (≥ 1).
        cost: u64,
        /// Exits to surface to the hypervisor, in order (outputs, idle hints).
        outputs: Vec<VmExit>,
    },
    /// The CPU cannot make progress until the hypervisor acts; no steps are
    /// consumed and the same logical operation resumes on the next step.
    Pause {
        /// The exit describing why the CPU paused.
        exit: VmExit,
        /// Outputs produced before pausing.
        outputs: Vec<VmExit>,
    },
}

/// A CPU implementation (the interpreting bytecode CPU or a native guest
/// kernel adapter).
pub trait CpuCore: Send {
    /// Executes one step against guest memory and devices.
    fn step(&mut self, mem: &mut GuestMemory, dev: &mut DeviceState) -> VmResult<CpuAction>;

    /// Serializes the complete CPU state.
    fn save_state(&self) -> Vec<u8>;

    /// Restores state produced by [`CpuCore::save_state`].
    fn restore_state(&mut self, bytes: &[u8]) -> VmResult<()>;
}

/// Static configuration of a machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Guest RAM size in bytes.
    pub mem_size: u64,
    /// Initial disk contents.
    pub disk_content: Vec<u8>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            mem_size: 256 * 1024,
            disk_content: Vec::new(),
        }
    }
}

/// A deterministic virtual machine.
///
/// The hypervisor (the AVMM in `avm-core`, or a test) drives the machine by
/// calling [`Machine::run`] and responding to the returned [`VmExit`]s.
/// Asynchronous inputs are delivered through [`Machine::inject_packet`] and
/// [`Machine::inject_input`]; the step counter at the moment of injection is
/// the timestamp the AVMM records so that replay can re-inject at exactly the
/// same point.
pub struct Machine {
    mem: GuestMemory,
    dev: DeviceState,
    cpu: Box<dyn CpuCore>,
    step_count: u64,
    halted: bool,
    waiting_clock: bool,
    pending: VecDeque<VmExit>,
    /// Bumped on every operation that may change CPU state, volatile device
    /// state or the control word — the three "header" leaves of the Merkle
    /// state tree.  `StateTreeCache::refresh` skips reserialising and
    /// rehashing those leaves while the version is unchanged.
    state_version: u64,
}

impl Machine {
    /// Creates a machine from parts.
    pub fn new(config: MachineConfig, cpu: Box<dyn CpuCore>) -> Machine {
        Machine {
            mem: GuestMemory::new(config.mem_size),
            dev: DeviceState::new(&config.disk_content),
            cpu,
            step_count: 0,
            halted: false,
            waiting_clock: false,
            pending: VecDeque::new(),
            state_version: 0,
        }
    }

    /// Instantiates a machine from a VM image, using `registry` to resolve
    /// native guest programs.
    pub fn from_image(image: &VmImage, registry: &GuestRegistry) -> VmResult<Machine> {
        let config = MachineConfig {
            mem_size: image.mem_size,
            disk_content: image.disk.clone(),
        };
        let cpu: Box<dyn CpuCore> = match &image.kind {
            ImageKind::Bytecode {
                code,
                load_addr,
                entry,
            } => {
                let machine_cpu = crate::bytecode::BytecodeCpu::new(*entry);
                machine_cpu.validate_entry(*entry, *load_addr, code.len() as u64)?;
                let mut m = Machine::new(config, Box::new(machine_cpu));
                m.mem.write(*load_addr, code)?;
                m.mem.clear_dirty();
                return Ok(m);
            }
            ImageKind::Native {
                program,
                config: guest_config,
            } => {
                let kernel = registry.instantiate(program, guest_config)?;
                Box::new(crate::native::NativeCpu::new(kernel))
            }
        };
        Ok(Machine::new(config, cpu))
    }

    /// Current step counter (total machine steps executed so far).
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// A conservative change counter over CPU state, volatile device state
    /// and the control word (everything the state tree's header leaves
    /// cover).  Guest memory writes do *not* bump it — pages have their own
    /// dirty bits.  While two observations return the same version, the
    /// header leaves are guaranteed unchanged; the converse need not hold
    /// (a bump does not imply an actual change).
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// True once the guest has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// True while the machine waits for a clock value from the hypervisor.
    pub fn is_waiting_clock(&self) -> bool {
        self.waiting_clock
    }

    /// Immutable access to guest memory.
    pub fn memory(&self) -> &GuestMemory {
        &self.mem
    }

    /// Mutable access to guest memory (snapshot restore, test setup — and
    /// the attack surface a cheating operator would use).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.mem
    }

    /// Immutable access to device state.
    pub fn devices(&self) -> &DeviceState {
        &self.dev
    }

    /// Mutable access to device state.
    ///
    /// Bumps the state version: volatile device state is part of the Merkle
    /// tree's header leaves and the caller may change it through this
    /// handle.
    pub fn devices_mut(&mut self) -> &mut DeviceState {
        self.state_version += 1;
        &mut self.dev
    }

    /// Clears memory and disk dirty tracking without bumping the state
    /// version.
    ///
    /// Dirty bits are bookkeeping, not machine state — they appear in no
    /// header leaf — so snapshot capture and restore paths use this instead
    /// of reaching through [`Machine::devices_mut`] (which conservatively
    /// assumes device state may change).
    pub fn clear_dirty_tracking(&mut self) {
        self.mem.clear_dirty();
        self.dev.disk.clear_dirty();
    }

    /// Runs the machine until an exit or until `stop` is reached.
    pub fn run(&mut self, stop: StopCondition) -> VmResult<VmExit> {
        self.state_version += 1;
        if let Some(e) = self.pending.pop_front() {
            return Ok(e);
        }
        if self.halted {
            return Ok(VmExit::Halted);
        }
        if self.waiting_clock {
            return Err(VmError::PendingHostResponse);
        }
        loop {
            if let Some(bound) = stop.step_bound() {
                if self.step_count >= bound {
                    return Ok(VmExit::StepLimit);
                }
            }
            match self.cpu.step(&mut self.mem, &mut self.dev)? {
                CpuAction::Ran { cost, outputs } => {
                    self.step_count += cost.max(1);
                    self.pending.extend(outputs);
                    if let Some(e) = self.pending.pop_front() {
                        return Ok(e);
                    }
                }
                CpuAction::Pause { exit, outputs } => {
                    self.pending.extend(outputs);
                    match &exit {
                        VmExit::ClockRead => self.waiting_clock = true,
                        VmExit::Halted => self.halted = true,
                        _ => {}
                    }
                    self.pending.push_back(exit);
                    return Ok(self.pending.pop_front().expect("just pushed"));
                }
            }
        }
    }

    /// Delivers a clock value in response to a [`VmExit::ClockRead`].
    pub fn provide_clock(&mut self, value: u64) -> VmResult<()> {
        if !self.waiting_clock {
            return Err(VmError::UnexpectedHostResponse);
        }
        self.state_version += 1;
        self.dev.clock.provide(value)?;
        self.waiting_clock = false;
        Ok(())
    }

    /// Injects a network packet into the guest's NIC receive queue.
    ///
    /// Returns the step count at which the injection happened — the stamp the
    /// AVMM records so replay can re-inject at the same point.
    pub fn inject_packet(&mut self, data: Vec<u8>) -> u64 {
        self.state_version += 1;
        self.dev.nic.inject(data);
        self.step_count
    }

    /// Injects a local input event (keyboard/mouse).
    pub fn inject_input(&mut self, ev: InputEvent) -> u64 {
        self.state_version += 1;
        self.dev.input.inject(ev);
        self.step_count
    }

    /// Serializes the CPU state.
    pub fn save_cpu_state(&self) -> Vec<u8> {
        self.cpu.save_state()
    }

    /// Restores CPU state.
    pub fn restore_cpu_state(&mut self, bytes: &[u8]) -> VmResult<()> {
        self.state_version += 1;
        self.cpu.restore_state(bytes)
    }

    /// Restores the execution-control flags saved alongside snapshots.
    pub fn set_control_state(&mut self, step_count: u64, halted: bool, waiting_clock: bool) {
        self.state_version += 1;
        self.step_count = step_count;
        self.halted = halted;
        self.waiting_clock = waiting_clock;
        self.pending.clear();
    }

    /// Computes a digest of the complete machine state: CPU, volatile device
    /// state, every memory page and every disk block.
    ///
    /// This is the value the AVMM folds into snapshot records; two machines
    /// with equal digests are (up to hash collisions) in identical states.
    ///
    /// Hashes *raw* contents, so it must not be used on a partially-resident
    /// machine (one with staged, not-yet-faulted chunks or blocks from
    /// [`crate::GuestMemory::stage_lazy_chunk`]); compare Merkle state roots
    /// there instead — they are derived from the per-leaf hash caches, which
    /// demand paging keeps authentic.
    pub fn state_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"avm-machine-state-v1");
        let cpu = self.cpu.save_state();
        h.update(&(cpu.len() as u64).to_le_bytes());
        h.update(&cpu);
        let dev = self.dev.save_volatile();
        h.update(&(dev.len() as u64).to_le_bytes());
        h.update(&dev);
        h.update(&self.step_count.to_le_bytes());
        h.update(&[u8::from(self.halted), u8::from(self.waiting_clock)]);
        for i in 0..self.mem.page_count() {
            h.update(self.mem.page(i).expect("page in range"));
        }
        for i in 0..self.dev.disk.block_count() {
            h.update(self.dev.disk.block(i).expect("block in range"));
        }
        h.finalize()
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("step_count", &self.step_count)
            .field("halted", &self.halted)
            .field("waiting_clock", &self.waiting_clock)
            .field("mem_pages", &self.mem.page_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{assemble, BytecodeCpu};

    fn machine_with_program(src: &str) -> Machine {
        let code = assemble(src, 0).unwrap();
        let mut m = Machine::new(
            MachineConfig {
                mem_size: 64 * 1024,
                disk_content: vec![0u8; 8192],
            },
            Box::new(BytecodeCpu::new(0)),
        );
        m.memory_mut().write(0, &code).unwrap();
        m.memory_mut().clear_dirty();
        m
    }

    #[test]
    fn halt_program_halts() {
        let mut m = machine_with_program("halt");
        assert_eq!(m.run(StopCondition::Unbounded).unwrap(), VmExit::Halted);
        assert!(m.is_halted());
        // Running again keeps reporting Halted.
        assert_eq!(m.run(StopCondition::Unbounded).unwrap(), VmExit::Halted);
    }

    #[test]
    fn step_limit_is_exact_for_bytecode() {
        let mut m = machine_with_program(
            r"
            loop:
                addi r0, 1
                jmp loop
            ",
        );
        assert_eq!(m.run(StopCondition::AtStep(10)).unwrap(), VmExit::StepLimit);
        assert_eq!(m.step_count(), 10);
        assert_eq!(m.run(StopCondition::AtStep(25)).unwrap(), VmExit::StepLimit);
        assert_eq!(m.step_count(), 25);
    }

    #[test]
    fn clock_read_protocol() {
        let mut m = machine_with_program("clock r1\nhalt");
        assert_eq!(m.run(StopCondition::Unbounded).unwrap(), VmExit::ClockRead);
        assert!(m.is_waiting_clock());
        // Running while waiting is an error.
        assert_eq!(
            m.run(StopCondition::Unbounded).unwrap_err(),
            VmError::PendingHostResponse
        );
        m.provide_clock(777).unwrap();
        assert_eq!(m.run(StopCondition::Unbounded).unwrap(), VmExit::Halted);
        // Unsolicited clock value is rejected.
        assert_eq!(
            m.provide_clock(1).unwrap_err(),
            VmError::UnexpectedHostResponse
        );
    }

    #[test]
    fn send_packet_surfaces_as_net_tx() {
        let mut m = machine_with_program(
            r#"
                movi r1, payload
                movi r2, 4
                send r1, r2
                halt
            payload:
                .ascii "ping"
            "#,
        );
        assert_eq!(
            m.run(StopCondition::Unbounded).unwrap(),
            VmExit::NetTx(b"ping".to_vec())
        );
        assert_eq!(m.devices().nic.tx_packets, 1);
        assert_eq!(m.run(StopCondition::Unbounded).unwrap(), VmExit::Halted);
    }

    #[test]
    fn packet_injection_and_echo() {
        let mut m = machine_with_program(
            r"
                movi r1, 0x8000      ; buffer
                movi r2, 256         ; max len
            wait:
                recv r0, r1, r2
                cmp r0, r3           ; r3 == 0
                jne got
                idle
                jmp wait
            got:
                send r1, r0
                halt
            ",
        );
        // The guest idles until a packet arrives.
        assert_eq!(m.run(StopCondition::Unbounded).unwrap(), VmExit::Idle);
        let stamp = m.inject_packet(b"hello avm".to_vec());
        assert_eq!(stamp, m.step_count());
        assert_eq!(
            m.run(StopCondition::Unbounded).unwrap(),
            VmExit::NetTx(b"hello avm".to_vec())
        );
    }

    #[test]
    fn deterministic_replay_of_identical_inputs() {
        let src = r"
                movi r1, 0x8000
                movi r2, 256
            loop:
                recv r0, r1, r2
                cmp r0, r3
                jne got
                clock r4
                jmp loop
            got:
                send r1, r0
                halt
            ";
        let run_once =
            |clock_values: &[u64], inject_at: u64, payload: &[u8]| -> (Vec<VmExit>, u64, Digest) {
                let mut m = machine_with_program(src);
                let mut exits = Vec::new();
                let mut clocks = clock_values.iter().copied();
                let mut injected = false;
                loop {
                    let e = m.run(StopCondition::Unbounded).unwrap();
                    exits.push(e.clone());
                    match e {
                        VmExit::ClockRead => {
                            if !injected && m.step_count() >= inject_at {
                                m.inject_packet(payload.to_vec());
                                injected = true;
                            }
                            m.provide_clock(clocks.next().unwrap_or(0)).unwrap();
                        }
                        VmExit::Halted => break,
                        _ => {}
                    }
                }
                (exits, m.step_count(), m.state_digest())
            };
        let a = run_once(&[5, 10, 15, 20, 25, 30], 12, b"data");
        let b = run_once(&[5, 10, 15, 20, 25, 30], 12, b"data");
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        // Different inputs produce a different execution.
        let c = run_once(&[5, 10, 15, 20, 25, 30, 35, 40], 30, b"data");
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn state_version_tracks_header_state_mutations() {
        let mut m = machine_with_program("idle\nhalt");
        let v0 = m.state_version();
        // Pure memory writes do not bump the version (pages have dirty bits).
        m.memory_mut().write_u8(0x900, 1).unwrap();
        assert_eq!(m.state_version(), v0);
        // Clearing dirty tracking is bookkeeping, not a state change.
        m.clear_dirty_tracking();
        assert_eq!(m.state_version(), v0);
        // Anything that can touch CPU/device/control state bumps it.
        m.inject_packet(vec![1]);
        let v1 = m.state_version();
        assert!(v1 > v0);
        m.run(StopCondition::Unbounded).unwrap();
        assert!(m.state_version() > v1);
        let v2 = m.state_version();
        m.devices_mut();
        assert!(m.state_version() > v2);
    }

    #[test]
    fn state_digest_changes_with_memory() {
        let mut m = machine_with_program("halt");
        let before = m.state_digest();
        m.memory_mut().write_u8(0x9000, 1).unwrap();
        assert_ne!(before, m.state_digest());
    }

    #[test]
    fn cpu_state_save_restore() {
        let mut m = machine_with_program("addi r0, 5\naddi r0, 7\nhalt");
        m.run(StopCondition::AtStep(1)).unwrap();
        let cpu = m.save_cpu_state();
        let digest_mid = m.state_digest();
        m.run(StopCondition::Unbounded).unwrap();
        // Restore and confirm the digest matches the mid-execution state.
        m.restore_cpu_state(&cpu).unwrap();
        m.set_control_state(1, false, false);
        assert_eq!(m.state_digest(), digest_mid);
    }

    #[test]
    fn console_output_exit() {
        let mut m = machine_with_program(
            r#"
                movi r1, msg
                movi r2, 2
                out r1, r2
                halt
            msg:
                .ascii "ok"
            "#,
        );
        assert_eq!(
            m.run(StopCondition::Unbounded).unwrap(),
            VmExit::ConsoleOut(b"ok".to_vec())
        );
    }
}
