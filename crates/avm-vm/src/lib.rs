//! Deterministic virtual machine substrate for the AVM reproduction.
//!
//! The paper's prototype is built on VMware Workstation: a VMM that can
//! execute an unmodified x86 guest, record every nondeterministic input
//! (network packets, timer/clock reads, local input events) together with its
//! precise position in the instruction stream, and later replay the guest
//! deterministically from a snapshot.  This crate provides the equivalent
//! machine model for the reproduction:
//!
//! * [`mem::GuestMemory`] — paged guest RAM with dirty-page tracking (the
//!   basis for incremental snapshots),
//! * [`devices`] — a virtual clock, NIC, block disk, local-input device and
//!   console behind a single [`devices::DeviceState`],
//! * [`bytecode`] — a small RISC-like ISA, an assembler and an interpreting
//!   CPU, for guests expressed as machine code,
//! * [`native`] — deterministic "guest kernels" written in Rust against the
//!   same device interface, used for the richer workloads (the game and the
//!   database server),
//! * [`machine::Machine`] — ties the pieces together and exposes the
//!   hypervisor interface: run-until-exit, nondeterministic-input delivery
//!   and precise, step-stamped asynchronous injection.
//!
//! Determinism contract: given the same [`image::VmImage`] and the same
//! sequence of injected inputs at the same step counts, a `Machine` produces
//! bit-identical state and the same sequence of [`exit::VmExit`]s.  The AVMM
//! (in `avm-core`) records exactly that information and replays it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod devices;
pub mod error;
pub mod exit;
pub mod image;
pub mod machine;
pub mod mem;
pub mod native;
pub mod packet;

pub use error::VmError;
pub use exit::{StopCondition, VmExit};
pub use image::{GuestRegistry, ImageKind, VmImage};
pub use machine::{Machine, MachineConfig};
pub use mem::{GuestMemory, CHUNKS_PER_PAGE, CHUNK_SIZE, PAGE_SIZE};
pub use native::{GuestCtx, GuestKernel, GuestStep};
