//! The interpreting CPU for the bytecode ISA.

use crate::devices::DeviceState;
use crate::error::{VmError, VmResult};
use crate::exit::VmExit;
use crate::machine::{CpuAction, CpuCore};
use crate::mem::GuestMemory;

use super::isa::{Instruction, Reg, NUM_REGS};

/// Longest possible instruction encoding, in bytes.
const MAX_INSTRUCTION_LEN: usize = 11;

/// Register index conventionally used as the stack pointer.
pub const STACK_POINTER: usize = 15;

/// Interpreting CPU: 16 general-purpose 64-bit registers, a program counter
/// and a single comparison flag.
#[derive(Debug, Clone)]
pub struct BytecodeCpu {
    regs: [u64; NUM_REGS],
    pc: u64,
    /// Result of the last `cmp`: -1 (less), 0 (equal), 1 (greater).
    flag: i8,
    halted: bool,
}

impl BytecodeCpu {
    /// Creates a CPU with the program counter at `entry` and cleared registers.
    pub fn new(entry: u64) -> BytecodeCpu {
        BytecodeCpu {
            regs: [0u64; NUM_REGS],
            pc: entry,
            flag: 0,
            halted: false,
        }
    }

    /// Checks that the entry point lies inside the loaded code region.
    pub fn validate_entry(&self, entry: u64, load_addr: u64, code_len: u64) -> VmResult<()> {
        if entry < load_addr || entry >= load_addr + code_len.max(1) {
            return Err(VmError::InvalidImage(format!(
                "entry {entry:#x} outside code [{load_addr:#x}, {:#x})",
                load_addr + code_len
            )));
        }
        Ok(())
    }

    /// Current program counter (for tests and diagnostics).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads a register value (for tests and diagnostics).
    pub fn reg(&self, idx: usize) -> u64 {
        self.regs[idx]
    }

    fn fetch(&self, mem: &mut GuestMemory) -> VmResult<(Instruction, u64)> {
        let available = (mem.size().saturating_sub(self.pc)) as usize;
        let window = available.min(MAX_INSTRUCTION_LEN);
        if window == 0 {
            return Err(VmError::IllegalInstruction {
                pc: self.pc,
                opcode: 0xff,
            });
        }
        let bytes = mem.read_vec(self.pc, window)?;
        // Decode relative to the window, reporting absolute pc in errors.
        Instruction::decode(&bytes, 0).map_err(|e| match e {
            VmError::IllegalInstruction { opcode, .. } => VmError::IllegalInstruction {
                pc: self.pc,
                opcode,
            },
            other => other,
        })
    }

    fn binop(&mut self, rd: Reg, rs: Reg, f: impl Fn(u64, u64) -> u64) {
        self.regs[rd.index()] = f(self.regs[rd.index()], self.regs[rs.index()]);
    }
}

impl CpuCore for BytecodeCpu {
    fn step(&mut self, mem: &mut GuestMemory, dev: &mut DeviceState) -> VmResult<CpuAction> {
        if self.halted {
            return Err(VmError::Halted);
        }
        let (ins, len) = self.fetch(mem)?;
        let pc = self.pc;
        let next = pc + len;
        let mut outputs: Vec<VmExit> = Vec::new();

        match ins {
            Instruction::Halt => {
                self.halted = true;
                return Ok(CpuAction::Pause {
                    exit: VmExit::Halted,
                    outputs,
                });
            }
            Instruction::MovImm(rd, imm) => self.regs[rd.index()] = imm,
            Instruction::Mov(rd, rs) => self.regs[rd.index()] = self.regs[rs.index()],
            Instruction::Add(rd, rs) => self.binop(rd, rs, |a, b| a.wrapping_add(b)),
            Instruction::Sub(rd, rs) => self.binop(rd, rs, |a, b| a.wrapping_sub(b)),
            Instruction::Mul(rd, rs) => self.binop(rd, rs, |a, b| a.wrapping_mul(b)),
            Instruction::Div(rd, rs) => {
                if self.regs[rs.index()] == 0 {
                    return Err(VmError::DivisionByZero { pc });
                }
                self.binop(rd, rs, |a, b| a / b);
            }
            Instruction::Mod(rd, rs) => {
                if self.regs[rs.index()] == 0 {
                    return Err(VmError::DivisionByZero { pc });
                }
                self.binop(rd, rs, |a, b| a % b);
            }
            Instruction::And(rd, rs) => self.binop(rd, rs, |a, b| a & b),
            Instruction::Or(rd, rs) => self.binop(rd, rs, |a, b| a | b),
            Instruction::Xor(rd, rs) => self.binop(rd, rs, |a, b| a ^ b),
            Instruction::Shl(rd, rs) => self.binop(rd, rs, |a, b| a.wrapping_shl((b & 63) as u32)),
            Instruction::Shr(rd, rs) => self.binop(rd, rs, |a, b| a.wrapping_shr((b & 63) as u32)),
            Instruction::AddImm(rd, imm) => {
                self.regs[rd.index()] = self.regs[rd.index()].wrapping_add(imm)
            }
            Instruction::Cmp(r1, r2) => {
                let (a, b) = (self.regs[r1.index()], self.regs[r2.index()]);
                self.flag = match a.cmp(&b) {
                    core::cmp::Ordering::Less => -1,
                    core::cmp::Ordering::Equal => 0,
                    core::cmp::Ordering::Greater => 1,
                };
            }
            Instruction::Jmp(a) => {
                self.pc = a;
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Jeq(a) => {
                self.pc = if self.flag == 0 { a } else { next };
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Jne(a) => {
                self.pc = if self.flag != 0 { a } else { next };
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Jlt(a) => {
                self.pc = if self.flag < 0 { a } else { next };
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Jge(a) => {
                self.pc = if self.flag >= 0 { a } else { next };
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Load(rd, rs, off) => {
                let addr = self.regs[rs.index()].wrapping_add(off);
                self.regs[rd.index()] = mem.read_u64(addr)?;
            }
            Instruction::Store(rv, ra, off) => {
                let addr = self.regs[ra.index()].wrapping_add(off);
                mem.write_u64(addr, self.regs[rv.index()])?;
            }
            Instruction::LoadB(rd, rs, off) => {
                let addr = self.regs[rs.index()].wrapping_add(off);
                self.regs[rd.index()] = mem.read_u8(addr)? as u64;
            }
            Instruction::StoreB(rv, ra, off) => {
                let addr = self.regs[ra.index()].wrapping_add(off);
                mem.write_u8(addr, self.regs[rv.index()] as u8)?;
            }
            Instruction::Push(rs) => {
                let sp = self.regs[STACK_POINTER].wrapping_sub(8);
                mem.write_u64(sp, self.regs[rs.index()])
                    .map_err(|_| VmError::StackFault { pc })?;
                self.regs[STACK_POINTER] = sp;
            }
            Instruction::Pop(rd) => {
                let sp = self.regs[STACK_POINTER];
                let v = mem.read_u64(sp).map_err(|_| VmError::StackFault { pc })?;
                self.regs[rd.index()] = v;
                self.regs[STACK_POINTER] = sp.wrapping_add(8);
            }
            Instruction::Call(a) => {
                let sp = self.regs[STACK_POINTER].wrapping_sub(8);
                mem.write_u64(sp, next)
                    .map_err(|_| VmError::StackFault { pc })?;
                self.regs[STACK_POINTER] = sp;
                self.pc = a;
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Ret => {
                let sp = self.regs[STACK_POINTER];
                let ret = mem.read_u64(sp).map_err(|_| VmError::StackFault { pc })?;
                self.regs[STACK_POINTER] = sp.wrapping_add(8);
                self.pc = ret;
                return Ok(CpuAction::Ran { cost: 1, outputs });
            }
            Instruction::Clock(rd) => match dev.clock.guest_read() {
                Some(v) => self.regs[rd.index()] = v,
                None => {
                    // Do not advance the pc; the read retries once the
                    // hypervisor provides a value.
                    return Ok(CpuAction::Pause {
                        exit: VmExit::ClockRead,
                        outputs,
                    });
                }
            },
            Instruction::Send(rp, rl) => {
                let ptr = self.regs[rp.index()];
                let len = self.regs[rl.index()] as usize;
                let data = mem.read_vec(ptr, len)?;
                dev.nic.note_tx(data.len());
                outputs.push(VmExit::NetTx(data));
            }
            Instruction::Recv(rd, rp, rm) => {
                let ptr = self.regs[rp.index()];
                let max = self.regs[rm.index()] as usize;
                match dev.nic.guest_recv() {
                    Some(pkt) => {
                        let n = pkt.len().min(max);
                        mem.write(ptr, &pkt[..n])?;
                        self.regs[rd.index()] = n as u64;
                    }
                    None => self.regs[rd.index()] = 0,
                }
            }
            Instruction::Input(rc, rv) => match dev.input.guest_poll() {
                Some(ev) => {
                    self.regs[rc.index()] = ((ev.device as u64) << 32) | ev.code as u64;
                    self.regs[rv.index()] = ev.value as u64;
                }
                None => {
                    self.regs[rc.index()] = u64::MAX;
                    self.regs[rv.index()] = 0;
                }
            },
            Instruction::Out(rp, rl) => {
                let ptr = self.regs[rp.index()];
                let len = self.regs[rl.index()] as usize;
                let data = mem.read_vec(ptr, len)?;
                dev.console.write(&data);
                outputs.push(VmExit::ConsoleOut(data));
            }
            Instruction::DiskRead(ro, rp, rl) => {
                let off = self.regs[ro.index()];
                let ptr = self.regs[rp.index()];
                let len = self.regs[rl.index()] as usize;
                let mut buf = vec![0u8; len];
                dev.disk.read(off, &mut buf)?;
                mem.write(ptr, &buf)?;
            }
            Instruction::DiskWrite(ro, rp, rl) => {
                let off = self.regs[ro.index()];
                let ptr = self.regs[rp.index()];
                let len = self.regs[rl.index()] as usize;
                let data = mem.read_vec(ptr, len)?;
                dev.disk.write(off, &data)?;
            }
            Instruction::Idle => {
                outputs.push(VmExit::Idle);
            }
        }
        self.pc = next;
        Ok(CpuAction::Ran { cost: 1, outputs })
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(NUM_REGS * 8 + 8 + 2);
        for r in self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&self.pc.to_le_bytes());
        out.push(self.flag as u8);
        out.push(u8::from(self.halted));
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> VmResult<()> {
        let expected = NUM_REGS * 8 + 8 + 2;
        if bytes.len() != expected {
            return Err(VmError::CorruptState("bytecode cpu state length"));
        }
        for i in 0..NUM_REGS {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            self.regs[i] = u64::from_le_bytes(b);
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[NUM_REGS * 8..NUM_REGS * 8 + 8]);
        self.pc = u64::from_le_bytes(b);
        self.flag = bytes[NUM_REGS * 8 + 8] as i8;
        self.halted = bytes[NUM_REGS * 8 + 9] != 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::assemble;

    fn run_to_halt(src: &str) -> (BytecodeCpu, GuestMemory, DeviceState) {
        let code = assemble(src, 0).unwrap();
        let mut mem = GuestMemory::new(64 * 1024);
        mem.write(0, &code).unwrap();
        let mut dev = DeviceState::new(&[0u8; 8192]);
        let mut cpu = BytecodeCpu::new(0);
        for _ in 0..100_000 {
            match cpu.step(&mut mem, &mut dev).unwrap() {
                CpuAction::Pause {
                    exit: VmExit::Halted,
                    ..
                } => {
                    return (cpu, mem, dev);
                }
                CpuAction::Pause {
                    exit: VmExit::ClockRead,
                    ..
                } => {
                    dev.clock.provide(42).unwrap();
                }
                _ => {}
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_and_logic() {
        let (cpu, _, _) = run_to_halt(
            r"
                movi r0, 10
                movi r1, 3
                mov r2, r0
                add r2, r1      ; 13
                mov r3, r0
                sub r3, r1      ; 7
                mov r4, r0
                mul r4, r1      ; 30
                mov r5, r0
                div r5, r1      ; 3
                mov r6, r0
                mod r6, r1      ; 1
                movi r7, 0xf0
                movi r8, 0x0f
                mov r9, r7
                or  r9, r8      ; 0xff
                mov r10, r7
                and r10, r8     ; 0
                mov r11, r7
                xor r11, r8     ; 0xff
                movi r12, 1
                movi r13, 4
                shl r12, r13    ; 16
                halt
            ",
        );
        assert_eq!(cpu.reg(2), 13);
        assert_eq!(cpu.reg(3), 7);
        assert_eq!(cpu.reg(4), 30);
        assert_eq!(cpu.reg(5), 3);
        assert_eq!(cpu.reg(6), 1);
        assert_eq!(cpu.reg(9), 0xff);
        assert_eq!(cpu.reg(10), 0);
        assert_eq!(cpu.reg(11), 0xff);
        assert_eq!(cpu.reg(12), 16);
    }

    #[test]
    fn loop_with_branches() {
        // Sum 1..=10 into r1.
        let (cpu, _, _) = run_to_halt(
            r"
                movi r0, 1       ; counter
                movi r1, 0       ; sum
                movi r2, 11      ; bound
            loop:
                add r1, r0
                addi r0, 1
                cmp r0, r2
                jlt loop
                halt
            ",
        );
        assert_eq!(cpu.reg(1), 55);
    }

    #[test]
    fn call_ret_and_stack() {
        let (cpu, _, _) = run_to_halt(
            r"
                movi r15, 0x8000    ; stack pointer
                movi r0, 5
                call double
                call double
                halt
            double:
                add r0, r0
                ret
            ",
        );
        assert_eq!(cpu.reg(0), 20);
        assert_eq!(cpu.reg(STACK_POINTER), 0x8000);
    }

    #[test]
    fn push_pop() {
        let (cpu, _, _) = run_to_halt(
            r"
                movi r15, 0x8000
                movi r0, 111
                movi r1, 222
                push r0
                push r1
                pop r2
                pop r3
                halt
            ",
        );
        assert_eq!(cpu.reg(2), 222);
        assert_eq!(cpu.reg(3), 111);
    }

    #[test]
    fn memory_loads_and_stores() {
        let (cpu, mut mem, _) = run_to_halt(
            r"
                movi r1, 0x4000
                movi r2, 0xabcd
                store r2, r1, 8
                load r3, r1, 8
                movi r4, 0x42
                storeb r4, r1
                loadb r5, r1
                halt
            ",
        );
        assert_eq!(cpu.reg(3), 0xabcd);
        assert_eq!(cpu.reg(5), 0x42);
        assert_eq!(mem.read_u64(0x4008).unwrap(), 0xabcd);
    }

    #[test]
    fn clock_read_pauses_and_resumes() {
        let (cpu, _, dev) = run_to_halt("clock r7\nhalt");
        assert_eq!(cpu.reg(7), 42);
        assert_eq!(dev.clock.reads_served, 1);
    }

    #[test]
    fn disk_roundtrip_through_guest() {
        let (_, mut mem, dev) = run_to_halt(
            r#"
                movi r1, src
                movi r2, 0          ; disk offset
                movi r3, 9          ; length
                diskwr r2, r1, r3
                movi r4, 0x5000
                diskrd r2, r4, r3
                halt
            src:
                .ascii "disk-data"
            "#,
        );
        assert_eq!(mem.read_vec(0x5000, 9).unwrap(), b"disk-data");
        assert_eq!(dev.disk.writes, 1);
        assert_eq!(dev.disk.reads, 1);
    }

    #[test]
    fn input_polling() {
        let code = assemble("input r1, r2\ninput r3, r4\nhalt", 0).unwrap();
        let mut mem = GuestMemory::new(4096);
        mem.write(0, &code).unwrap();
        let mut dev = DeviceState::new(b"");
        dev.input.inject(crate::devices::InputEvent {
            device: 1,
            code: 0x20,
            value: 1,
        });
        let mut cpu = BytecodeCpu::new(0);
        cpu.step(&mut mem, &mut dev).unwrap();
        cpu.step(&mut mem, &mut dev).unwrap();
        assert_eq!(cpu.reg(1), (1u64 << 32) | 0x20);
        assert_eq!(cpu.reg(2), 1);
        assert_eq!(cpu.reg(3), u64::MAX);
    }

    #[test]
    fn division_by_zero_faults() {
        let code = assemble("movi r0, 1\nmovi r1, 0\ndiv r0, r1\nhalt", 0).unwrap();
        let mut mem = GuestMemory::new(4096);
        mem.write(0, &code).unwrap();
        let mut dev = DeviceState::new(b"");
        let mut cpu = BytecodeCpu::new(0);
        cpu.step(&mut mem, &mut dev).unwrap();
        cpu.step(&mut mem, &mut dev).unwrap();
        assert_eq!(
            cpu.step(&mut mem, &mut dev).unwrap_err(),
            VmError::DivisionByZero { pc: 20 }
        );
    }

    #[test]
    fn stack_fault_detected() {
        // Push with sp == 0 wraps around and faults.
        let code = assemble("movi r15, 2\npush r0\nhalt", 0).unwrap();
        let mut mem = GuestMemory::new(4096);
        mem.write(0, &code).unwrap();
        let mut dev = DeviceState::new(b"");
        let mut cpu = BytecodeCpu::new(0);
        cpu.step(&mut mem, &mut dev).unwrap();
        assert!(matches!(
            cpu.step(&mut mem, &mut dev).unwrap_err(),
            VmError::StackFault { .. }
        ));
    }

    #[test]
    fn state_save_restore_roundtrip() {
        let (cpu, _, _) = run_to_halt("movi r3, 99\nhalt");
        let state = cpu.save_state();
        let mut restored = BytecodeCpu::new(0);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.reg(3), 99);
        assert_eq!(restored.save_state(), state);
        assert!(restored.restore_state(&state[..10]).is_err());
    }

    #[test]
    fn stepping_a_halted_cpu_is_an_error() {
        let (mut cpu, mut mem, mut dev) = run_to_halt("halt");
        assert_eq!(cpu.step(&mut mem, &mut dev).unwrap_err(), VmError::Halted);
    }

    #[test]
    fn entry_validation() {
        let cpu = BytecodeCpu::new(0);
        assert!(cpu.validate_entry(0, 0, 100).is_ok());
        assert!(cpu.validate_entry(50, 0, 100).is_ok());
        assert!(cpu.validate_entry(100, 0, 100).is_err());
        assert!(cpu.validate_entry(5, 10, 100).is_err());
    }
}
