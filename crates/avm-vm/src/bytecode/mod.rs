//! The bytecode guest architecture: a small RISC-like ISA, an assembler and
//! an interpreting CPU.
//!
//! Bytecode guests are the closest analogue in this reproduction to the
//! paper's "unmodified binary images": the auditor only needs the program
//! bytes (as part of the VM image), not its source, and the CPU's step
//! counter provides the instruction-precise positions at which asynchronous
//! inputs are re-injected during replay.

pub mod asm;
pub mod cpu;
pub mod isa;

pub use asm::{assemble, AsmError};
pub use cpu::BytecodeCpu;
pub use isa::{Instruction, Reg, NUM_REGS};
