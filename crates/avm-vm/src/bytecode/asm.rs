//! A small two-pass assembler for the bytecode ISA.
//!
//! The assembler exists so that tests, examples and the cheat catalogue can
//! express guest programs readably.  Syntax, one statement per line:
//!
//! ```text
//! ; comment
//! label:
//!     movi r0, 42          ; immediates may be decimal, 0x hex, or a label
//!     addi r0, 1
//!     cmp  r0, r1
//!     jlt  label
//!     send r2, r3
//!     halt
//! buffer:
//!     .space 64            ; reserve 64 zero bytes
//!     .word 0xdeadbeef     ; a little-endian u64
//!     .ascii "hello"       ; raw bytes
//! ```
//!
//! All label references are absolute addresses (`origin` + offset).

use std::collections::HashMap;

use super::isa::{Instruction, Reg};

/// Assembly errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Intermediate item produced by the first pass.
enum Item {
    Ins {
        line: usize,
        mnemonic: String,
        operands: Vec<String>,
    },
    Bytes(Vec<u8>),
}

/// Assembles `source` into bytecode loaded at absolute address `origin`.
pub fn assemble(source: &str, origin: u64) -> Result<Vec<u8>, AsmError> {
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();
    let mut offset: u64 = 0;

    // First pass: tokenize, compute sizes, record label addresses.
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let mut rest = line.as_str();
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let candidate = head.trim();
            if candidate.is_empty() || !is_identifier(candidate) {
                break;
            }
            if labels
                .insert(candidate.to_string(), origin + offset)
                .is_some()
            {
                return Err(err(line_no, format!("duplicate label '{candidate}'")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            let bytes = assemble_directive(directive, line_no)?;
            offset += bytes.len() as u64;
            items.push(Item::Bytes(bytes));
            continue;
        }
        let (mnemonic, operands) = split_instruction(rest);
        let size = instruction_size(&mnemonic, line_no)?;
        offset += size;
        items.push(Item::Ins {
            line: line_no,
            mnemonic,
            operands,
        });
    }

    // Second pass: encode.
    let mut code = Vec::with_capacity(offset as usize);
    for item in items {
        match item {
            Item::Bytes(b) => code.extend_from_slice(&b),
            Item::Ins {
                line,
                mnemonic,
                operands,
            } => {
                let ins = encode_instruction(&mnemonic, &operands, &labels, line)?;
                ins.encode(&mut code);
            }
        }
    }
    Ok(code)
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_instruction(s: &str) -> (String, Vec<String>) {
    let mut parts = s.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("").to_ascii_lowercase();
    let operands = parts
        .next()
        .map(|ops| {
            ops.split(',')
                .map(|o| o.trim().to_string())
                .filter(|o| !o.is_empty())
                .collect()
        })
        .unwrap_or_default();
    (mnemonic, operands)
}

fn assemble_directive(directive: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let (name, arg) = match directive.find(char::is_whitespace) {
        Some(i) => (&directive[..i], directive[i..].trim()),
        None => (directive, ""),
    };
    match name {
        "space" => {
            let n: usize = arg
                .parse()
                .map_err(|_| err(line, format!("invalid .space size '{arg}'")))?;
            Ok(vec![0u8; n])
        }
        "word" => {
            let v = parse_number(arg).ok_or_else(|| err(line, format!("invalid .word '{arg}'")))?;
            Ok(v.to_le_bytes().to_vec())
        }
        "byte" => {
            let v = parse_number(arg).ok_or_else(|| err(line, format!("invalid .byte '{arg}'")))?;
            if v > 255 {
                return Err(err(
                    line,
                    format!(".byte value {v} does not fit in one byte"),
                ));
            }
            Ok(vec![v as u8])
        }
        "ascii" => {
            let trimmed = arg.trim();
            if trimmed.len() < 2 || !trimmed.starts_with('"') || !trimmed.ends_with('"') {
                return Err(err(line, ".ascii requires a double-quoted string"));
            }
            Ok(trimmed.as_bytes()[1..trimmed.len() - 1].to_vec())
        }
        other => Err(err(line, format!("unknown directive '.{other}'"))),
    }
}

fn parse_number(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Encoded length, in bytes, of each mnemonic.
fn instruction_size(mnemonic: &str, line: usize) -> Result<u64, AsmError> {
    let size = match mnemonic {
        "halt" | "ret" | "idle" => 1,
        "push" | "pop" | "clock" => 2,
        "mov" | "add" | "sub" | "mul" | "div" | "mod" | "and" | "or" | "xor" | "shl" | "shr"
        | "cmp" | "send" | "input" | "out" => 3,
        "recv" | "diskrd" | "diskwr" => 4,
        "jmp" | "jeq" | "jne" | "jlt" | "jge" | "call" => 9,
        "movi" | "addi" => 10,
        "load" | "store" | "loadb" | "storeb" => 11,
        other => return Err(err(line, format!("unknown instruction '{other}'"))),
    };
    Ok(size)
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let lower = s.to_ascii_lowercase();
    let idx = lower
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::checked);
    idx.ok_or_else(|| err(line, format!("invalid register '{s}'")))
}

fn parse_imm(s: &str, labels: &HashMap<String, u64>, line: usize) -> Result<u64, AsmError> {
    if let Some(v) = parse_number(s) {
        return Ok(v);
    }
    labels
        .get(s)
        .copied()
        .ok_or_else(|| err(line, format!("unknown label or immediate '{s}'")))
}

fn expect_operands(
    operands: &[String],
    n: usize,
    mnemonic: &str,
    line: usize,
) -> Result<(), AsmError> {
    if operands.len() != n {
        return Err(err(
            line,
            format!(
                "'{mnemonic}' expects {n} operands, found {}",
                operands.len()
            ),
        ));
    }
    Ok(())
}

fn encode_instruction(
    mnemonic: &str,
    operands: &[String],
    labels: &HashMap<String, u64>,
    line: usize,
) -> Result<Instruction, AsmError> {
    let reg = |i: usize| parse_reg(&operands[i], line);
    let imm = |i: usize| parse_imm(&operands[i], labels, line);
    let rr = |f: fn(Reg, Reg) -> Instruction| -> Result<Instruction, AsmError> {
        expect_operands(operands, 2, mnemonic, line)?;
        Ok(f(reg(0)?, reg(1)?))
    };
    let rrr = |f: fn(Reg, Reg, Reg) -> Instruction| -> Result<Instruction, AsmError> {
        expect_operands(operands, 3, mnemonic, line)?;
        Ok(f(reg(0)?, reg(1)?, reg(2)?))
    };
    let jump = |f: fn(u64) -> Instruction| -> Result<Instruction, AsmError> {
        expect_operands(operands, 1, mnemonic, line)?;
        Ok(f(imm(0)?))
    };
    let memop = |f: fn(Reg, Reg, u64) -> Instruction| -> Result<Instruction, AsmError> {
        if operands.len() == 2 {
            Ok(f(reg(0)?, reg(1)?, 0))
        } else {
            expect_operands(operands, 3, mnemonic, line)?;
            Ok(f(reg(0)?, reg(1)?, imm(2)?))
        }
    };
    match mnemonic {
        "halt" => Ok(Instruction::Halt),
        "ret" => Ok(Instruction::Ret),
        "idle" => Ok(Instruction::Idle),
        "movi" => {
            expect_operands(operands, 2, mnemonic, line)?;
            Ok(Instruction::MovImm(reg(0)?, imm(1)?))
        }
        "addi" => {
            expect_operands(operands, 2, mnemonic, line)?;
            Ok(Instruction::AddImm(reg(0)?, imm(1)?))
        }
        "mov" => rr(Instruction::Mov),
        "add" => rr(Instruction::Add),
        "sub" => rr(Instruction::Sub),
        "mul" => rr(Instruction::Mul),
        "div" => rr(Instruction::Div),
        "mod" => rr(Instruction::Mod),
        "and" => rr(Instruction::And),
        "or" => rr(Instruction::Or),
        "xor" => rr(Instruction::Xor),
        "shl" => rr(Instruction::Shl),
        "shr" => rr(Instruction::Shr),
        "cmp" => rr(Instruction::Cmp),
        "send" => rr(Instruction::Send),
        "input" => rr(Instruction::Input),
        "out" => rr(Instruction::Out),
        "recv" => rrr(Instruction::Recv),
        "diskrd" => rrr(Instruction::DiskRead),
        "diskwr" => rrr(Instruction::DiskWrite),
        "jmp" => jump(Instruction::Jmp),
        "jeq" => jump(Instruction::Jeq),
        "jne" => jump(Instruction::Jne),
        "jlt" => jump(Instruction::Jlt),
        "jge" => jump(Instruction::Jge),
        "call" => jump(Instruction::Call),
        "load" => memop(Instruction::Load),
        "store" => memop(Instruction::Store),
        "loadb" => memop(Instruction::LoadB),
        "storeb" => memop(Instruction::StoreB),
        "push" => {
            expect_operands(operands, 1, mnemonic, line)?;
            Ok(Instruction::Push(reg(0)?))
        }
        "pop" => {
            expect_operands(operands, 1, mnemonic, line)?;
            Ok(Instruction::Pop(reg(0)?))
        }
        "clock" => {
            expect_operands(operands, 1, mnemonic, line)?;
            Ok(Instruction::Clock(reg(0)?))
        }
        other => Err(err(line, format!("unknown instruction '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::isa::Instruction;

    #[test]
    fn simple_program_assembles() {
        let src = r"
            ; add two numbers and halt
            start:
                movi r0, 40
                movi r1, 2
                add r0, r1
                halt
        ";
        let code = assemble(src, 0).unwrap();
        let (ins, len) = Instruction::decode(&code, 0).unwrap();
        assert_eq!(ins, Instruction::MovImm(Reg(0), 40));
        let (ins, _) = Instruction::decode(&code, len + 10 + 3).unwrap();
        assert_eq!(ins, Instruction::Halt);
    }

    #[test]
    fn labels_resolve_with_origin() {
        let src = r"
            loop:
                addi r0, 1
                jmp loop
        ";
        let code = assemble(src, 0x1000).unwrap();
        // The jmp target must be the origin.
        let (ins, _) = Instruction::decode(&code, 10).unwrap();
        assert_eq!(ins, Instruction::Jmp(0x1000));
    }

    #[test]
    fn forward_references_resolve() {
        let src = r"
                jmp end
                halt
            end:
                halt
        ";
        let code = assemble(src, 0).unwrap();
        let (ins, _) = Instruction::decode(&code, 0).unwrap();
        assert_eq!(ins, Instruction::Jmp(10)); // 9 (jmp) + 1 (halt)
    }

    #[test]
    fn directives_emit_bytes() {
        let src = r#"
            data:
                .ascii "hi"
                .word 0x0102
                .space 3
                .byte 0xfe
        "#;
        let code = assemble(src, 0).unwrap();
        assert_eq!(&code[..2], b"hi");
        assert_eq!(code[2], 0x02);
        assert_eq!(code[3], 0x01);
        assert_eq!(code.len(), 2 + 8 + 3 + 1);
        assert_eq!(*code.last().unwrap(), 0xfe);
        assert!(assemble(".byte 300", 0).is_err());
        assert!(assemble(".byte x", 0).is_err());
    }

    #[test]
    fn label_as_immediate() {
        let src = r#"
                movi r1, message
                movi r2, 5
                out r1, r2
                halt
            message:
                .ascii "hello"
        "#;
        let code = assemble(src, 0x2000).unwrap();
        let (ins, _) = Instruction::decode(&code, 0).unwrap();
        // message follows movi(10)+movi(10)+out(3)+halt(1) = 24 bytes after origin.
        assert_eq!(ins, Instruction::MovImm(Reg(1), 0x2000 + 24));
    }

    #[test]
    fn hex_and_decimal_immediates() {
        let code = assemble("movi r0, 0xff\nmovi r1, 255\nhalt", 0).unwrap();
        let (a, _) = Instruction::decode(&code, 0).unwrap();
        let (b, _) = Instruction::decode(&code, 10).unwrap();
        assert_eq!(a, Instruction::MovImm(Reg(0), 255));
        assert_eq!(b, Instruction::MovImm(Reg(1), 255));
    }

    #[test]
    fn errors_report_line_numbers() {
        let e = assemble("movi r0, 1\nbogus r1, r2\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\nhalt\na:\nhalt", 0).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("jmp nowhere", 0).unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn invalid_register_rejected() {
        assert!(assemble("movi r16, 1", 0).is_err());
        assert!(assemble("mov rx, r1", 0).is_err());
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble("add r1", 0).is_err());
        assert!(assemble("halt r1, r2", 0).is_ok() || assemble("halt", 0).is_ok());
        assert!(assemble("recv r1, r2", 0).is_err());
    }

    #[test]
    fn load_store_with_and_without_offset() {
        let code = assemble("load r1, r2\nload r1, r2, 16\nstore r1, r2, 8\nhalt", 0).unwrap();
        let (a, _) = Instruction::decode(&code, 0).unwrap();
        let (b, _) = Instruction::decode(&code, 11).unwrap();
        assert_eq!(a, Instruction::Load(Reg(1), Reg(2), 0));
        assert_eq!(b, Instruction::Load(Reg(1), Reg(2), 16));
    }
}
