//! Instruction set definition, encoding and decoding.
//!
//! Instructions are byte-aligned and variable length: a one-byte opcode
//! followed by fixed-width operands (register indices are one byte,
//! immediates and addresses are little-endian `u64`).

use crate::error::{VmError, VmResult};

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// A register index (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u8);

impl Reg {
    /// Validates the register index.
    pub fn checked(idx: u8) -> Option<Reg> {
        if (idx as usize) < NUM_REGS {
            Some(Reg(idx))
        } else {
            None
        }
    }

    /// Index as usize.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Stop execution permanently.
    Halt,
    /// `rd := imm`.
    MovImm(Reg, u64),
    /// `rd := rs`.
    Mov(Reg, Reg),
    /// `rd := rd + rs` (wrapping).
    Add(Reg, Reg),
    /// `rd := rd - rs` (wrapping).
    Sub(Reg, Reg),
    /// `rd := rd * rs` (wrapping).
    Mul(Reg, Reg),
    /// `rd := rd / rs`; faults on zero divisor.
    Div(Reg, Reg),
    /// `rd := rd % rs`; faults on zero divisor.
    Mod(Reg, Reg),
    /// `rd := rd & rs`.
    And(Reg, Reg),
    /// `rd := rd | rs`.
    Or(Reg, Reg),
    /// `rd := rd ^ rs`.
    Xor(Reg, Reg),
    /// `rd := rd << (rs & 63)`.
    Shl(Reg, Reg),
    /// `rd := rd >> (rs & 63)`.
    Shr(Reg, Reg),
    /// `rd := rd + imm` (wrapping).
    AddImm(Reg, u64),
    /// Compare two registers; sets the condition flag.
    Cmp(Reg, Reg),
    /// Unconditional jump to an absolute address.
    Jmp(u64),
    /// Jump if the last comparison was equal.
    Jeq(u64),
    /// Jump if the last comparison was not equal.
    Jne(u64),
    /// Jump if the last comparison was less-than.
    Jlt(u64),
    /// Jump if the last comparison was greater-or-equal.
    Jge(u64),
    /// `rd := mem64[rs + off]`.
    Load(Reg, Reg, u64),
    /// `mem64[ra + off] := rv`.
    Store(Reg, Reg, u64),
    /// `rd := mem8[rs + off]` (zero-extended).
    LoadB(Reg, Reg, u64),
    /// `mem8[ra + off] := low byte of rv`.
    StoreB(Reg, Reg, u64),
    /// Push a register onto the stack (r15 is the stack pointer).
    Push(Reg),
    /// Pop the top of stack into a register.
    Pop(Reg),
    /// Call a subroutine at an absolute address (pushes the return pc).
    Call(u64),
    /// Return from a subroutine.
    Ret,
    /// Read the virtual clock into `rd` (nondeterministic input; may exit).
    Clock(Reg),
    /// Transmit `mem[rp .. rp+rl]` as a network packet.
    Send(Reg, Reg),
    /// Poll the NIC: receive into `mem[rp .. rp+rmax]`, length into `rd` (0 = none).
    Recv(Reg, Reg, Reg),
    /// Poll local input: code into `rc`, value into `rv`; `rc = u64::MAX` when empty.
    Input(Reg, Reg),
    /// Write `mem[rp .. rp+rl]` to the console.
    Out(Reg, Reg),
    /// Read `rl` bytes at disk offset `ro` into memory at `rp`.
    DiskRead(Reg, Reg, Reg),
    /// Write `rl` bytes from memory at `rp` to disk offset `ro`.
    DiskWrite(Reg, Reg, Reg),
    /// Yield to the hypervisor: the guest has nothing to do right now.
    Idle,
}

mod opcodes {
    pub const HALT: u8 = 0x00;
    pub const MOVI: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const ADD: u8 = 0x03;
    pub const SUB: u8 = 0x04;
    pub const MUL: u8 = 0x05;
    pub const DIV: u8 = 0x06;
    pub const MOD: u8 = 0x07;
    pub const AND: u8 = 0x08;
    pub const OR: u8 = 0x09;
    pub const XOR: u8 = 0x0a;
    pub const SHL: u8 = 0x0b;
    pub const SHR: u8 = 0x0c;
    pub const ADDI: u8 = 0x0d;
    pub const CMP: u8 = 0x0e;
    pub const JMP: u8 = 0x0f;
    pub const JEQ: u8 = 0x10;
    pub const JNE: u8 = 0x11;
    pub const JLT: u8 = 0x12;
    pub const JGE: u8 = 0x13;
    pub const LOAD: u8 = 0x14;
    pub const STORE: u8 = 0x15;
    pub const LOADB: u8 = 0x16;
    pub const STOREB: u8 = 0x17;
    pub const PUSH: u8 = 0x18;
    pub const POP: u8 = 0x19;
    pub const CALL: u8 = 0x1a;
    pub const RET: u8 = 0x1b;
    pub const CLOCK: u8 = 0x1c;
    pub const SEND: u8 = 0x1d;
    pub const RECV: u8 = 0x1e;
    pub const INPUT: u8 = 0x1f;
    pub const OUT: u8 = 0x20;
    pub const DISKRD: u8 = 0x21;
    pub const DISKWR: u8 = 0x22;
    pub const IDLE: u8 = 0x23;
}

impl Instruction {
    /// Appends the encoding of this instruction to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use opcodes::*;
        match self {
            Instruction::Halt => out.push(HALT),
            Instruction::MovImm(rd, imm) => {
                out.push(MOVI);
                out.push(rd.0);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instruction::Mov(rd, rs) => encode_rr(out, MOV, rd, rs),
            Instruction::Add(rd, rs) => encode_rr(out, ADD, rd, rs),
            Instruction::Sub(rd, rs) => encode_rr(out, SUB, rd, rs),
            Instruction::Mul(rd, rs) => encode_rr(out, MUL, rd, rs),
            Instruction::Div(rd, rs) => encode_rr(out, DIV, rd, rs),
            Instruction::Mod(rd, rs) => encode_rr(out, MOD, rd, rs),
            Instruction::And(rd, rs) => encode_rr(out, AND, rd, rs),
            Instruction::Or(rd, rs) => encode_rr(out, OR, rd, rs),
            Instruction::Xor(rd, rs) => encode_rr(out, XOR, rd, rs),
            Instruction::Shl(rd, rs) => encode_rr(out, SHL, rd, rs),
            Instruction::Shr(rd, rs) => encode_rr(out, SHR, rd, rs),
            Instruction::AddImm(rd, imm) => {
                out.push(ADDI);
                out.push(rd.0);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Instruction::Cmp(r1, r2) => encode_rr(out, CMP, r1, r2),
            Instruction::Jmp(a) => encode_addr(out, JMP, *a),
            Instruction::Jeq(a) => encode_addr(out, JEQ, *a),
            Instruction::Jne(a) => encode_addr(out, JNE, *a),
            Instruction::Jlt(a) => encode_addr(out, JLT, *a),
            Instruction::Jge(a) => encode_addr(out, JGE, *a),
            Instruction::Load(rd, rs, off) => encode_mem(out, LOAD, rd, rs, *off),
            Instruction::Store(rv, ra, off) => encode_mem(out, STORE, rv, ra, *off),
            Instruction::LoadB(rd, rs, off) => encode_mem(out, LOADB, rd, rs, *off),
            Instruction::StoreB(rv, ra, off) => encode_mem(out, STOREB, rv, ra, *off),
            Instruction::Push(r) => {
                out.push(PUSH);
                out.push(r.0);
            }
            Instruction::Pop(r) => {
                out.push(POP);
                out.push(r.0);
            }
            Instruction::Call(a) => encode_addr(out, CALL, *a),
            Instruction::Ret => out.push(RET),
            Instruction::Clock(r) => {
                out.push(CLOCK);
                out.push(r.0);
            }
            Instruction::Send(rp, rl) => encode_rr(out, SEND, rp, rl),
            Instruction::Recv(rd, rp, rm) => encode_rrr(out, RECV, rd, rp, rm),
            Instruction::Input(rc, rv) => encode_rr(out, INPUT, rc, rv),
            Instruction::Out(rp, rl) => encode_rr(out, OUT, rp, rl),
            Instruction::DiskRead(ro, rp, rl) => encode_rrr(out, DISKRD, ro, rp, rl),
            Instruction::DiskWrite(ro, rp, rl) => encode_rrr(out, DISKWR, ro, rp, rl),
            Instruction::Idle => out.push(IDLE),
        }
    }

    /// Encodes to a fresh vector.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes the instruction at `code[pc..]`.
    ///
    /// Returns the instruction and its encoded length.
    pub fn decode(code: &[u8], pc: u64) -> VmResult<(Instruction, u64)> {
        use opcodes::*;
        let at = pc as usize;
        let opcode = *code
            .get(at)
            .ok_or(VmError::IllegalInstruction { pc, opcode: 0xff })?;
        let reg = |offset: usize| -> VmResult<Reg> {
            let idx = *code
                .get(at + offset)
                .ok_or(VmError::IllegalInstruction { pc, opcode })?;
            Reg::checked(idx).ok_or(VmError::IllegalInstruction { pc, opcode })
        };
        let imm = |offset: usize| -> VmResult<u64> {
            let end = at + offset + 8;
            if end > code.len() {
                return Err(VmError::IllegalInstruction { pc, opcode });
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&code[at + offset..end]);
            Ok(u64::from_le_bytes(b))
        };
        let ins = match opcode {
            HALT => (Instruction::Halt, 1),
            MOVI => (Instruction::MovImm(reg(1)?, imm(2)?), 10),
            MOV => (Instruction::Mov(reg(1)?, reg(2)?), 3),
            ADD => (Instruction::Add(reg(1)?, reg(2)?), 3),
            SUB => (Instruction::Sub(reg(1)?, reg(2)?), 3),
            MUL => (Instruction::Mul(reg(1)?, reg(2)?), 3),
            DIV => (Instruction::Div(reg(1)?, reg(2)?), 3),
            MOD => (Instruction::Mod(reg(1)?, reg(2)?), 3),
            AND => (Instruction::And(reg(1)?, reg(2)?), 3),
            OR => (Instruction::Or(reg(1)?, reg(2)?), 3),
            XOR => (Instruction::Xor(reg(1)?, reg(2)?), 3),
            SHL => (Instruction::Shl(reg(1)?, reg(2)?), 3),
            SHR => (Instruction::Shr(reg(1)?, reg(2)?), 3),
            ADDI => (Instruction::AddImm(reg(1)?, imm(2)?), 10),
            CMP => (Instruction::Cmp(reg(1)?, reg(2)?), 3),
            JMP => (Instruction::Jmp(imm(1)?), 9),
            JEQ => (Instruction::Jeq(imm(1)?), 9),
            JNE => (Instruction::Jne(imm(1)?), 9),
            JLT => (Instruction::Jlt(imm(1)?), 9),
            JGE => (Instruction::Jge(imm(1)?), 9),
            LOAD => (Instruction::Load(reg(1)?, reg(2)?, imm(3)?), 11),
            STORE => (Instruction::Store(reg(1)?, reg(2)?, imm(3)?), 11),
            LOADB => (Instruction::LoadB(reg(1)?, reg(2)?, imm(3)?), 11),
            STOREB => (Instruction::StoreB(reg(1)?, reg(2)?, imm(3)?), 11),
            PUSH => (Instruction::Push(reg(1)?), 2),
            POP => (Instruction::Pop(reg(1)?), 2),
            CALL => (Instruction::Call(imm(1)?), 9),
            RET => (Instruction::Ret, 1),
            CLOCK => (Instruction::Clock(reg(1)?), 2),
            SEND => (Instruction::Send(reg(1)?, reg(2)?), 3),
            RECV => (Instruction::Recv(reg(1)?, reg(2)?, reg(3)?), 4),
            INPUT => (Instruction::Input(reg(1)?, reg(2)?), 3),
            OUT => (Instruction::Out(reg(1)?, reg(2)?), 3),
            DISKRD => (Instruction::DiskRead(reg(1)?, reg(2)?, reg(3)?), 4),
            DISKWR => (Instruction::DiskWrite(reg(1)?, reg(2)?, reg(3)?), 4),
            IDLE => (Instruction::Idle, 1),
            other => return Err(VmError::IllegalInstruction { pc, opcode: other }),
        };
        Ok(ins)
    }
}

fn encode_rr(out: &mut Vec<u8>, op: u8, a: &Reg, b: &Reg) {
    out.push(op);
    out.push(a.0);
    out.push(b.0);
}

fn encode_rrr(out: &mut Vec<u8>, op: u8, a: &Reg, b: &Reg, c: &Reg) {
    out.push(op);
    out.push(a.0);
    out.push(b.0);
    out.push(c.0);
}

fn encode_addr(out: &mut Vec<u8>, op: u8, addr: u64) {
    out.push(op);
    out.extend_from_slice(&addr.to_le_bytes());
}

fn encode_mem(out: &mut Vec<u8>, op: u8, a: &Reg, b: &Reg, off: u64) {
    out.push(op);
    out.push(a.0);
    out.push(b.0);
    out.extend_from_slice(&off.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instructions() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            Halt,
            MovImm(Reg(1), 0xdead_beef),
            Mov(Reg(2), Reg(3)),
            Add(Reg(0), Reg(1)),
            Sub(Reg(4), Reg(5)),
            Mul(Reg(6), Reg(7)),
            Div(Reg(8), Reg(9)),
            Mod(Reg(10), Reg(11)),
            And(Reg(12), Reg(13)),
            Or(Reg(14), Reg(15)),
            Xor(Reg(1), Reg(1)),
            Shl(Reg(2), Reg(3)),
            Shr(Reg(2), Reg(3)),
            AddImm(Reg(5), u64::MAX),
            Cmp(Reg(1), Reg(2)),
            Jmp(0x1000),
            Jeq(0x1001),
            Jne(0x1002),
            Jlt(0x1003),
            Jge(0x1004),
            Load(Reg(1), Reg(2), 64),
            Store(Reg(3), Reg(4), 128),
            LoadB(Reg(5), Reg(6), 1),
            StoreB(Reg(7), Reg(8), 2),
            Push(Reg(9)),
            Pop(Reg(10)),
            Call(0x2000),
            Ret,
            Clock(Reg(3)),
            Send(Reg(1), Reg(2)),
            Recv(Reg(1), Reg(2), Reg(3)),
            Input(Reg(4), Reg(5)),
            Out(Reg(6), Reg(7)),
            DiskRead(Reg(1), Reg(2), Reg(3)),
            DiskWrite(Reg(4), Reg(5), Reg(6)),
            Idle,
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for ins in all_instructions() {
            let bytes = ins.encode_to_vec();
            let (decoded, len) = Instruction::decode(&bytes, 0).unwrap();
            assert_eq!(decoded, ins);
            assert_eq!(len as usize, bytes.len(), "{ins:?}");
        }
    }

    #[test]
    fn program_of_many_instructions_decodes_sequentially() {
        let program = all_instructions();
        let mut code = Vec::new();
        for ins in &program {
            ins.encode(&mut code);
        }
        let mut pc = 0u64;
        let mut decoded = Vec::new();
        while (pc as usize) < code.len() {
            let (ins, len) = Instruction::decode(&code, pc).unwrap();
            decoded.push(ins);
            pc += len;
        }
        assert_eq!(decoded, program);
    }

    #[test]
    fn invalid_opcode_rejected() {
        let err = Instruction::decode(&[0x7f], 0).unwrap_err();
        assert_eq!(
            err,
            VmError::IllegalInstruction {
                pc: 0,
                opcode: 0x7f
            }
        );
    }

    #[test]
    fn truncated_instruction_rejected() {
        // MOVI needs 10 bytes.
        let bytes = vec![0x01, 0x02, 0x03];
        assert!(Instruction::decode(&bytes, 0).is_err());
        // Decode past the end.
        assert!(Instruction::decode(&bytes, 100).is_err());
    }

    #[test]
    fn invalid_register_rejected() {
        // MOV with register index 16.
        let bytes = vec![0x02, 16, 0];
        assert!(Instruction::decode(&bytes, 0).is_err());
        assert!(Reg::checked(15).is_some());
        assert!(Reg::checked(16).is_none());
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
    }
}
