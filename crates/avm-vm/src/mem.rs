//! Paged guest memory with dirty-page tracking, cached page hashes and
//! demand paging for on-demand audits.
//!
//! Incremental snapshots (paper §4.4) "only contain the state that has
//! changed since the last snapshot"; the AVMM therefore needs to know which
//! pages a guest has written.  `GuestMemory` tracks a dirty bit per page that
//! the snapshot machinery reads and clears.
//!
//! Independently of the dirty bits, every page's SHA-256 is memoised: a
//! cache slot is invalidated by the write path the moment a page's contents
//! change and repopulated lazily by [`GuestMemory::page_hash`].  Unlike the
//! dirty bits the cache is *never* cleared wholesale — its validity tracks
//! content changes, not snapshot boundaries — so state-root computations
//! only rehash pages written since the previous root, no matter how often
//! dirty tracking is reset around them.
//!
//! # Demand paging (§3.5 on-demand audits)
//!
//! An auditor "can either download an entire snapshot or incrementally
//! request the parts of the state that are accessed during replay" (paper
//! §3.5).  [`GuestMemory::stage_lazy_page`] supports the second mode: a
//! staged page carries its authentic at-snapshot contents *beside* the page
//! array together with the content hash, and the contents are installed
//! ("faulted in") the moment the guest first reads or writes any byte of the
//! page.  Until then the page array holds whatever the local reference image
//! produced, while [`GuestMemory::page_hash`] already reports the staged
//! (authentic) hash — so Merkle state roots are correct at every point even
//! though untouched contents were never transferred.
//! [`GuestMemory::faulted_pages`] records the first-touch order; the audit
//! layer turns it into the exact set of blobs the auditor had to download.
//!
//! Caveat: while pages remain staged, [`GuestMemory::page`] (raw contents)
//! returns the stale local bytes.  Root computations must therefore go
//! through the hash cache (as [`GuestMemory::page_hash`] and the state-tree
//! builders do), never through re-hashing raw pages.

use std::cell::RefCell;
use std::collections::HashMap;

use avm_crypto::sha256::{sha256, Digest};

use crate::error::{VmError, VmResult};

/// Guest page size in bytes (4 KiB, matching a commodity PC).
pub const PAGE_SIZE: usize = 4096;

/// Byte-addressable guest RAM divided into [`PAGE_SIZE`] pages.
#[derive(Debug, Clone)]
pub struct GuestMemory {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    dirty: Vec<bool>,
    /// Lazily filled SHA-256 per page; a slot is reset to `None` whenever the
    /// page is written (interior mutability so reads can fill it).
    hash_cache: RefCell<Vec<Option<Digest>>>,
    /// Authentic contents staged for demand paging, keyed by page index;
    /// installed into `pages` on first access (see the module docs).
    staged: HashMap<usize, Vec<u8>>,
    /// Page indices installed from `staged`, in first-touch order.
    faulted: Vec<usize>,
}

impl GuestMemory {
    /// Allocates zeroed guest memory of `size` bytes (rounded up to whole pages).
    pub fn new(size: u64) -> GuestMemory {
        let n_pages = (size as usize).div_ceil(PAGE_SIZE).max(1);
        GuestMemory {
            pages: (0..n_pages).map(|_| Box::new([0u8; PAGE_SIZE])).collect(),
            dirty: vec![false; n_pages],
            hash_cache: RefCell::new(vec![None; n_pages]),
            staged: HashMap::new(),
            faulted: Vec::new(),
        }
    }

    /// Total memory size in bytes.
    pub fn size(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, addr: u64, len: usize) -> VmResult<()> {
        if len == 0 {
            return Ok(());
        }
        let end = addr
            .checked_add(len as u64)
            .ok_or(VmError::MemoryOutOfRange {
                addr,
                len,
                mem_size: self.size(),
            })?;
        if end > self.size() {
            return Err(VmError::MemoryOutOfRange {
                addr,
                len,
                mem_size: self.size(),
            });
        }
        Ok(())
    }

    /// Installs any staged pages overlapping `[addr, addr+len)` (demand
    /// paging, see the module docs).  Touching a staged page replaces the
    /// stale local contents with the authentic staged bytes *before* the
    /// access proceeds, and records the page in the fault list.  Out-of-range
    /// addresses are ignored here; the caller's bounds check reports them.
    fn fault_in_range(&mut self, addr: u64, len: usize) {
        if self.staged.is_empty() || len == 0 {
            return;
        }
        let Some(end) = (addr as usize).checked_add(len - 1) else {
            return;
        };
        let first = addr as usize / PAGE_SIZE;
        let last = (end / PAGE_SIZE).min(self.pages.len().saturating_sub(1));
        for p in first..=last {
            if let Some(content) = self.staged.remove(&p) {
                self.pages[p].copy_from_slice(&content);
                self.faulted.push(p);
                // The hash cache keeps the hash seeded at staging time: the
                // installed contents equal it by construction.  The dirty
                // bit stays untouched — the page equals its at-snapshot
                // contents, nothing changed since the capture point.
            }
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Takes `&mut self` because a read may fault in a staged page (see
    /// [`GuestMemory::stage_lazy_page`]); for fully resident memory it
    /// mutates nothing.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> VmResult<()> {
        self.check(addr, buf.len())?;
        self.fault_in_range(addr, buf.len());
        let mut offset = addr as usize;
        let mut copied = 0usize;
        while copied < buf.len() {
            let page = offset / PAGE_SIZE;
            let in_page = offset % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - copied);
            buf[copied..copied + n].copy_from_slice(&self.pages[page][in_page..in_page + n]);
            copied += n;
            offset += n;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`, marking touched pages dirty.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> VmResult<()> {
        self.check(addr, data.len())?;
        // A partial-page write needs the authentic surrounding bytes, so
        // writes fault staged pages in just like reads do.
        self.fault_in_range(addr, data.len());
        let mut offset = addr as usize;
        let mut copied = 0usize;
        while copied < data.len() {
            let page = offset / PAGE_SIZE;
            let in_page = offset % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(data.len() - copied);
            self.pages[page][in_page..in_page + n].copy_from_slice(&data[copied..copied + n]);
            self.dirty[page] = true;
            self.hash_cache.get_mut()[page] = None;
            copied += n;
            offset += n;
        }
        Ok(())
    }

    /// Reads a vector of `len` bytes at `addr`.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> VmResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u64) -> VmResult<u8> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> VmResult<()> {
        self.write(addr, &[v])
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: u64) -> VmResult<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> VmResult<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Returns the raw contents of page `idx`.
    pub fn page(&self, idx: usize) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(idx).map(|p| p.as_ref())
    }

    /// Overwrites page `idx` wholesale (used when restoring snapshots).
    pub fn set_page(&mut self, idx: usize, data: &[u8; PAGE_SIZE]) -> VmResult<()> {
        self.set_page_from_slice(idx, data)
    }

    /// Overwrites page `idx` from a slice that must be exactly one page long.
    ///
    /// Same as [`GuestMemory::set_page`] but avoids forcing callers holding a
    /// `Vec<u8>` (e.g. snapshot restore) through an intermediate fixed-size
    /// array copy.
    pub fn set_page_from_slice(&mut self, idx: usize, data: &[u8]) -> VmResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(VmError::CorruptState("snapshot page has wrong size"));
        }
        let page = self
            .pages
            .get_mut(idx)
            .ok_or(VmError::CorruptState("snapshot page index out of range"))?;
        page.copy_from_slice(data);
        // A wholesale overwrite supersedes any staged contents without
        // needing them — drop the staging, record no fault.
        self.staged.remove(&idx);
        self.dirty[idx] = true;
        self.hash_cache.get_mut()[idx] = None;
        Ok(())
    }

    /// SHA-256 of page `idx` contents, memoised until the page is written.
    pub fn page_hash(&self, idx: usize) -> Option<Digest> {
        let page = self.page(idx)?;
        let mut cache = self.hash_cache.borrow_mut();
        if let Some(h) = cache[idx] {
            return Some(h);
        }
        let h = sha256(page);
        cache[idx] = Some(h);
        Some(h)
    }

    /// Indices of pages written since the last [`GuestMemory::clear_dirty`].
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| if d { Some(i) } else { None })
            .collect()
    }

    /// Clears all dirty bits.
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    /// Marks every page dirty (used after a wholesale restore).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = true);
    }

    // --- Demand paging (on-demand audits, §3.5) --------------------------

    /// Stages authentic contents for page `idx` to be installed on first
    /// access, and seeds the hash cache with `hash` so state roots computed
    /// before the page is touched already reflect the staged contents.
    ///
    /// The caller is responsible for `hash` being the SHA-256 of `content`
    /// (the audit layer verifies this before staging — it is the same check
    /// a downloaded blob gets).  The dirty bit is not set: a staged page
    /// *is* the at-snapshot state, merely not transferred yet.
    pub fn stage_lazy_page(&mut self, idx: usize, content: Vec<u8>, hash: Digest) -> VmResult<()> {
        if content.len() != PAGE_SIZE {
            return Err(VmError::CorruptState("staged page has wrong size"));
        }
        if idx >= self.pages.len() {
            return Err(VmError::CorruptState("staged page index out of range"));
        }
        self.hash_cache.get_mut()[idx] = Some(hash);
        self.staged.insert(idx, content);
        Ok(())
    }

    /// Page indices faulted in from staging so far, in first-touch order.
    pub fn faulted_pages(&self) -> &[usize] {
        &self.faulted
    }

    /// Number of staged pages not yet touched (their contents were never
    /// needed, hence never transferred).
    pub fn staged_page_count(&self) -> usize {
        self.staged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_creation() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        assert_eq!(mem.size(), 2 * PAGE_SIZE as u64);
        assert_eq!(mem.page_count(), 2);
        assert_eq!(mem.read_u64(0).unwrap(), 0);
        assert!(mem.dirty_pages().is_empty());
    }

    #[test]
    fn size_rounds_up_to_pages() {
        let mem = GuestMemory::new(PAGE_SIZE as u64 + 1);
        assert_eq!(mem.page_count(), 2);
        let tiny = GuestMemory::new(0);
        assert_eq!(tiny.page_count(), 1);
    }

    #[test]
    fn read_write_roundtrip_across_page_boundary() {
        let mut mem = GuestMemory::new(3 * PAGE_SIZE as u64);
        let addr = PAGE_SIZE as u64 - 5;
        let data: Vec<u8> = (0..64u8).collect();
        mem.write(addr, &data).unwrap();
        assert_eq!(mem.read_vec(addr, 64).unwrap(), data);
        // Both touched pages are dirty; the third is not.
        assert_eq!(mem.dirty_pages(), vec![0, 1]);
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        assert!(matches!(
            mem.read_vec(PAGE_SIZE as u64 - 2, 4).unwrap_err(),
            VmError::MemoryOutOfRange { .. }
        ));
        assert!(mem.write(u64::MAX - 1, &[1, 2, 3]).is_err());
        // Zero-length access at the end is fine.
        mem.write(PAGE_SIZE as u64, &[]).unwrap();
    }

    #[test]
    fn scalar_helpers() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        mem.write_u64(16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(mem.read_u64(16).unwrap(), 0xdead_beef_cafe_f00d);
        mem.write_u8(3, 0x7f).unwrap();
        assert_eq!(mem.read_u8(3).unwrap(), 0x7f);
    }

    #[test]
    fn dirty_tracking_and_clearing() {
        let mut mem = GuestMemory::new(4 * PAGE_SIZE as u64);
        mem.write_u8(2 * PAGE_SIZE as u64, 1).unwrap();
        assert_eq!(mem.dirty_pages(), vec![2]);
        mem.clear_dirty();
        assert!(mem.dirty_pages().is_empty());
        mem.mark_all_dirty();
        assert_eq!(mem.dirty_pages().len(), 4);
    }

    #[test]
    fn page_hash_changes_with_content() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let before = mem.page_hash(0).unwrap();
        mem.write_u8(100, 42).unwrap();
        assert_ne!(before, mem.page_hash(0).unwrap());
        assert!(mem.page_hash(5).is_none());
    }

    #[test]
    fn page_hash_cache_tracks_writes_not_dirty_bits() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let h0 = mem.page_hash(0).unwrap();
        // Repeated reads return the memoised value.
        assert_eq!(mem.page_hash(0).unwrap(), h0);
        // Clearing dirty bits must NOT invalidate the hash cache...
        mem.write_u8(5, 1).unwrap();
        let h1 = mem.page_hash(0).unwrap();
        assert_ne!(h0, h1);
        mem.clear_dirty();
        assert_eq!(mem.page_hash(0).unwrap(), h1);
        // ...but any write path must.
        mem.write_u8(5, 2).unwrap();
        assert_ne!(mem.page_hash(0).unwrap(), h1);
        let page = vec![7u8; PAGE_SIZE];
        mem.set_page_from_slice(1, &page).unwrap();
        assert_eq!(mem.page_hash(1).unwrap(), sha256(&page));
        assert!(mem.set_page_from_slice(1, &page[1..]).is_err());
        // The cached hash always equals a fresh hash of the contents.
        for i in 0..mem.page_count() {
            assert_eq!(mem.page_hash(i).unwrap(), sha256(mem.page(i).unwrap()));
        }
    }

    #[test]
    fn set_page_restores_content() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xaa;
        page[PAGE_SIZE - 1] = 0xbb;
        mem.set_page(1, &page).unwrap();
        assert_eq!(mem.read_u8(PAGE_SIZE as u64).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(2 * PAGE_SIZE as u64 - 1).unwrap(), 0xbb);
        assert!(mem.set_page(9, &page).is_err());
    }

    #[test]
    fn staged_page_reports_hash_before_contents() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let authentic = vec![7u8; PAGE_SIZE];
        let hash = sha256(&authentic);
        mem.stage_lazy_page(1, authentic.clone(), hash).unwrap();
        // The root-relevant hash is already the staged one, while the raw
        // page still holds the local (stale) bytes.
        assert_eq!(mem.page_hash(1).unwrap(), hash);
        assert_eq!(mem.page(1).unwrap()[0], 0);
        assert_eq!(mem.staged_page_count(), 1);
        assert!(mem.faulted_pages().is_empty());
        // First read faults the contents in.
        assert_eq!(mem.read_u8(PAGE_SIZE as u64 + 5).unwrap(), 7);
        assert_eq!(mem.faulted_pages(), &[1]);
        assert_eq!(mem.staged_page_count(), 0);
        assert_eq!(mem.page(1).unwrap()[0], 7);
        // The page is not dirty: it equals its at-snapshot contents.
        assert!(mem.dirty_pages().is_empty());
        assert_eq!(mem.page_hash(1).unwrap(), hash);
    }

    #[test]
    fn staged_page_faults_in_on_partial_write() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let mut authentic = vec![0u8; PAGE_SIZE];
        authentic[0] = 0xaa;
        authentic[100] = 0xbb;
        mem.stage_lazy_page(0, authentic.clone(), sha256(&authentic))
            .unwrap();
        // A partial write must land on top of the authentic bytes.
        mem.write_u8(1, 0xcc).unwrap();
        assert_eq!(mem.faulted_pages(), &[0]);
        assert_eq!(mem.read_u8(0).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(1).unwrap(), 0xcc);
        assert_eq!(mem.read_u8(100).unwrap(), 0xbb);
        // Now the page *is* dirty (the write changed it) and the hash cache
        // was invalidated by the write path.
        assert_eq!(mem.dirty_pages(), vec![0]);
        let mut expected = authentic;
        expected[1] = 0xcc;
        assert_eq!(mem.page_hash(0).unwrap(), sha256(&expected));
    }

    #[test]
    fn wholesale_overwrite_drops_staging_without_fault() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let authentic = vec![9u8; PAGE_SIZE];
        mem.stage_lazy_page(0, authentic.clone(), sha256(&authentic))
            .unwrap();
        let replacement = vec![3u8; PAGE_SIZE];
        mem.set_page_from_slice(0, &replacement).unwrap();
        // The staged contents were never needed: no fault recorded.
        assert!(mem.faulted_pages().is_empty());
        assert_eq!(mem.staged_page_count(), 0);
        assert_eq!(mem.page_hash(0).unwrap(), sha256(&replacement));
    }

    #[test]
    fn stage_lazy_page_validates_inputs() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        assert!(mem
            .stage_lazy_page(0, vec![0u8; 5], sha256(&[0u8; 5]))
            .is_err());
        let page = vec![0u8; PAGE_SIZE];
        assert!(mem.stage_lazy_page(4, page.clone(), sha256(&page)).is_err());
    }
}
