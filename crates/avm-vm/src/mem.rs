//! Paged guest memory with chunk-granular dirty tracking, cached chunk
//! hashes and chunk-level demand paging for on-demand audits.
//!
//! Incremental snapshots (paper §4.4) "only contain the state that has
//! changed since the last snapshot"; the AVMM therefore needs to know which
//! state a guest has written.  Tracking whole 4 KiB pages makes an 8-byte
//! counter bump cost a full page of hashing, storage and transfer, so the
//! unit of accountability here is the 512 B **chunk** ([`CHUNK_SIZE`],
//! [`CHUNKS_PER_PAGE`] per page): `GuestMemory` keeps one dirty-chunk bitmask
//! byte per page that the snapshot machinery reads and clears, and every
//! layer above — Merkle leaves, snapshot payloads, the content-addressed
//! pool, the blob transfer protocol — addresses chunks.
//!
//! Independently of the dirty bits, every chunk's SHA-256 is memoised: a
//! cache slot is invalidated by the write path the moment a chunk's contents
//! change and repopulated lazily by [`GuestMemory::chunk_hash`] (or in bulk,
//! across a scoped worker pool, by [`GuestMemory::prime_chunk_hashes`]).
//! Unlike the dirty bits the cache is *never* cleared wholesale — its
//! validity tracks content changes, not snapshot boundaries — so state-root
//! computations only rehash chunks written since the previous root, no
//! matter how often dirty tracking is reset around them.
//!
//! # Demand paging (§3.5 on-demand audits)
//!
//! An auditor "can either download an entire snapshot or incrementally
//! request the parts of the state that are accessed during replay" (paper
//! §3.5).  [`GuestMemory::stage_lazy_chunk`] supports the second mode: a
//! staged chunk carries its authentic at-snapshot contents *beside* the page
//! array together with the content hash, and the contents are installed
//! ("faulted in") the moment the guest first reads or writes any byte of the
//! chunk.  Until then the page array holds whatever the local reference
//! image produced, while [`GuestMemory::chunk_hash`] already reports the
//! staged (authentic) hash — so Merkle state roots are correct at every
//! point even though untouched contents were never transferred.  Faulting at
//! chunk rather than page granularity is what makes sparse replays cheap: a
//! guest that reads 8 bytes pulls 512 bytes over the wire, not 4096.
//! [`GuestMemory::faulted_chunks`] records the first-touch order; the audit
//! layer turns it into the exact set of blobs the auditor had to download.
//!
//! Caveat: while chunks remain staged, [`GuestMemory::page`] /
//! [`GuestMemory::chunk`] (raw contents) return the stale local bytes.  Root
//! computations must therefore go through the hash cache (as
//! [`GuestMemory::chunk_hash`] and the state-tree builders do), never
//! through re-hashing raw contents.

use std::cell::RefCell;
use std::collections::HashMap;

use avm_crypto::parallel::sha256_batch;
use avm_crypto::sha256::{sha256, Digest};

use crate::error::{VmError, VmResult};

/// Guest page size in bytes (4 KiB, matching a commodity PC).
pub const PAGE_SIZE: usize = 4096;

/// Dirty-tracking and transfer granularity: one eighth of a page.
pub const CHUNK_SIZE: usize = 512;

/// Chunks per page; the per-page dirty bitmask is exactly one byte.
pub const CHUNKS_PER_PAGE: usize = PAGE_SIZE / CHUNK_SIZE;

// The dirty bitmask is a `u8` per page (`1 << (chunk % CHUNKS_PER_PAGE)`,
// `0xff` = all dirty); changing the chunk geometry past 8 chunks per page
// must widen it, so fail the build rather than silently alias dirty bits.
const _: () = assert!(CHUNKS_PER_PAGE <= 8, "dirty bitmask is u8-per-page");

/// Byte-addressable guest RAM divided into [`PAGE_SIZE`] pages, dirty-tracked
/// and content-addressed in [`CHUNK_SIZE`] chunks.
#[derive(Debug, Clone)]
pub struct GuestMemory {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// One bitmask byte per page: bit `c` set = chunk `c` of that page was
    /// written since the last [`GuestMemory::clear_dirty`].
    dirty: Vec<u8>,
    /// Lazily filled SHA-256 per chunk; a slot is reset to `None` whenever
    /// the chunk is written (interior mutability so reads can fill it).
    hash_cache: RefCell<Vec<Option<Digest>>>,
    /// Authentic contents staged for demand paging, keyed by chunk index;
    /// installed into `pages` on first access (see the module docs).
    staged: HashMap<usize, Vec<u8>>,
    /// Chunk indices installed from `staged`, in first-touch order.
    faulted: Vec<usize>,
}

impl GuestMemory {
    /// Allocates zeroed guest memory of `size` bytes (rounded up to whole pages).
    pub fn new(size: u64) -> GuestMemory {
        let n_pages = (size as usize).div_ceil(PAGE_SIZE).max(1);
        GuestMemory {
            pages: (0..n_pages).map(|_| Box::new([0u8; PAGE_SIZE])).collect(),
            dirty: vec![0; n_pages],
            hash_cache: RefCell::new(vec![None; n_pages * CHUNKS_PER_PAGE]),
            staged: HashMap::new(),
            faulted: Vec::new(),
        }
    }

    /// Total memory size in bytes.
    pub fn size(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of chunks ([`CHUNKS_PER_PAGE`] per page) — the memory leaf
    /// count of the Merkle state tree.
    pub fn chunk_count(&self) -> usize {
        self.pages.len() * CHUNKS_PER_PAGE
    }

    fn check(&self, addr: u64, len: usize) -> VmResult<()> {
        if len == 0 {
            return Ok(());
        }
        let end = addr
            .checked_add(len as u64)
            .ok_or(VmError::MemoryOutOfRange {
                addr,
                len,
                mem_size: self.size(),
            })?;
        if end > self.size() {
            return Err(VmError::MemoryOutOfRange {
                addr,
                len,
                mem_size: self.size(),
            });
        }
        Ok(())
    }

    /// Installs any staged chunks overlapping `[addr, addr+len)` (demand
    /// paging, see the module docs).  Touching a staged chunk replaces the
    /// stale local contents with the authentic staged bytes *before* the
    /// access proceeds, and records the chunk in the fault list.  Out-of-range
    /// addresses are ignored here; the caller's bounds check reports them.
    ///
    /// When the access is a write, chunks the range *fully* covers are about
    /// to be overwritten wholesale — their staged contents are never needed,
    /// so staging is dropped without recording a fault (no transfer), like
    /// [`GuestMemory::set_chunk_from_slice`] does.  Only partially-covered
    /// chunks need the authentic surrounding bytes faulted in.
    fn fault_in_range(&mut self, addr: u64, len: usize, overwrite: bool) {
        if self.staged.is_empty() || len == 0 {
            return;
        }
        let start = addr as usize;
        let Some(end) = start.checked_add(len - 1) else {
            return;
        };
        let first = start / CHUNK_SIZE;
        let last = (end / CHUNK_SIZE).min(self.chunk_count().saturating_sub(1));
        for c in first..=last {
            let fully_covered = start <= c * CHUNK_SIZE && (c + 1) * CHUNK_SIZE <= end + 1;
            if overwrite && fully_covered {
                // Wholesale overwrite supersedes the staged contents without
                // needing them: no fault, no transfer.
                self.staged.remove(&c);
                continue;
            }
            if let Some(content) = self.staged.remove(&c) {
                let page = c / CHUNKS_PER_PAGE;
                let off = (c % CHUNKS_PER_PAGE) * CHUNK_SIZE;
                self.pages[page][off..off + CHUNK_SIZE].copy_from_slice(&content);
                self.faulted.push(c);
                // The hash cache keeps the hash seeded at staging time: the
                // installed contents equal it by construction.  The dirty
                // bit stays untouched — the chunk equals its at-snapshot
                // contents, nothing changed since the capture point.
            }
        }
    }

    /// Marks the chunks covering `[addr, addr+len)` dirty and invalidates
    /// their cached hashes (the write path's bookkeeping).
    fn mark_written(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr as usize / CHUNK_SIZE;
        let last = (addr as usize + len - 1) / CHUNK_SIZE;
        let cache = self.hash_cache.get_mut();
        for (c, slot) in cache.iter_mut().enumerate().take(last + 1).skip(first) {
            self.dirty[c / CHUNKS_PER_PAGE] |= 1 << (c % CHUNKS_PER_PAGE);
            *slot = None;
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Takes `&mut self` because a read may fault in a staged chunk (see
    /// [`GuestMemory::stage_lazy_chunk`]); for fully resident memory it
    /// mutates nothing.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> VmResult<()> {
        self.check(addr, buf.len())?;
        self.fault_in_range(addr, buf.len(), false);
        let mut offset = addr as usize;
        let mut copied = 0usize;
        while copied < buf.len() {
            let page = offset / PAGE_SIZE;
            let in_page = offset % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - copied);
            buf[copied..copied + n].copy_from_slice(&self.pages[page][in_page..in_page + n]);
            copied += n;
            offset += n;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`, marking touched chunks dirty.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> VmResult<()> {
        self.check(addr, data.len())?;
        // A partial-chunk write needs the authentic surrounding bytes faulted
        // in; fully-overwritten staged chunks are dropped fault-free.
        self.fault_in_range(addr, data.len(), true);
        let mut offset = addr as usize;
        let mut copied = 0usize;
        while copied < data.len() {
            let page = offset / PAGE_SIZE;
            let in_page = offset % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(data.len() - copied);
            self.pages[page][in_page..in_page + n].copy_from_slice(&data[copied..copied + n]);
            copied += n;
            offset += n;
        }
        self.mark_written(addr, data.len());
        Ok(())
    }

    /// Reads a vector of `len` bytes at `addr`.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> VmResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u64) -> VmResult<u8> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> VmResult<()> {
        self.write(addr, &[v])
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: u64) -> VmResult<u64> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> VmResult<()> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Returns the raw contents of page `idx`.
    pub fn page(&self, idx: usize) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(idx).map(|p| p.as_ref())
    }

    /// Returns the raw contents of chunk `idx` (a [`CHUNK_SIZE`] slice).
    pub fn chunk(&self, idx: usize) -> Option<&[u8]> {
        let page = self.pages.get(idx / CHUNKS_PER_PAGE)?;
        let off = (idx % CHUNKS_PER_PAGE) * CHUNK_SIZE;
        Some(&page[off..off + CHUNK_SIZE])
    }

    /// Overwrites page `idx` wholesale (used when restoring snapshots).
    pub fn set_page(&mut self, idx: usize, data: &[u8; PAGE_SIZE]) -> VmResult<()> {
        self.set_page_from_slice(idx, data)
    }

    /// Overwrites page `idx` from a slice that must be exactly one page long.
    ///
    /// Same as [`GuestMemory::set_page`] but avoids forcing callers holding a
    /// `Vec<u8>` through an intermediate fixed-size array copy.
    pub fn set_page_from_slice(&mut self, idx: usize, data: &[u8]) -> VmResult<()> {
        if data.len() != PAGE_SIZE {
            return Err(VmError::CorruptState("snapshot page has wrong size"));
        }
        if idx >= self.pages.len() {
            return Err(VmError::CorruptState("snapshot page index out of range"));
        }
        for c in 0..CHUNKS_PER_PAGE {
            self.set_chunk_from_slice(
                idx * CHUNKS_PER_PAGE + c,
                &data[c * CHUNK_SIZE..(c + 1) * CHUNK_SIZE],
            )?;
        }
        Ok(())
    }

    /// Overwrites chunk `idx` from a slice that must be exactly
    /// [`CHUNK_SIZE`] long (the snapshot-restore unit).
    pub fn set_chunk_from_slice(&mut self, idx: usize, data: &[u8]) -> VmResult<()> {
        if data.len() != CHUNK_SIZE {
            return Err(VmError::CorruptState("snapshot chunk has wrong size"));
        }
        if idx >= self.chunk_count() {
            return Err(VmError::CorruptState("snapshot chunk index out of range"));
        }
        let page = idx / CHUNKS_PER_PAGE;
        let off = (idx % CHUNKS_PER_PAGE) * CHUNK_SIZE;
        self.pages[page][off..off + CHUNK_SIZE].copy_from_slice(data);
        // A wholesale overwrite supersedes any staged contents without
        // needing them — drop the staging, record no fault.
        self.staged.remove(&idx);
        self.dirty[page] |= 1 << (idx % CHUNKS_PER_PAGE);
        self.hash_cache.get_mut()[idx] = None;
        Ok(())
    }

    /// SHA-256 of chunk `idx` contents, memoised until the chunk is written.
    pub fn chunk_hash(&self, idx: usize) -> Option<Digest> {
        let chunk = self.chunk(idx)?;
        let mut cache = self.hash_cache.borrow_mut();
        if let Some(h) = cache[idx] {
            return Some(h);
        }
        let h = sha256(chunk);
        cache[idx] = Some(h);
        Some(h)
    }

    /// Fills the hash-cache slots for `indices` that are currently empty,
    /// hashing the missing chunks across the scoped worker pool
    /// ([`avm_crypto::parallel::sha256_batch`]).  Out-of-range indices are
    /// ignored; subsequent [`GuestMemory::chunk_hash`] calls for primed
    /// indices are pure cache hits.
    pub fn prime_chunk_hashes(&self, indices: &[usize]) {
        let mut cache = self.hash_cache.borrow_mut();
        let missing: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| i < cache.len() && cache[i].is_none())
            .collect();
        if missing.is_empty() {
            return;
        }
        let inputs: Vec<&[u8]> = missing
            .iter()
            .map(|&i| self.chunk(i).expect("chunk in range"))
            .collect();
        for (i, digest) in missing.iter().zip(sha256_batch(&inputs)) {
            cache[*i] = Some(digest);
        }
    }

    /// Indices of chunks written since the last [`GuestMemory::clear_dirty`],
    /// in ascending order.
    pub fn dirty_chunks(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (p, &mask) in self.dirty.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            for c in 0..CHUNKS_PER_PAGE {
                if mask & (1 << c) != 0 {
                    out.push(p * CHUNKS_PER_PAGE + c);
                }
            }
        }
        out
    }

    /// Indices of pages with at least one dirty chunk, in ascending order.
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| if m != 0 { Some(i) } else { None })
            .collect()
    }

    /// Clears all dirty bits.
    pub fn clear_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = 0);
    }

    /// Marks every chunk dirty (used after a wholesale restore).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = 0xff);
    }

    // --- Demand paging (on-demand audits, §3.5) --------------------------

    /// Stages authentic contents for chunk `idx` to be installed on first
    /// access, and seeds the hash cache with `hash` so state roots computed
    /// before the chunk is touched already reflect the staged contents.
    ///
    /// The caller is responsible for `hash` being the SHA-256 of `content`
    /// (the audit layer verifies this before staging — it is the same check
    /// a downloaded blob gets).  The dirty bit is not set: a staged chunk
    /// *is* the at-snapshot state, merely not transferred yet.
    pub fn stage_lazy_chunk(&mut self, idx: usize, content: Vec<u8>, hash: Digest) -> VmResult<()> {
        if content.len() != CHUNK_SIZE {
            return Err(VmError::CorruptState("staged chunk has wrong size"));
        }
        if idx >= self.chunk_count() {
            return Err(VmError::CorruptState("staged chunk index out of range"));
        }
        self.hash_cache.get_mut()[idx] = Some(hash);
        self.staged.insert(idx, content);
        Ok(())
    }

    /// Chunk indices faulted in from staging so far, in first-touch order.
    pub fn faulted_chunks(&self) -> &[usize] {
        &self.faulted
    }

    /// Number of staged chunks not yet touched (their contents were never
    /// needed, hence never transferred).
    pub fn staged_chunk_count(&self) -> usize {
        self.staged.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_creation() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        assert_eq!(mem.size(), 2 * PAGE_SIZE as u64);
        assert_eq!(mem.page_count(), 2);
        assert_eq!(mem.chunk_count(), 2 * CHUNKS_PER_PAGE);
        assert_eq!(mem.read_u64(0).unwrap(), 0);
        assert!(mem.dirty_chunks().is_empty());
    }

    #[test]
    fn size_rounds_up_to_pages() {
        let mem = GuestMemory::new(PAGE_SIZE as u64 + 1);
        assert_eq!(mem.page_count(), 2);
        let tiny = GuestMemory::new(0);
        assert_eq!(tiny.page_count(), 1);
    }

    #[test]
    fn read_write_roundtrip_across_page_boundary() {
        let mut mem = GuestMemory::new(3 * PAGE_SIZE as u64);
        let addr = PAGE_SIZE as u64 - 5;
        let data: Vec<u8> = (0..64u8).collect();
        mem.write(addr, &data).unwrap();
        assert_eq!(mem.read_vec(addr, 64).unwrap(), data);
        // Exactly the last chunk of page 0 and the first chunk of page 1 are
        // dirty; both pages report dirty, the third does not.
        assert_eq!(
            mem.dirty_chunks(),
            vec![CHUNKS_PER_PAGE - 1, CHUNKS_PER_PAGE]
        );
        assert_eq!(mem.dirty_pages(), vec![0, 1]);
    }

    #[test]
    fn sub_page_writes_dirty_single_chunks() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        // 8 bytes inside chunk 3 of page 0.
        mem.write_u64(3 * CHUNK_SIZE as u64 + 16, 7).unwrap();
        assert_eq!(mem.dirty_chunks(), vec![3]);
        assert_eq!(mem.dirty_pages(), vec![0]);
        // A write spanning the chunk boundary dirties both chunks.
        mem.clear_dirty();
        mem.write(CHUNK_SIZE as u64 - 2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.dirty_chunks(), vec![0, 1]);
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        assert!(matches!(
            mem.read_vec(PAGE_SIZE as u64 - 2, 4).unwrap_err(),
            VmError::MemoryOutOfRange { .. }
        ));
        assert!(mem.write(u64::MAX - 1, &[1, 2, 3]).is_err());
        // Zero-length access at the end is fine.
        mem.write(PAGE_SIZE as u64, &[]).unwrap();
    }

    #[test]
    fn scalar_helpers() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        mem.write_u64(16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(mem.read_u64(16).unwrap(), 0xdead_beef_cafe_f00d);
        mem.write_u8(3, 0x7f).unwrap();
        assert_eq!(mem.read_u8(3).unwrap(), 0x7f);
    }

    #[test]
    fn dirty_tracking_and_clearing() {
        let mut mem = GuestMemory::new(4 * PAGE_SIZE as u64);
        mem.write_u8(2 * PAGE_SIZE as u64, 1).unwrap();
        assert_eq!(mem.dirty_chunks(), vec![2 * CHUNKS_PER_PAGE]);
        mem.clear_dirty();
        assert!(mem.dirty_chunks().is_empty());
        mem.mark_all_dirty();
        assert_eq!(mem.dirty_chunks().len(), 4 * CHUNKS_PER_PAGE);
    }

    #[test]
    fn chunk_hash_changes_with_content() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let before = mem.chunk_hash(0).unwrap();
        mem.write_u8(100, 42).unwrap();
        assert_ne!(before, mem.chunk_hash(0).unwrap());
        // A write to chunk 0 leaves chunk 1's hash alone.
        assert_eq!(
            mem.chunk_hash(1).unwrap(),
            sha256(&[0u8; CHUNK_SIZE]),
            "untouched chunk hash must be the zero-chunk hash"
        );
        assert!(mem.chunk_hash(CHUNKS_PER_PAGE + 5).is_none());
    }

    #[test]
    fn chunk_hash_cache_tracks_writes_not_dirty_bits() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let h0 = mem.chunk_hash(0).unwrap();
        // Repeated reads return the memoised value.
        assert_eq!(mem.chunk_hash(0).unwrap(), h0);
        // Clearing dirty bits must NOT invalidate the hash cache...
        mem.write_u8(5, 1).unwrap();
        let h1 = mem.chunk_hash(0).unwrap();
        assert_ne!(h0, h1);
        mem.clear_dirty();
        assert_eq!(mem.chunk_hash(0).unwrap(), h1);
        // ...but any write path must.
        mem.write_u8(5, 2).unwrap();
        assert_ne!(mem.chunk_hash(0).unwrap(), h1);
        let page = vec![7u8; PAGE_SIZE];
        mem.set_page_from_slice(1, &page).unwrap();
        assert_eq!(
            mem.chunk_hash(CHUNKS_PER_PAGE).unwrap(),
            sha256(&page[..CHUNK_SIZE])
        );
        assert!(mem.set_page_from_slice(1, &page[1..]).is_err());
        assert!(mem
            .set_chunk_from_slice(0, &page[..CHUNK_SIZE - 1])
            .is_err());
        // The cached hash always equals a fresh hash of the contents.
        for i in 0..mem.chunk_count() {
            assert_eq!(mem.chunk_hash(i).unwrap(), sha256(mem.chunk(i).unwrap()));
        }
    }

    #[test]
    fn prime_chunk_hashes_fills_cache_correctly() {
        let mut mem = GuestMemory::new(4 * PAGE_SIZE as u64);
        mem.write_u8(CHUNK_SIZE as u64 * 7 + 3, 9).unwrap();
        let all: Vec<usize> = (0..mem.chunk_count()).collect();
        // Out-of-range indices are ignored, not a panic.
        let mut with_oob = all.clone();
        with_oob.push(mem.chunk_count() + 10);
        mem.prime_chunk_hashes(&with_oob);
        for i in all {
            assert_eq!(mem.chunk_hash(i).unwrap(), sha256(mem.chunk(i).unwrap()));
        }
    }

    #[test]
    fn set_page_restores_content() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xaa;
        page[PAGE_SIZE - 1] = 0xbb;
        mem.set_page(1, &page).unwrap();
        assert_eq!(mem.read_u8(PAGE_SIZE as u64).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(2 * PAGE_SIZE as u64 - 1).unwrap(), 0xbb);
        assert!(mem.set_page(9, &page).is_err());
    }

    #[test]
    fn set_chunk_restores_content() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let mut chunk = vec![0u8; CHUNK_SIZE];
        chunk[0] = 0xcc;
        mem.set_chunk_from_slice(3, &chunk).unwrap();
        assert_eq!(mem.read_u8(3 * CHUNK_SIZE as u64).unwrap(), 0xcc);
        assert_eq!(mem.dirty_chunks(), vec![3]);
        assert!(mem.set_chunk_from_slice(CHUNKS_PER_PAGE, &chunk).is_err());
    }

    #[test]
    fn staged_chunk_reports_hash_before_contents() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let authentic = vec![7u8; CHUNK_SIZE];
        let hash = sha256(&authentic);
        let idx = CHUNKS_PER_PAGE + 2; // page 1, chunk 2
        mem.stage_lazy_chunk(idx, authentic.clone(), hash).unwrap();
        // The root-relevant hash is already the staged one, while the raw
        // chunk still holds the local (stale) bytes.
        assert_eq!(mem.chunk_hash(idx).unwrap(), hash);
        assert_eq!(mem.chunk(idx).unwrap()[0], 0);
        assert_eq!(mem.staged_chunk_count(), 1);
        assert!(mem.faulted_chunks().is_empty());
        // First read faults the contents in.
        let addr = (idx * CHUNK_SIZE) as u64 + 5;
        assert_eq!(mem.read_u8(addr).unwrap(), 7);
        assert_eq!(mem.faulted_chunks(), &[idx]);
        assert_eq!(mem.staged_chunk_count(), 0);
        assert_eq!(mem.chunk(idx).unwrap()[0], 7);
        // The chunk is not dirty: it equals its at-snapshot contents.
        assert!(mem.dirty_chunks().is_empty());
        assert_eq!(mem.chunk_hash(idx).unwrap(), hash);
    }

    #[test]
    fn access_beside_staged_chunk_does_not_fault_it() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let authentic = vec![9u8; CHUNK_SIZE];
        mem.stage_lazy_chunk(4, authentic.clone(), sha256(&authentic))
            .unwrap();
        // Reads and writes in *other* chunks of the same page leave the
        // staged chunk untransferred — the whole point of sub-page faulting.
        mem.write_u8(0, 1).unwrap();
        assert_eq!(mem.read_u8(5 * CHUNK_SIZE as u64).unwrap(), 0);
        assert_eq!(mem.staged_chunk_count(), 1);
        assert!(mem.faulted_chunks().is_empty());
        // Touching the staged chunk itself faults it in.
        assert_eq!(mem.read_u8(4 * CHUNK_SIZE as u64 + 1).unwrap(), 9);
        assert_eq!(mem.faulted_chunks(), &[4]);
    }

    #[test]
    fn staged_chunk_faults_in_on_partial_write() {
        let mut mem = GuestMemory::new(2 * PAGE_SIZE as u64);
        let mut authentic = vec![0u8; CHUNK_SIZE];
        authentic[0] = 0xaa;
        authentic[100] = 0xbb;
        mem.stage_lazy_chunk(0, authentic.clone(), sha256(&authentic))
            .unwrap();
        // A partial write must land on top of the authentic bytes.
        mem.write_u8(1, 0xcc).unwrap();
        assert_eq!(mem.faulted_chunks(), &[0]);
        assert_eq!(mem.read_u8(0).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(1).unwrap(), 0xcc);
        assert_eq!(mem.read_u8(100).unwrap(), 0xbb);
        // Now the chunk *is* dirty (the write changed it) and the hash cache
        // was invalidated by the write path.
        assert_eq!(mem.dirty_chunks(), vec![0]);
        let mut expected = authentic;
        expected[1] = 0xcc;
        assert_eq!(mem.chunk_hash(0).unwrap(), sha256(&expected));
    }

    #[test]
    fn wholesale_overwrite_drops_staging_without_fault() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let authentic = vec![9u8; CHUNK_SIZE];
        mem.stage_lazy_chunk(0, authentic.clone(), sha256(&authentic))
            .unwrap();
        let replacement = vec![3u8; CHUNK_SIZE];
        mem.set_chunk_from_slice(0, &replacement).unwrap();
        // The staged contents were never needed: no fault recorded.
        assert!(mem.faulted_chunks().is_empty());
        assert_eq!(mem.staged_chunk_count(), 0);
        assert_eq!(mem.chunk_hash(0).unwrap(), sha256(&replacement));
        // set_page_from_slice drops staged chunks across the page too.
        let mut mem2 = GuestMemory::new(PAGE_SIZE as u64);
        mem2.stage_lazy_chunk(5, authentic.clone(), sha256(&authentic))
            .unwrap();
        mem2.set_page_from_slice(0, &[1u8; PAGE_SIZE]).unwrap();
        assert!(mem2.faulted_chunks().is_empty());
        assert_eq!(mem2.staged_chunk_count(), 0);
    }

    #[test]
    fn write_fully_covering_staged_chunk_drops_staging_without_fault() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        let authentic = vec![9u8; CHUNK_SIZE];
        mem.stage_lazy_chunk(2, authentic.clone(), sha256(&authentic))
            .unwrap();
        mem.stage_lazy_chunk(3, authentic.clone(), sha256(&authentic))
            .unwrap();
        // A write spanning all of chunk 2 and the first byte of chunk 3:
        // chunk 2's staged contents are never needed (no fault, no
        // transfer); chunk 3 is partially covered and must fault in.
        let data = vec![0xEEu8; CHUNK_SIZE + 1];
        mem.write(2 * CHUNK_SIZE as u64, &data).unwrap();
        assert_eq!(mem.faulted_chunks(), &[3]);
        assert_eq!(mem.staged_chunk_count(), 0);
        assert_eq!(mem.read_u8(2 * CHUNK_SIZE as u64).unwrap(), 0xEE);
        assert_eq!(mem.read_u8(3 * CHUNK_SIZE as u64).unwrap(), 0xEE);
        assert_eq!(mem.read_u8(3 * CHUNK_SIZE as u64 + 1).unwrap(), 9);
        assert_eq!(mem.dirty_chunks(), vec![2, 3]);
        for c in [2usize, 3] {
            assert_eq!(mem.chunk_hash(c).unwrap(), sha256(mem.chunk(c).unwrap()));
        }
    }

    #[test]
    fn stage_lazy_chunk_validates_inputs() {
        let mut mem = GuestMemory::new(PAGE_SIZE as u64);
        assert!(mem
            .stage_lazy_chunk(0, vec![0u8; 5], sha256(&[0u8; 5]))
            .is_err());
        let chunk = vec![0u8; CHUNK_SIZE];
        assert!(mem
            .stage_lazy_chunk(CHUNKS_PER_PAGE, chunk.clone(), sha256(&chunk))
            .is_err());
    }
}
