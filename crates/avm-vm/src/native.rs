//! Native guest kernels: deterministic Rust programs driven through the same
//! device interface as bytecode guests.
//!
//! The paper runs full Windows XP images with Counterstrike or MySQL inside
//! the AVM.  Reproducing those binaries is out of scope, so the richer
//! workloads in this repository (the game and the database server) are
//! written as *guest kernels*: Rust state machines that interact with the
//! outside world exclusively through [`GuestCtx`] — the virtual clock, NIC,
//! input queue, disk and console.  Because every input arrives through those
//! devices and is recorded by the AVMM, native guests replay exactly like
//! bytecode guests; DESIGN.md documents this substitution.
//!
//! Determinism contract for implementors: `step` must depend only on the
//! kernel's own state and on values obtained from the [`GuestCtx`]; it must
//! not read wall-clock time, environment variables, thread scheduling or any
//! other host state, and it must not use randomness that is not derived from
//! device inputs.  `save_state`/`restore_state` must capture the complete
//! kernel state so that a restored kernel continues bit-identically.

use crate::devices::{DeviceState, InputEvent};
use crate::error::{VmError, VmResult};
use crate::exit::VmExit;
use crate::mem::GuestMemory;

/// Result of one native guest step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestStep {
    /// The kernel did `cost` abstract instructions worth of work.
    Ran {
        /// Number of machine steps this work accounts for (must be ≥ 1).
        cost: u64,
    },
    /// The kernel asked for the clock and must wait for the hypervisor.
    WaitingClock,
    /// The kernel has nothing to do until new input is injected.
    Idle,
    /// The kernel has finished; the machine halts.
    Halted,
}

/// Execution context handed to a native guest kernel on every step.
///
/// All interactions with the outside world go through this context; outputs
/// are collected and surfaced as [`VmExit`]s by the machine.
pub struct GuestCtx<'a> {
    mem: &'a mut GuestMemory,
    dev: &'a mut DeviceState,
    outputs: Vec<VmExit>,
}

impl<'a> GuestCtx<'a> {
    /// Creates a context over the machine's memory and devices.
    ///
    /// Exposed publicly so guest kernels can be unit-tested standalone,
    /// without constructing a full [`crate::machine::Machine`].
    pub fn new(mem: &'a mut GuestMemory, dev: &'a mut DeviceState) -> GuestCtx<'a> {
        GuestCtx {
            mem,
            dev,
            outputs: Vec::new(),
        }
    }

    /// Consumes the context, returning the outputs produced during the step.
    pub fn into_outputs(self) -> Vec<VmExit> {
        self.outputs
    }

    /// Attempts to read the virtual clock.
    ///
    /// Returns `None` when the value must come from the hypervisor first; the
    /// kernel should then return [`GuestStep::WaitingClock`] and retry the
    /// read on its next step.
    pub fn read_clock(&mut self) -> Option<u64> {
        self.dev.clock.guest_read()
    }

    /// Polls the NIC for the next received packet.
    pub fn recv_packet(&mut self) -> Option<Vec<u8>> {
        self.dev.nic.guest_recv()
    }

    /// True if a received packet is waiting.
    pub fn has_packet(&self) -> bool {
        self.dev.nic.has_rx()
    }

    /// Transmits a network packet (externally visible output).
    pub fn send_packet(&mut self, data: Vec<u8>) {
        self.dev.nic.note_tx(data.len());
        self.outputs.push(VmExit::NetTx(data));
    }

    /// Polls the local input queue.
    pub fn poll_input(&mut self) -> Option<InputEvent> {
        self.dev.input.guest_poll()
    }

    /// Writes diagnostic output to the console.
    pub fn console(&mut self, data: &[u8]) {
        self.dev.console.write(data);
        self.outputs.push(VmExit::ConsoleOut(data.to_vec()));
    }

    /// Reads from the virtual disk.
    pub fn disk_read(&mut self, offset: u64, buf: &mut [u8]) -> VmResult<()> {
        self.dev.disk.read(offset, buf)
    }

    /// Writes to the virtual disk.
    pub fn disk_write(&mut self, offset: u64, data: &[u8]) -> VmResult<()> {
        self.dev.disk.write(offset, data)
    }

    /// Size of the virtual disk in bytes.
    pub fn disk_size(&self) -> u64 {
        self.dev.disk.size()
    }

    /// Direct access to guest RAM (rarely needed by native kernels).
    pub fn memory(&mut self) -> &mut GuestMemory {
        self.mem
    }
}

/// A deterministic native guest program.
pub trait GuestKernel: Send {
    /// Executes one step of the kernel.
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestStep;

    /// Serializes the complete kernel state.
    fn save_state(&self) -> Vec<u8>;

    /// Restores state produced by [`GuestKernel::save_state`].
    fn restore_state(&mut self, bytes: &[u8]) -> VmResult<()>;

    /// Short, stable name of the kernel (used in diagnostics).
    fn name(&self) -> &str;
}

/// CPU adapter that drives a [`GuestKernel`] and implements the machine's
/// CPU interface.
pub struct NativeCpu {
    kernel: Box<dyn GuestKernel>,
    halted: bool,
}

impl NativeCpu {
    /// Wraps a guest kernel.
    pub fn new(kernel: Box<dyn GuestKernel>) -> NativeCpu {
        NativeCpu {
            kernel,
            halted: false,
        }
    }

    /// Access to the wrapped kernel (used by tests and workload inspectors).
    pub fn kernel(&self) -> &dyn GuestKernel {
        self.kernel.as_ref()
    }
}

impl crate::machine::CpuCore for NativeCpu {
    fn step(
        &mut self,
        mem: &mut GuestMemory,
        dev: &mut DeviceState,
    ) -> VmResult<crate::machine::CpuAction> {
        use crate::machine::CpuAction;
        if self.halted {
            return Err(VmError::Halted);
        }
        let mut ctx = GuestCtx::new(mem, dev);
        let step = self.kernel.step(&mut ctx);
        let outputs = ctx.into_outputs();
        let action = match step {
            GuestStep::Ran { cost } => CpuAction::Ran {
                cost: cost.max(1),
                outputs,
            },
            GuestStep::WaitingClock => CpuAction::Pause {
                exit: VmExit::ClockRead,
                outputs,
            },
            GuestStep::Idle => CpuAction::Pause {
                exit: VmExit::Idle,
                outputs,
            },
            GuestStep::Halted => {
                self.halted = true;
                CpuAction::Pause {
                    exit: VmExit::Halted,
                    outputs,
                }
            }
        };
        Ok(action)
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(u8::from(self.halted));
        out.extend_from_slice(&self.kernel.save_state());
        out
    }

    fn restore_state(&mut self, bytes: &[u8]) -> VmResult<()> {
        let (&halted, rest) = bytes
            .split_first()
            .ok_or(VmError::CorruptState("empty native cpu state"))?;
        self.halted = halted != 0;
        self.kernel.restore_state(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{CpuAction, CpuCore};

    /// A trivial kernel: counts steps, echoes received packets, reads the
    /// clock every 4th step.
    struct EchoKernel {
        steps: u64,
    }

    impl GuestKernel for EchoKernel {
        fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestStep {
            if self.steps % 4 == 3 {
                match ctx.read_clock() {
                    None => return GuestStep::WaitingClock,
                    Some(t) => ctx.console(format!("t={t}").as_bytes()),
                }
            }
            if let Some(pkt) = ctx.recv_packet() {
                ctx.send_packet(pkt);
            }
            self.steps += 1;
            GuestStep::Ran { cost: 2 }
        }

        fn save_state(&self) -> Vec<u8> {
            self.steps.to_le_bytes().to_vec()
        }

        fn restore_state(&mut self, bytes: &[u8]) -> VmResult<()> {
            let arr: [u8; 8] = bytes
                .try_into()
                .map_err(|_| VmError::CorruptState("echo kernel state"))?;
            self.steps = u64::from_le_bytes(arr);
            Ok(())
        }

        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn native_cpu_surfaces_outputs_and_waits() {
        let mut mem = GuestMemory::new(4096);
        let mut dev = DeviceState::new(b"");
        let mut cpu = NativeCpu::new(Box::new(EchoKernel { steps: 0 }));

        // First step: no packet, just runs.
        match cpu.step(&mut mem, &mut dev).unwrap() {
            CpuAction::Ran { cost, outputs } => {
                assert_eq!(cost, 2);
                assert!(outputs.is_empty());
            }
            other => panic!("unexpected action {other:?}"),
        }

        // Inject a packet; the next step echoes it.
        dev.nic.inject(vec![9, 9, 9]);
        match cpu.step(&mut mem, &mut dev).unwrap() {
            CpuAction::Ran { outputs, .. } => {
                assert_eq!(outputs, vec![VmExit::NetTx(vec![9, 9, 9])]);
            }
            other => panic!("unexpected action {other:?}"),
        }

        // Step 3 (steps counter == 3 on the 4th call): requests the clock.
        cpu.step(&mut mem, &mut dev).unwrap();
        match cpu.step(&mut mem, &mut dev).unwrap() {
            CpuAction::Pause { exit, .. } => assert_eq!(exit, VmExit::ClockRead),
            other => panic!("unexpected action {other:?}"),
        }
        dev.clock.provide(1234).unwrap();
        match cpu.step(&mut mem, &mut dev).unwrap() {
            CpuAction::Ran { outputs, .. } => {
                assert_eq!(outputs, vec![VmExit::ConsoleOut(b"t=1234".to_vec())]);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn native_cpu_state_roundtrip() {
        let mut mem = GuestMemory::new(4096);
        let mut dev = DeviceState::new(b"");
        let mut cpu = NativeCpu::new(Box::new(EchoKernel { steps: 0 }));
        cpu.step(&mut mem, &mut dev).unwrap();
        cpu.step(&mut mem, &mut dev).unwrap();
        let state = cpu.save_state();

        let mut restored = NativeCpu::new(Box::new(EchoKernel { steps: 0 }));
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.save_state(), state);
        assert!(restored.restore_state(&[1]).is_err());
        assert!(restored.restore_state(&[]).is_err());
    }
}
