//! Error types for the virtual machine substrate.

/// Errors raised by the virtual machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A guest memory access fell outside the configured RAM size.
    MemoryOutOfRange {
        /// Faulting guest-physical address.
        addr: u64,
        /// Length of the access.
        len: usize,
        /// Total memory size.
        mem_size: u64,
    },
    /// The bytecode CPU decoded an unknown opcode.
    IllegalInstruction {
        /// Program counter of the faulting instruction.
        pc: u64,
        /// The opcode byte.
        opcode: u8,
    },
    /// Integer division by zero in the guest.
    DivisionByZero {
        /// Program counter of the faulting instruction.
        pc: u64,
    },
    /// The guest stack overflowed or underflowed.
    StackFault {
        /// Program counter of the faulting instruction.
        pc: u64,
    },
    /// An operation was attempted while the machine awaits a host response
    /// (e.g. `run` called while a clock read is outstanding).
    PendingHostResponse,
    /// A host response was delivered although none was requested.
    UnexpectedHostResponse,
    /// The machine is halted and cannot run further.
    Halted,
    /// A disk access was out of range.
    DiskOutOfRange {
        /// Faulting sector.
        sector: u64,
        /// Number of sectors on the disk.
        sectors: u64,
    },
    /// A snapshot or saved state blob could not be restored.
    CorruptState(&'static str),
    /// A native guest image referenced a program that is not registered.
    UnknownGuest(String),
    /// Assembler or image construction error.
    InvalidImage(String),
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::MemoryOutOfRange {
                addr,
                len,
                mem_size,
            } => write!(
                f,
                "guest memory access out of range: addr={addr:#x} len={len} mem_size={mem_size:#x}"
            ),
            VmError::IllegalInstruction { pc, opcode } => {
                write!(f, "illegal instruction {opcode:#04x} at pc={pc:#x}")
            }
            VmError::DivisionByZero { pc } => write!(f, "division by zero at pc={pc:#x}"),
            VmError::StackFault { pc } => write!(f, "stack fault at pc={pc:#x}"),
            VmError::PendingHostResponse => {
                write!(f, "machine is waiting for a host response")
            }
            VmError::UnexpectedHostResponse => {
                write!(f, "host response delivered but none was requested")
            }
            VmError::Halted => write!(f, "machine is halted"),
            VmError::DiskOutOfRange { sector, sectors } => {
                write!(f, "disk access out of range: sector={sector} of {sectors}")
            }
            VmError::CorruptState(what) => write!(f, "corrupt state: {what}"),
            VmError::UnknownGuest(name) => write!(f, "unknown native guest '{name}'"),
            VmError::InvalidImage(msg) => write!(f, "invalid image: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result alias for VM operations.
pub type VmResult<T> = Result<T, VmError>;
