//! Guest packet addressing header.
//!
//! Guests address their network packets with a minimal header — the
//! equivalent of the IP/UDP headers a real guest would emit — consisting of
//! a destination name length byte, the destination name, and the payload.
//! The AVMM parses only this header (to route the packet and fill in the
//! envelope's destination); the complete packet, header included, is what
//! gets logged, transmitted and injected into the receiving guest.

/// Maximum destination-name length.
pub const MAX_DEST_LEN: usize = 255;

/// Builds a guest packet addressed to `dest` carrying `body`.
pub fn encode_guest_packet(dest: &str, body: &[u8]) -> Vec<u8> {
    assert!(dest.len() <= MAX_DEST_LEN, "destination name too long");
    let mut out = Vec::with_capacity(1 + dest.len() + body.len());
    out.push(dest.len() as u8);
    out.extend_from_slice(dest.as_bytes());
    out.extend_from_slice(body);
    out
}

/// Parses the addressing header of a guest packet.
///
/// Returns the destination name and the body, or `None` if the header is
/// malformed.
pub fn parse_guest_packet(packet: &[u8]) -> Option<(String, &[u8])> {
    let (&len, rest) = packet.split_first()?;
    let len = len as usize;
    if rest.len() < len {
        return None;
    }
    let dest = core::str::from_utf8(&rest[..len]).ok()?.to_string();
    Some((dest, &rest[len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pkt = encode_guest_packet("server", b"move north");
        let (dest, body) = parse_guest_packet(&pkt).unwrap();
        assert_eq!(dest, "server");
        assert_eq!(body, b"move north");
    }

    #[test]
    fn empty_body_and_empty_dest() {
        let pkt = encode_guest_packet("", b"");
        let (dest, body) = parse_guest_packet(&pkt).unwrap();
        assert_eq!(dest, "");
        assert!(body.is_empty());
    }

    #[test]
    fn malformed_packets_rejected() {
        assert!(parse_guest_packet(&[]).is_none());
        assert!(parse_guest_packet(&[10, b'a', b'b']).is_none());
        assert!(parse_guest_packet(&[2, 0xff, 0xfe]).is_none());
    }

    #[test]
    #[should_panic(expected = "destination name too long")]
    fn overlong_destination_panics() {
        let long = "x".repeat(300);
        encode_guest_packet(&long, b"");
    }
}
