//! VM exits: the hypervisor-visible events a running machine can produce.

/// Reason a call to [`crate::machine::Machine::run`] returned.
///
/// This mirrors the exit-driven interface of hardware virtualization: the
/// machine runs until either the guest needs something from the hypervisor,
/// produces externally visible output, or the requested stop condition is
/// reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmExit {
    /// The guest requested the current time.  The hypervisor must call
    /// [`crate::machine::Machine::provide_clock`] before running again.
    /// Each completed read is one nondeterministic input.
    ClockRead,
    /// The guest transmitted a network packet (externally visible output).
    NetTx(Vec<u8>),
    /// The guest wrote diagnostic output to the console.
    ConsoleOut(Vec<u8>),
    /// The guest is idle: it polled for input (network or local) and none
    /// was available.  No forward progress will occur until an injection.
    Idle,
    /// The requested stop condition (step limit) was reached.
    StepLimit,
    /// The guest executed a halt instruction; the machine will not run again.
    Halted,
}

impl VmExit {
    /// True if this exit represents externally visible output.
    pub fn is_output(&self) -> bool {
        matches!(self, VmExit::NetTx(_) | VmExit::ConsoleOut(_))
    }

    /// Short label used in logs and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            VmExit::ClockRead => "clock-read",
            VmExit::NetTx(_) => "net-tx",
            VmExit::ConsoleOut(_) => "console-out",
            VmExit::Idle => "idle",
            VmExit::StepLimit => "step-limit",
            VmExit::Halted => "halted",
        }
    }
}

/// How long a [`crate::machine::Machine::run`] call may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Run until the machine produces an exit on its own.
    Unbounded,
    /// Run until the step counter reaches exactly this value (used by the
    /// replayer to position asynchronous injections precisely).
    AtStep(u64),
}

impl StopCondition {
    /// Returns the step bound, if any.
    pub fn step_bound(&self) -> Option<u64> {
        match self {
            StopCondition::Unbounded => None,
            StopCondition::AtStep(s) => Some(*s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_classification() {
        assert!(VmExit::NetTx(vec![1]).is_output());
        assert!(VmExit::ConsoleOut(vec![]).is_output());
        assert!(!VmExit::ClockRead.is_output());
        assert!(!VmExit::Idle.is_output());
        assert!(!VmExit::Halted.is_output());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(VmExit::ClockRead.label(), "clock-read");
        assert_eq!(VmExit::StepLimit.label(), "step-limit");
    }

    #[test]
    fn stop_condition_bounds() {
        assert_eq!(StopCondition::Unbounded.step_bound(), None);
        assert_eq!(StopCondition::AtStep(7).step_bound(), Some(7));
    }
}
