//! VM images and the native guest registry.
//!
//! A [`VmImage`] is the auditable identity of the software a machine runs:
//! the paper's assumption 4 (§4.1) is that an auditor "has access to a
//! reference copy of the VM image that the machine is expected to use".
//! Replay instantiates a fresh machine from that reference image; if the
//! audited machine actually ran something else (a cheat module, a patched
//! binary), replay diverges.

use std::collections::HashMap;
use std::sync::Arc;

use avm_crypto::sha256::{Digest, Sha256};

use crate::error::{VmError, VmResult};
use crate::native::GuestKernel;

/// What kind of guest the image contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageKind {
    /// A bytecode program (the "unmodified binary" case).
    Bytecode {
        /// The program bytes.
        code: Vec<u8>,
        /// Guest-physical address the code is loaded at.
        load_addr: u64,
        /// Initial program counter.
        entry: u64,
    },
    /// A native guest kernel, identified by registry name plus an opaque
    /// configuration blob (its initial state / settings).
    Native {
        /// Registry name of the guest program.
        program: String,
        /// Configuration passed to the factory.
        config: Vec<u8>,
    },
}

/// A complete, content-addressed VM image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmImage {
    /// Human-readable image name (e.g. "game-client-v1").
    pub name: String,
    /// Guest RAM size in bytes.
    pub mem_size: u64,
    /// Initial disk contents.
    pub disk: Vec<u8>,
    /// The guest program.
    pub kind: ImageKind,
}

impl VmImage {
    /// Creates a bytecode image.
    pub fn bytecode(
        name: &str,
        mem_size: u64,
        code: Vec<u8>,
        load_addr: u64,
        entry: u64,
    ) -> VmImage {
        VmImage {
            name: name.to_string(),
            mem_size,
            disk: Vec::new(),
            kind: ImageKind::Bytecode {
                code,
                load_addr,
                entry,
            },
        }
    }

    /// Creates a native-guest image.
    pub fn native(name: &str, mem_size: u64, program: &str, config: Vec<u8>) -> VmImage {
        VmImage {
            name: name.to_string(),
            mem_size,
            disk: Vec::new(),
            kind: ImageKind::Native {
                program: program.to_string(),
                config,
            },
        }
    }

    /// Attaches initial disk contents.
    pub fn with_disk(mut self, disk: Vec<u8>) -> VmImage {
        self.disk = disk;
        self
    }

    /// Content digest of the image: two parties agree on an image by
    /// comparing this value (e.g. the "official VM snapshot" distributed
    /// before a game, §5.2).
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"avm-image-v1");
        h.update(&(self.name.len() as u64).to_le_bytes());
        h.update(self.name.as_bytes());
        h.update(&self.mem_size.to_le_bytes());
        h.update(&(self.disk.len() as u64).to_le_bytes());
        h.update(&self.disk);
        match &self.kind {
            ImageKind::Bytecode {
                code,
                load_addr,
                entry,
            } => {
                h.update(&[0u8]);
                h.update(&(code.len() as u64).to_le_bytes());
                h.update(code);
                h.update(&load_addr.to_le_bytes());
                h.update(&entry.to_le_bytes());
            }
            ImageKind::Native { program, config } => {
                h.update(&[1u8]);
                h.update(&(program.len() as u64).to_le_bytes());
                h.update(program.as_bytes());
                h.update(&(config.len() as u64).to_le_bytes());
                h.update(config);
            }
        }
        h.finalize()
    }
}

/// Factory type for native guest kernels.
pub type GuestFactory = Arc<dyn Fn(&[u8]) -> VmResult<Box<dyn GuestKernel>> + Send + Sync>;

/// Registry resolving native guest program names to factories.
///
/// The registry plays the role of "the software everyone agrees on": both the
/// recording AVMM and every auditor construct guests through the same
/// registry, so a given image always yields the same initial machine.
#[derive(Clone, Default)]
pub struct GuestRegistry {
    factories: HashMap<String, GuestFactory>,
}

impl GuestRegistry {
    /// Creates an empty registry.
    pub fn new() -> GuestRegistry {
        GuestRegistry::default()
    }

    /// Registers a guest program factory under `name`.
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&[u8]) -> VmResult<Box<dyn GuestKernel>> + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Arc::new(factory));
    }

    /// Instantiates the guest program `name` with `config`.
    pub fn instantiate(&self, name: &str, config: &[u8]) -> VmResult<Box<dyn GuestKernel>> {
        match self.factories.get(name) {
            Some(f) => f(config),
            None => Err(VmError::UnknownGuest(name.to_string())),
        }
    }

    /// Names of all registered programs (sorted, for stable diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

impl core::fmt::Debug for GuestRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("GuestRegistry")
            .field("programs", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::native::{GuestCtx, GuestStep};
    use crate::StopCondition;

    struct CountKernel {
        n: u64,
        limit: u64,
    }

    impl GuestKernel for CountKernel {
        fn step(&mut self, _ctx: &mut GuestCtx<'_>) -> GuestStep {
            self.n += 1;
            if self.n >= self.limit {
                GuestStep::Halted
            } else {
                GuestStep::Ran { cost: 1 }
            }
        }

        fn save_state(&self) -> Vec<u8> {
            let mut out = self.n.to_le_bytes().to_vec();
            out.extend_from_slice(&self.limit.to_le_bytes());
            out
        }

        fn restore_state(&mut self, bytes: &[u8]) -> VmResult<()> {
            if bytes.len() != 16 {
                return Err(VmError::CorruptState("count kernel"));
            }
            self.n = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            self.limit = u64::from_le_bytes(bytes[8..].try_into().unwrap());
            Ok(())
        }

        fn name(&self) -> &str {
            "count"
        }
    }

    fn registry() -> GuestRegistry {
        let mut reg = GuestRegistry::new();
        reg.register("count", |config| {
            let limit = if config.len() == 8 {
                u64::from_le_bytes(config.try_into().unwrap())
            } else {
                10
            };
            Ok(Box::new(CountKernel { n: 0, limit }))
        });
        reg
    }

    #[test]
    fn image_digest_is_content_addressed() {
        let a = VmImage::bytecode("img", 4096, vec![1, 2, 3], 0, 0);
        let b = VmImage::bytecode("img", 4096, vec![1, 2, 3], 0, 0);
        let c = VmImage::bytecode("img", 4096, vec![1, 2, 4], 0, 0);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        let d = a.clone().with_disk(vec![9]);
        assert_ne!(a.digest(), d.digest());
        let n1 = VmImage::native("img", 4096, "count", vec![]);
        let n2 = VmImage::native("img", 4096, "count", vec![1]);
        assert_ne!(n1.digest(), n2.digest());
        assert_ne!(a.digest(), n1.digest());
    }

    #[test]
    fn native_image_instantiates_through_registry() {
        let image = VmImage::native("counter", 4096, "count", 3u64.to_le_bytes().to_vec());
        let mut m = Machine::from_image(&image, &registry()).unwrap();
        assert_eq!(
            m.run(StopCondition::Unbounded).unwrap(),
            crate::VmExit::Halted
        );
        assert_eq!(m.step_count(), 2); // two Ran steps before the halt pause
    }

    #[test]
    fn unknown_guest_is_rejected() {
        let image = VmImage::native("x", 4096, "missing", vec![]);
        assert_eq!(
            Machine::from_image(&image, &GuestRegistry::new()).unwrap_err(),
            VmError::UnknownGuest("missing".to_string())
        );
    }

    #[test]
    fn bytecode_image_loads_and_runs() {
        let code = crate::bytecode::assemble("movi r0, 7\nhalt", 0x100).unwrap();
        let image = VmImage::bytecode("tiny", 64 * 1024, code, 0x100, 0x100);
        let mut m = Machine::from_image(&image, &GuestRegistry::new()).unwrap();
        assert_eq!(
            m.run(StopCondition::Unbounded).unwrap(),
            crate::VmExit::Halted
        );
    }

    #[test]
    fn bytecode_image_with_bad_entry_rejected() {
        let code = crate::bytecode::assemble("halt", 0).unwrap();
        let image = VmImage::bytecode("bad", 4096, code, 0x100, 0x500);
        assert!(matches!(
            Machine::from_image(&image, &GuestRegistry::new()).unwrap_err(),
            VmError::InvalidImage(_)
        ));
    }

    #[test]
    fn registry_lists_programs() {
        let reg = registry();
        assert_eq!(reg.names(), vec!["count".to_string()]);
        assert!(format!("{reg:?}").contains("count"));
    }
}
