//! A deterministic multiplayer arena-shooter guest — the Counterstrike
//! stand-in used by the paper's evaluation (§5, §6).
//!
//! The paper runs Counterstrike 1.6 inside the AVM and detects real cheats
//! by auditing players.  This crate provides the reproduction's equivalent
//! workload: a client/server game whose clients render frames, read the
//! clock, exchange small state-update packets with the server (Counterstrike
//! clients send 50–60-byte packets at ~26 packets/s, §6.7), and can be
//! "patched" with any of a catalogue of 26 cheats mirroring the paper's
//! survey (Table 1).
//!
//! Both the client and the server are [`avm_vm::GuestKernel`]s: fully
//! deterministic given their device inputs, so they record and replay under
//! the AVMM exactly like any other guest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cheats;
pub mod client;
pub mod config;
pub mod protocol;
pub mod server;

pub use cheats::{cheat_catalog, Cheat, CheatClass, CheatEffect, ResourceField};
pub use client::GameClient;
pub use config::{ClientConfig, ServerConfig};
pub use protocol::{ClientUpdate, ServerState};
pub use server::GameServer;

use avm_vm::{GuestRegistry, VmError, VmImage};
use avm_wire::{Decode, Encode};

/// Registry name of the game client guest program.
pub const CLIENT_PROGRAM: &str = "avm-game-client";
/// Registry name of the game server guest program.
pub const SERVER_PROGRAM: &str = "avm-game-server";
/// Guest RAM size used by game images.
pub const GAME_MEM_SIZE: u64 = 256 * 1024;

/// Returns a guest registry with the game client and server registered.
///
/// Every participant (players recording their execution, and auditors
/// replaying other players' logs) must use the same registry — it is part of
/// "the software everyone agrees on".
pub fn game_registry() -> GuestRegistry {
    let mut reg = GuestRegistry::new();
    reg.register(CLIENT_PROGRAM, |config| {
        let cfg = ClientConfig::decode_exact(config)
            .map_err(|_| VmError::InvalidImage("bad game client config".to_string()))?;
        Ok(Box::new(GameClient::new(cfg)))
    });
    reg.register(SERVER_PROGRAM, |config| {
        let cfg = ServerConfig::decode_exact(config)
            .map_err(|_| VmError::InvalidImage("bad game server config".to_string()))?;
        Ok(Box::new(GameServer::new(cfg)))
    });
    reg
}

/// Builds the agreed-upon ("official") client image for a player.
pub fn client_image(cfg: &ClientConfig) -> VmImage {
    VmImage::native(
        &format!("game-client-{}", cfg.player),
        GAME_MEM_SIZE,
        CLIENT_PROGRAM,
        cfg.encode_to_vec(),
    )
}

/// Builds the server image.
pub fn server_image(cfg: &ServerConfig) -> VmImage {
    VmImage::native(
        "game-server",
        GAME_MEM_SIZE,
        SERVER_PROGRAM,
        cfg.encode_to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_instantiates_both_programs() {
        let reg = game_registry();
        let client_cfg = ClientConfig::new("alice", "server");
        let server_cfg = ServerConfig::new("server", &["alice".to_string()]);
        assert!(reg
            .instantiate(CLIENT_PROGRAM, &client_cfg.encode_to_vec())
            .is_ok());
        assert!(reg
            .instantiate(SERVER_PROGRAM, &server_cfg.encode_to_vec())
            .is_ok());
        assert!(reg.instantiate(CLIENT_PROGRAM, b"garbage").is_err());
    }

    #[test]
    fn image_digests_depend_on_configuration() {
        let honest = client_image(&ClientConfig::new("alice", "server"));
        let same = client_image(&ClientConfig::new("alice", "server"));
        let mut cheat_cfg = ClientConfig::new("alice", "server");
        cheat_cfg.cheat = Some(0);
        let cheated = client_image(&cheat_cfg);
        assert_eq!(honest.digest(), same.digest());
        assert_ne!(honest.digest(), cheated.digest());
    }
}
