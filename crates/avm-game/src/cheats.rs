//! The cheat catalogue (paper Table 1).
//!
//! The paper examined 26 real Counterstrike cheats from public forums and
//! found that every one had to be installed inside the game image (and is
//! therefore detected by replay in its current implementation), and that at
//! least 4 of them additionally make the player's network-visible behaviour
//! inconsistent with *any* correct execution — those are detectable no
//! matter how they are implemented.
//!
//! This module reproduces that catalogue: 26 named cheats, each mapped to a
//! behavioural [`CheatEffect`] the cheating client applies, and classified
//! into the paper's two classes.

/// Which game resource a cheat pins to a constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceField {
    /// Ammunition (the paper's "unlimited ammunition" example).
    Ammo,
    /// Health ("unlimited health").
    Health,
}

/// The behavioural effect a cheat has on the client.
///
/// Every effect performs *at least* some extra work each tick (`extra work`
/// models the cheat code that executes inside the image), so even cheats
/// with no gameplay-visible effect shift the instruction stream and diverge
/// under replay — the mechanism by which class-1 cheats are caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheatEffect {
    /// Aim snaps onto the nearest opponent (forged-input style assistance).
    AimAssist {
        /// Extra steps of work per tick.
        extra_work: u64,
    },
    /// Reveals information the renderer would normally hide (wallhack, ESP).
    InfoReveal {
        /// Extra steps of work per tick.
        extra_work: u64,
    },
    /// Pins a resource to a fixed value after game logic has run.
    ResourcePin {
        /// Which resource is pinned.
        field: ResourceField,
        /// The pinned value.
        value: u32,
    },
    /// Fires every tick, ignoring the weapon cooldown.
    RapidFire,
    /// Moves `factor` times farther per tick than the game allows.
    SpeedMultiplier {
        /// Movement multiplier.
        factor: i64,
    },
    /// Jumps to a fixed location every `period` ticks.
    Teleport {
        /// Teleport period in ticks.
        period: u64,
    },
    /// Purely cosmetic or informational change; still executes extra code.
    Cosmetic {
        /// Extra steps of work per tick.
        extra_work: u64,
    },
    /// Delays or batches outgoing updates (lag-switch style).
    TimingManipulation {
        /// Number of ticks by which updates are delayed.
        delay_ticks: u64,
    },
}

/// The paper's two detection classes (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheatClass {
    /// Must be installed inside the AVM: detected in its current
    /// implementation because replay of the modified image diverges, but a
    /// re-engineered variant running outside the AVM could evade detection.
    InstallDetectable,
    /// Makes network-visible behaviour inconsistent with any correct
    /// execution: detected no matter how the cheat is implemented.
    DetectableAnyImplementation,
}

/// One catalogue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cheat {
    /// Catalogue index (0-based; stable, used in image configurations).
    pub id: u32,
    /// Human-readable name.
    pub name: &'static str,
    /// Behavioural effect on the client.
    pub effect: CheatEffect,
    /// Detection class.
    pub class: CheatClass,
}

/// Returns the full catalogue of 26 cheats.
pub fn cheat_catalog() -> Vec<Cheat> {
    use CheatClass::*;
    use CheatEffect::*;
    let entries: [(&'static str, CheatEffect, CheatClass); 26] = [
        ("aimbot", AimAssist { extra_work: 900 }, InstallDetectable),
        (
            "triggerbot",
            AimAssist { extra_work: 400 },
            InstallDetectable,
        ),
        (
            "silent-aim",
            AimAssist { extra_work: 700 },
            InstallDetectable,
        ),
        ("spinbot", AimAssist { extra_work: 500 }, InstallDetectable),
        ("anti-aim", AimAssist { extra_work: 300 }, InstallDetectable),
        (
            "wallhack",
            InfoReveal { extra_work: 1200 },
            InstallDetectable,
        ),
        (
            "esp-overlay",
            InfoReveal { extra_work: 800 },
            InstallDetectable,
        ),
        (
            "radar-hack",
            InfoReveal { extra_work: 350 },
            InstallDetectable,
        ),
        (
            "sound-esp",
            InfoReveal { extra_work: 250 },
            InstallDetectable,
        ),
        (
            "flash-block",
            InfoReveal { extra_work: 150 },
            InstallDetectable,
        ),
        (
            "smoke-block",
            InfoReveal { extra_work: 150 },
            InstallDetectable,
        ),
        (
            "unlimited-ammo",
            ResourcePin {
                field: ResourceField::Ammo,
                value: 100,
            },
            DetectableAnyImplementation,
        ),
        (
            "unlimited-health",
            ResourcePin {
                field: ResourceField::Health,
                value: 100,
            },
            DetectableAnyImplementation,
        ),
        ("rapid-fire", RapidFire, DetectableAnyImplementation),
        (
            "teleport",
            Teleport { period: 4 },
            DetectableAnyImplementation,
        ),
        (
            "speedhack",
            SpeedMultiplier { factor: 5 },
            InstallDetectable,
        ),
        (
            "bunnyhop-script",
            SpeedMultiplier { factor: 2 },
            InstallDetectable,
        ),
        ("no-recoil", Cosmetic { extra_work: 200 }, InstallDetectable),
        ("no-spread", Cosmetic { extra_work: 200 }, InstallDetectable),
        (
            "auto-reload",
            Cosmetic { extra_work: 100 },
            InstallDetectable,
        ),
        ("auto-duck", Cosmetic { extra_work: 100 }, InstallDetectable),
        (
            "skin-changer",
            Cosmetic { extra_work: 300 },
            InstallDetectable,
        ),
        (
            "fov-changer",
            Cosmetic { extra_work: 120 },
            InstallDetectable,
        ),
        (
            "crosshair-mod",
            Cosmetic { extra_work: 80 },
            InstallDetectable,
        ),
        (
            "lag-switch-module",
            TimingManipulation { delay_ticks: 3 },
            InstallDetectable,
        ),
        (
            "interp-exploit",
            TimingManipulation { delay_ticks: 1 },
            InstallDetectable,
        ),
    ];
    entries
        .into_iter()
        .enumerate()
        .map(|(id, (name, effect, class))| Cheat {
            id: id as u32,
            name,
            effect,
            class,
        })
        .collect()
}

/// Looks up a cheat by its catalogue id.
pub fn cheat_by_id(id: u32) -> Option<Cheat> {
    cheat_catalog().into_iter().find(|c| c.id == id)
}

/// Looks up a cheat by name.
pub fn cheat_by_name(name: &str) -> Option<Cheat> {
    cheat_catalog().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_1_counts() {
        let all = cheat_catalog();
        assert_eq!(all.len(), 26, "paper examined 26 cheats");
        let any_impl = all
            .iter()
            .filter(|c| c.class == CheatClass::DetectableAnyImplementation)
            .count();
        assert_eq!(
            any_impl, 4,
            "paper: at least 4 detectable in any implementation"
        );
        let install_only = all
            .iter()
            .filter(|c| c.class == CheatClass::InstallDetectable)
            .count();
        assert_eq!(install_only, 22);
    }

    #[test]
    fn ids_are_dense_and_names_unique() {
        let all = cheat_catalog();
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.id, i as u32);
        }
        let mut names: Vec<&str> = all.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn lookup_helpers() {
        assert_eq!(cheat_by_name("aimbot").unwrap().id, 0);
        assert_eq!(cheat_by_id(11).unwrap().name, "unlimited-ammo");
        assert!(cheat_by_id(99).is_none());
        assert!(cheat_by_name("legit-play").is_none());
    }

    #[test]
    fn the_three_example_cheats_from_the_paper_are_present() {
        // §5.3 describes an aimbot, a wallhack and unlimited ammunition.
        assert!(cheat_by_name("aimbot").is_some());
        assert!(cheat_by_name("wallhack").is_some());
        let ammo = cheat_by_name("unlimited-ammo").unwrap();
        assert_eq!(ammo.class, CheatClass::DetectableAnyImplementation);
    }
}
