//! The game's network protocol.
//!
//! Clients send small, frequent state updates to the server; the server
//! broadcasts an authoritative world snapshot back.  Payload sizes are kept
//! in the 50–60 byte range reported for Counterstrike clients (§6.7).

use avm_wire::{Decode, Encode, Reader, WireError, WireResult, Writer};

/// One client-to-server update packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientUpdate {
    /// Player name.
    pub player: String,
    /// Client tick number.
    pub tick: u64,
    /// Position.
    pub x: i64,
    /// Position.
    pub y: i64,
    /// Aim angle in millidegrees.
    pub aim: i64,
    /// Whether the player fired during this tick.
    pub fired: bool,
    /// Ammunition remaining after this tick.
    pub ammo: u32,
    /// Health the client believes it has.
    pub health: u32,
}

impl Encode for ClientUpdate {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.player);
        w.put_varint(self.tick);
        w.put_i64(self.x);
        w.put_i64(self.y);
        w.put_i64(self.aim);
        w.put_bool(self.fired);
        w.put_u32(self.ammo);
        w.put_u32(self.health);
    }
}

impl Decode for ClientUpdate {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(ClientUpdate {
            player: r.get_string()?,
            tick: r.get_varint()?,
            x: r.get_i64()?,
            y: r.get_i64()?,
            aim: r.get_i64()?,
            fired: r.get_bool()?,
            ammo: r.get_u32()?,
            health: r.get_u32()?,
        })
    }
}

/// Per-player state as known by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlayerState {
    /// Player name.
    pub player: String,
    /// Position.
    pub x: i64,
    /// Position.
    pub y: i64,
    /// Health.
    pub health: u32,
    /// Score (hits landed).
    pub score: u32,
}

impl Encode for PlayerState {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.player);
        w.put_i64(self.x);
        w.put_i64(self.y);
        w.put_u32(self.health);
        w.put_u32(self.score);
    }
}

impl Decode for PlayerState {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(PlayerState {
            player: r.get_string()?,
            x: r.get_i64()?,
            y: r.get_i64()?,
            health: r.get_u32()?,
            score: r.get_u32()?,
        })
    }
}

/// Server-to-client world snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerState {
    /// Server tick number.
    pub tick: u64,
    /// All player states.
    pub players: Vec<PlayerState>,
}

impl Encode for ServerState {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.tick);
        w.put_varint(self.players.len() as u64);
        for p in &self.players {
            p.encode(w);
        }
    }
}

impl Decode for ServerState {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let tick = r.get_varint()?;
        let n = r.get_varint()?;
        if n > 1024 {
            return Err(WireError::LengthOverflow {
                declared: n,
                max: 1024,
            });
        }
        let mut players = Vec::with_capacity(n as usize);
        for _ in 0..n {
            players.push(PlayerState::decode(r)?);
        }
        Ok(ServerState { tick, players })
    }
}

/// Game message wrapper: distinguishes updates from snapshots on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GameMessage {
    /// A client update.
    Update(ClientUpdate),
    /// A server snapshot.
    State(ServerState),
}

impl Encode for GameMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            GameMessage::Update(u) => {
                w.put_u8(1);
                u.encode(w);
            }
            GameMessage::State(s) => {
                w.put_u8(2);
                s.encode(w);
            }
        }
    }
}

impl Decode for GameMessage {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        match r.get_u8()? {
            1 => Ok(GameMessage::Update(ClientUpdate::decode(r)?)),
            2 => Ok(GameMessage::State(ServerState::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "GameMessage",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> ClientUpdate {
        ClientUpdate {
            player: "alice".into(),
            tick: 42,
            x: -100,
            y: 250,
            aim: 90_000,
            fired: true,
            ammo: 97,
            health: 100,
        }
    }

    #[test]
    fn client_update_roundtrip_and_size() {
        let u = sample_update();
        let bytes = u.encode_to_vec();
        assert_eq!(ClientUpdate::decode_exact(&bytes).unwrap(), u);
        // Counterstrike-like packet size: 50-60 bytes once wrapped in the
        // guest addressing header; the raw update itself stays small.
        assert!(bytes.len() < 64, "update too large: {} bytes", bytes.len());
    }

    #[test]
    fn server_state_roundtrip() {
        let s = ServerState {
            tick: 7,
            players: vec![
                PlayerState {
                    player: "alice".into(),
                    x: 1,
                    y: 2,
                    health: 100,
                    score: 3,
                },
                PlayerState {
                    player: "bob".into(),
                    x: -5,
                    y: 0,
                    health: 40,
                    score: 9,
                },
            ],
        };
        assert_eq!(ServerState::decode_exact(&s.encode_to_vec()).unwrap(), s);
    }

    #[test]
    fn game_message_roundtrip_and_bad_tag() {
        let m = GameMessage::Update(sample_update());
        assert_eq!(GameMessage::decode_exact(&m.encode_to_vec()).unwrap(), m);
        let m2 = GameMessage::State(ServerState {
            tick: 1,
            players: vec![],
        });
        assert_eq!(GameMessage::decode_exact(&m2.encode_to_vec()).unwrap(), m2);
        assert!(GameMessage::decode_exact(&[9]).is_err());
    }

    #[test]
    fn absurd_player_count_rejected() {
        let mut w = Writer::new();
        w.put_varint(1); // tick
        w.put_varint(1_000_000); // player count
        assert!(ServerState::decode_exact(w.as_slice()).is_err());
    }
}
