//! The game server guest kernel.
//!
//! The server collects client updates, maintains the authoritative world
//! state (positions, health, scores), and broadcasts a snapshot to every
//! player once per broadcast interval.  Like the client, it is a
//! deterministic [`GuestKernel`] and runs inside an AVM; one of the paper's
//! machines "runs the Counterstrike server in addition to serving a player"
//! (§6.9).

use std::collections::BTreeMap;

use avm_vm::packet::{encode_guest_packet, parse_guest_packet};
use avm_vm::{GuestCtx, GuestKernel, GuestStep, VmError};
use avm_wire::{Decode, Encode, Reader, WireResult, Writer};

use crate::config::{ServerConfig, STARTING_HEALTH};
use crate::protocol::{ClientUpdate, GameMessage, PlayerState, ServerState};

/// Health lost when another player lands a shot.
pub const HIT_DAMAGE: u32 = 5;
/// Abstract step cost of processing one server tick.
const SERVER_TICK_COST: u64 = 200;

/// The server guest kernel.
#[derive(Debug, Clone)]
pub struct GameServer {
    cfg: ServerConfig,
    now_us: u64,
    last_broadcast_us: u64,
    tick: u64,
    players: BTreeMap<String, PlayerState>,
    updates_processed: u64,
    broadcasts_sent: u64,
}

impl GameServer {
    /// Creates a server from its image configuration.
    pub fn new(cfg: ServerConfig) -> GameServer {
        let players = cfg
            .players
            .iter()
            .map(|p| {
                (
                    p.clone(),
                    PlayerState {
                        player: p.clone(),
                        x: 0,
                        y: 0,
                        health: STARTING_HEALTH,
                        score: 0,
                    },
                )
            })
            .collect();
        GameServer {
            now_us: 0,
            last_broadcast_us: 0,
            tick: 0,
            players,
            updates_processed: 0,
            broadcasts_sent: 0,
            cfg,
        }
    }

    /// Number of client updates processed.
    pub fn updates_processed(&self) -> u64 {
        self.updates_processed
    }

    /// Number of snapshots broadcast.
    pub fn broadcasts_sent(&self) -> u64 {
        self.broadcasts_sent
    }

    /// Current authoritative state of a player.
    pub fn player(&self, name: &str) -> Option<&PlayerState> {
        self.players.get(name)
    }

    fn apply_update(&mut self, update: ClientUpdate) {
        self.updates_processed += 1;
        let fired = update.fired;
        let shooter = update.player.clone();
        if let Some(p) = self.players.get_mut(&update.player) {
            p.x = update.x;
            p.y = update.y;
        }
        // A fired shot hits the nearest other player (simplified hit model).
        if fired {
            let target = self
                .players
                .values()
                .filter(|p| p.player != shooter)
                .min_by_key(|p| p.x.abs() + p.y.abs())
                .map(|p| p.player.clone());
            if let Some(t) = target {
                if let Some(victim) = self.players.get_mut(&t) {
                    victim.health = victim.health.saturating_sub(HIT_DAMAGE);
                }
                if let Some(s) = self.players.get_mut(&shooter) {
                    s.score += 1;
                }
            }
        }
    }

    fn broadcast(&mut self, ctx: &mut GuestCtx<'_>) {
        self.tick += 1;
        let state = ServerState {
            tick: self.tick,
            players: self.players.values().cloned().collect(),
        };
        let body = GameMessage::State(state).encode_to_vec();
        for player in self.cfg.players.clone() {
            // The server does not message itself if it also hosts a player
            // named like the server node.
            if player == self.cfg.name {
                continue;
            }
            ctx.send_packet(encode_guest_packet(&player, &body));
            self.broadcasts_sent += 1;
        }
    }
}

impl GuestKernel for GameServer {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestStep {
        let Some(now) = ctx.read_clock() else {
            return GuestStep::WaitingClock;
        };
        self.now_us = now;

        let mut did_work = false;
        while let Some(pkt) = ctx.recv_packet() {
            did_work = true;
            let Some((_dest, body)) = parse_guest_packet(&pkt) else {
                continue;
            };
            if let Ok(GameMessage::Update(update)) = GameMessage::decode_exact(body) {
                self.apply_update(update);
            }
        }

        if now.saturating_sub(self.last_broadcast_us) >= self.cfg.broadcast_interval_us {
            self.last_broadcast_us = now;
            self.broadcast(ctx);
            did_work = true;
        }

        if did_work {
            GuestStep::Ran {
                cost: SERVER_TICK_COST,
            }
        } else {
            // Nothing to do until more packets arrive or time advances.
            GuestStep::Idle
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.cfg.encode(&mut w);
        w.put_u64(self.now_us);
        w.put_u64(self.last_broadcast_us);
        w.put_u64(self.tick);
        w.put_varint(self.players.len() as u64);
        for p in self.players.values() {
            p.encode(&mut w);
        }
        w.put_u64(self.updates_processed);
        w.put_u64(self.broadcasts_sent);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), VmError> {
        fn inner(r: &mut Reader<'_>) -> WireResult<GameServer> {
            let cfg = ServerConfig::decode(r)?;
            let mut s = GameServer::new(cfg);
            s.now_us = r.get_u64()?;
            s.last_broadcast_us = r.get_u64()?;
            s.tick = r.get_u64()?;
            let n = r.get_varint()?;
            s.players.clear();
            for _ in 0..n {
                let p = PlayerState::decode(r)?;
                s.players.insert(p.player.clone(), p);
            }
            s.updates_processed = r.get_u64()?;
            s.broadcasts_sent = r.get_u64()?;
            Ok(s)
        }
        let mut r = Reader::new(bytes);
        let restored = inner(&mut r).map_err(|_| VmError::CorruptState("game server state"))?;
        if !r.is_empty() {
            return Err(VmError::CorruptState("trailing bytes in game server state"));
        }
        *self = restored;
        Ok(())
    }

    fn name(&self) -> &str {
        "game-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_vm::devices::DeviceState;
    use avm_vm::mem::GuestMemory;
    use avm_vm::VmExit;

    fn step_with_time(
        server: &mut GameServer,
        dev: &mut DeviceState,
        mem: &mut GuestMemory,
        time: u64,
    ) -> Vec<Vec<u8>> {
        let mut packets = Vec::new();
        loop {
            let mut ctx = GuestCtx::new(mem, dev);
            let step = server.step(&mut ctx);
            for e in ctx.into_outputs() {
                if let VmExit::NetTx(p) = e {
                    packets.push(p);
                }
            }
            match step {
                GuestStep::WaitingClock => dev.clock.provide(time).unwrap(),
                _ => break,
            }
        }
        packets
    }

    fn update(player: &str, tick: u64, fired: bool) -> Vec<u8> {
        let u = ClientUpdate {
            player: player.to_string(),
            tick,
            x: 10,
            y: 10,
            aim: 0,
            fired,
            ammo: 99,
            health: 100,
        };
        encode_guest_packet("server", &GameMessage::Update(u).encode_to_vec())
    }

    fn server_with_players() -> GameServer {
        GameServer::new(ServerConfig::new(
            "server",
            &["alice".to_string(), "bob".to_string()],
        ))
    }

    #[test]
    fn broadcasts_go_to_every_player() {
        let mut server = server_with_players();
        let mut dev = DeviceState::new(b"");
        let mut mem = GuestMemory::new(4096);
        let packets = step_with_time(&mut server, &mut dev, &mut mem, 40_000);
        assert_eq!(packets.len(), 2);
        let (dest0, _) = parse_guest_packet(&packets[0]).unwrap();
        let (dest1, _) = parse_guest_packet(&packets[1]).unwrap();
        let mut dests = vec![dest0, dest1];
        dests.sort();
        assert_eq!(dests, vec!["alice".to_string(), "bob".to_string()]);
        assert_eq!(server.broadcasts_sent(), 2);
    }

    #[test]
    fn updates_move_players_and_shots_damage_opponents() {
        let mut server = server_with_players();
        let mut dev = DeviceState::new(b"");
        let mut mem = GuestMemory::new(4096);
        dev.nic.inject(update("alice", 1, true));
        step_with_time(&mut server, &mut dev, &mut mem, 40_000);
        assert_eq!(server.updates_processed(), 1);
        assert_eq!(server.player("alice").unwrap().x, 10);
        assert_eq!(server.player("alice").unwrap().score, 1);
        assert_eq!(
            server.player("bob").unwrap().health,
            STARTING_HEALTH - HIT_DAMAGE
        );
    }

    #[test]
    fn idle_when_nothing_to_do() {
        let mut server = server_with_players();
        let mut dev = DeviceState::new(b"");
        let mut mem = GuestMemory::new(4096);
        // First call broadcasts (interval elapsed from 0) ...
        step_with_time(&mut server, &mut dev, &mut mem, 40_000);
        // ... second call at the same time has nothing to do.
        dev.clock.guest_read();
        dev.clock.provide(40_001).unwrap();
        let mut ctx = GuestCtx::new(&mut mem, &mut dev);
        assert_eq!(server.step(&mut ctx), GuestStep::Idle);
    }

    #[test]
    fn state_save_restore_roundtrip() {
        let mut server = server_with_players();
        let mut dev = DeviceState::new(b"");
        let mut mem = GuestMemory::new(4096);
        dev.nic.inject(update("bob", 1, false));
        step_with_time(&mut server, &mut dev, &mut mem, 40_000);
        let state = server.save_state();
        let mut restored = GameServer::new(ServerConfig::new("x", &[]));
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.save_state(), state);
        assert_eq!(restored.player("bob").unwrap().x, 10);
        assert!(restored.restore_state(&state[..3]).is_err());
        assert_eq!(restored.name(), "game-server");
    }
}
