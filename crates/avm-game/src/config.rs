//! Game configuration carried inside the VM image.

use avm_wire::{Decode, Encode, Reader, WireResult, Writer};

/// Default client tick interval (µs): ~26 updates per second, matching the
/// Counterstrike client packet rate reported in §6.7.
pub const DEFAULT_TICK_INTERVAL_US: u64 = 38_000;
/// Starting ammunition.
pub const STARTING_AMMO: u32 = 100;
/// Starting health.
pub const STARTING_HEALTH: u32 = 100;
/// Abstract machine steps one rendered frame costs.
pub const FRAME_RENDER_COST: u64 = 400;

/// Configuration of a game client guest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// This player's name.
    pub player: String,
    /// Name of the server node.
    pub server: String,
    /// Microseconds between client update ticks.
    pub tick_interval_us: u64,
    /// Frame-rate cap in frames per second (`None` = uncapped, as in the
    /// paper's measurements; `Some(72)` reproduces the §6.5 busy-wait).
    pub frame_cap_fps: Option<u32>,
    /// Cheat installed in this image, if any — an index into
    /// [`crate::cheats::cheat_catalog`].  The *official* image has `None`.
    pub cheat: Option<u32>,
}

impl ClientConfig {
    /// Creates the official (cheat-free, uncapped) configuration.
    pub fn new(player: &str, server: &str) -> ClientConfig {
        ClientConfig {
            player: player.to_string(),
            server: server.to_string(),
            tick_interval_us: DEFAULT_TICK_INTERVAL_US,
            frame_cap_fps: None,
            cheat: None,
        }
    }

    /// Returns the configuration with a cheat installed.
    pub fn with_cheat(mut self, cheat_id: u32) -> ClientConfig {
        self.cheat = Some(cheat_id);
        self
    }

    /// Returns the configuration with a frame-rate cap.
    pub fn with_frame_cap(mut self, fps: u32) -> ClientConfig {
        self.frame_cap_fps = Some(fps);
        self
    }
}

impl Encode for ClientConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.player);
        w.put_str(&self.server);
        w.put_varint(self.tick_interval_us);
        match self.frame_cap_fps {
            None => w.put_u8(0),
            Some(fps) => {
                w.put_u8(1);
                w.put_u32(fps);
            }
        }
        match self.cheat {
            None => w.put_u8(0),
            Some(id) => {
                w.put_u8(1);
                w.put_u32(id);
            }
        }
    }
}

impl Decode for ClientConfig {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        Ok(ClientConfig {
            player: r.get_string()?,
            server: r.get_string()?,
            tick_interval_us: r.get_varint()?,
            frame_cap_fps: if r.get_u8()? == 1 {
                Some(r.get_u32()?)
            } else {
                None
            },
            cheat: if r.get_u8()? == 1 {
                Some(r.get_u32()?)
            } else {
                None
            },
        })
    }
}

/// Configuration of the game server guest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// The server's node name.
    pub name: String,
    /// Names of the expected players.
    pub players: Vec<String>,
    /// Microseconds between server broadcast ticks.
    pub broadcast_interval_us: u64,
}

impl ServerConfig {
    /// Creates a server configuration for the given players.
    pub fn new(name: &str, players: &[String]) -> ServerConfig {
        ServerConfig {
            name: name.to_string(),
            players: players.to_vec(),
            broadcast_interval_us: DEFAULT_TICK_INTERVAL_US,
        }
    }
}

impl Encode for ServerConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_varint(self.players.len() as u64);
        for p in &self.players {
            w.put_str(p);
        }
        w.put_varint(self.broadcast_interval_us);
    }
}

impl Decode for ServerConfig {
    fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let name = r.get_string()?;
        let n = r.get_varint()?;
        let mut players = Vec::with_capacity((n as usize).min(64));
        for _ in 0..n {
            players.push(r.get_string()?);
        }
        Ok(ServerConfig {
            name,
            players,
            broadcast_interval_us: r.get_varint()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_config_roundtrip() {
        let cfg = ClientConfig::new("alice", "server");
        assert_eq!(
            ClientConfig::decode_exact(&cfg.encode_to_vec()).unwrap(),
            cfg
        );
        let capped = ClientConfig::new("bob", "server")
            .with_frame_cap(72)
            .with_cheat(5);
        assert_eq!(
            ClientConfig::decode_exact(&capped.encode_to_vec()).unwrap(),
            capped
        );
        assert_eq!(capped.frame_cap_fps, Some(72));
        assert_eq!(capped.cheat, Some(5));
    }

    #[test]
    fn server_config_roundtrip() {
        let cfg = ServerConfig::new("server", &["a".to_string(), "b".to_string()]);
        assert_eq!(
            ServerConfig::decode_exact(&cfg.encode_to_vec()).unwrap(),
            cfg
        );
    }
}
