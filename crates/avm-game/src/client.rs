//! The game client guest kernel.
//!
//! The client renders frames as fast as it can (the paper removes the frame
//! cap so the achieved frame rate can serve as a performance metric, §6.2),
//! reads the virtual clock once per frame, applies local input events
//! (keyboard/mouse), exchanges updates with the server at ~26 ticks/s, and —
//! if a cheat is installed in its image — applies the cheat's behavioural
//! effect each tick.

use std::collections::VecDeque;

use avm_vm::packet::{encode_guest_packet, parse_guest_packet};
use avm_vm::{GuestCtx, GuestKernel, GuestStep, VmError};
use avm_wire::{Decode, Encode, Reader, WireResult, Writer};

use crate::cheats::{cheat_by_id, CheatEffect, ResourceField};
use crate::config::{ClientConfig, FRAME_RENDER_COST, STARTING_AMMO, STARTING_HEALTH};
use crate::protocol::{ClientUpdate, GameMessage, ServerState};

/// Movement speed (world units per tick) the game rules allow.
pub const LEGAL_SPEED: i64 = 10;
/// Weapon cooldown in ticks between shots the game rules allow.
pub const FIRE_COOLDOWN_TICKS: u64 = 3;
/// Input code: horizontal movement direction.
pub const INPUT_MOVE_X: u32 = 0;
/// Input code: vertical movement direction.
pub const INPUT_MOVE_Y: u32 = 1;
/// Input code: aim delta (millidegrees).
pub const INPUT_AIM: u32 = 2;
/// Input code: fire trigger.
pub const INPUT_FIRE: u32 = 3;

/// The client guest kernel.
#[derive(Debug, Clone)]
pub struct GameClient {
    cfg: ClientConfig,
    cheat: Option<CheatEffect>,
    // Time.
    now_us: u64,
    last_tick_us: u64,
    next_frame_us: u64,
    // Player state.
    tick: u64,
    x: i64,
    y: i64,
    aim: i64,
    ammo: u32,
    health: u32,
    move_dx: i64,
    move_dy: i64,
    want_fire: bool,
    fire_cooldown: u64,
    // Statistics.
    frames_rendered: u64,
    shots_fired: u64,
    updates_sent: u64,
    // Last known world state.
    world: ServerState,
    // Updates held back by a timing-manipulation cheat.
    delayed: VecDeque<Vec<u8>>,
}

impl GameClient {
    /// Creates a client from its image configuration.
    pub fn new(cfg: ClientConfig) -> GameClient {
        let cheat = cfg.cheat.and_then(cheat_by_id).map(|c| c.effect);
        GameClient {
            cheat,
            now_us: 0,
            last_tick_us: 0,
            next_frame_us: 0,
            tick: 0,
            x: 0,
            y: 0,
            aim: 0,
            ammo: STARTING_AMMO,
            health: STARTING_HEALTH,
            move_dx: 0,
            move_dy: 0,
            want_fire: false,
            fire_cooldown: 0,
            frames_rendered: 0,
            shots_fired: 0,
            updates_sent: 0,
            world: ServerState {
                tick: 0,
                players: Vec::new(),
            },
            delayed: VecDeque::new(),
            cfg,
        }
    }

    /// Frames rendered so far (the §6.10 performance metric).
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// Shots fired so far.
    pub fn shots_fired(&self) -> u64 {
        self.shots_fired
    }

    /// Updates sent to the server so far.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    fn drain_inputs(&mut self, ctx: &mut GuestCtx<'_>) {
        while let Some(ev) = ctx.poll_input() {
            match ev.code {
                INPUT_MOVE_X => self.move_dx = ev.value.signum(),
                INPUT_MOVE_Y => self.move_dy = ev.value.signum(),
                INPUT_AIM => self.aim = (self.aim + ev.value).rem_euclid(360_000),
                INPUT_FIRE => self.want_fire = ev.value != 0,
                _ => {}
            }
        }
    }

    fn drain_packets(&mut self, ctx: &mut GuestCtx<'_>) {
        while let Some(pkt) = ctx.recv_packet() {
            let Some((_dest, body)) = parse_guest_packet(&pkt) else {
                continue;
            };
            if let Ok(GameMessage::State(state)) = GameMessage::decode_exact(body) {
                if let Some(me) = state.players.iter().find(|p| p.player == self.cfg.player) {
                    // The server is authoritative for health.
                    self.health = me.health;
                }
                self.world = state;
            }
        }
    }

    /// One game tick: movement, firing, cheat effects, and the update packet.
    fn game_tick(&mut self, ctx: &mut GuestCtx<'_>) -> u64 {
        self.tick += 1;
        let mut extra_cost = 0u64;

        // Movement.
        let mut speed = LEGAL_SPEED;
        if let Some(CheatEffect::SpeedMultiplier { factor }) = self.cheat {
            speed *= factor;
            extra_cost += 50;
        }
        self.x += self.move_dx * speed;
        self.y += self.move_dy * speed;
        if let Some(CheatEffect::Teleport { period }) = self.cheat {
            if period > 0 && self.tick.is_multiple_of(period) {
                self.x = 0;
                self.y = 0;
            }
            extra_cost += 50;
        }

        // Aiming.
        match self.cheat {
            Some(CheatEffect::AimAssist { extra_work }) => {
                // Snap to the first opponent in the last world snapshot.
                if let Some(target) = self
                    .world
                    .players
                    .iter()
                    .find(|p| p.player != self.cfg.player)
                {
                    let dx = target.x - self.x;
                    let dy = target.y - self.y;
                    self.aim = (dx * 7 + dy * 13).rem_euclid(360_000);
                }
                extra_cost += extra_work;
            }
            Some(CheatEffect::InfoReveal { extra_work })
            | Some(CheatEffect::Cosmetic { extra_work }) => {
                extra_cost += extra_work;
            }
            _ => {}
        }

        // Firing.
        if self.fire_cooldown > 0 {
            self.fire_cooldown -= 1;
        }
        let rapid = matches!(self.cheat, Some(CheatEffect::RapidFire));
        let may_fire = self.want_fire && self.ammo > 0 && (self.fire_cooldown == 0 || rapid);
        let mut fired = false;
        if may_fire {
            fired = true;
            self.shots_fired += 1;
            self.ammo -= 1;
            if !rapid {
                self.fire_cooldown = FIRE_COOLDOWN_TICKS;
            } else {
                extra_cost += 30;
            }
        }

        // Resource-pinning cheats overwrite the result of the game logic —
        // the in-memory modification the paper's unlimited-ammunition cheat
        // performs.
        if let Some(CheatEffect::ResourcePin { field, value }) = self.cheat {
            match field {
                ResourceField::Ammo => self.ammo = value,
                ResourceField::Health => self.health = value,
            }
            extra_cost += 40;
        }

        // Build and send (or delay) the update packet.
        let update = ClientUpdate {
            player: self.cfg.player.clone(),
            tick: self.tick,
            x: self.x,
            y: self.y,
            aim: self.aim,
            fired,
            ammo: self.ammo,
            health: self.health,
        };
        let body = GameMessage::Update(update).encode_to_vec();
        let packet = encode_guest_packet(&self.cfg.server, &body);
        if let Some(CheatEffect::TimingManipulation { delay_ticks }) = self.cheat {
            self.delayed.push_back(packet);
            extra_cost += 20;
            if self.delayed.len() as u64 > delay_ticks {
                if let Some(old) = self.delayed.pop_front() {
                    ctx.send_packet(old);
                    self.updates_sent += 1;
                }
            }
        } else {
            ctx.send_packet(packet);
            self.updates_sent += 1;
        }
        extra_cost
    }
}

impl GuestKernel for GameClient {
    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> GuestStep {
        // Every frame starts by reading the clock (the nondeterministic input
        // whose volume dominates the log, §6.4/§6.5).
        let Some(now) = ctx.read_clock() else {
            return GuestStep::WaitingClock;
        };
        self.now_us = now;
        self.drain_inputs(ctx);
        self.drain_packets(ctx);

        // Frame-rate cap: busy-wait until the next frame is due, reading the
        // clock again on every iteration (each read is another log entry).
        if let Some(fps) = self.cfg.frame_cap_fps {
            if now < self.next_frame_us {
                return GuestStep::Ran { cost: 3 };
            }
            self.next_frame_us = now + 1_000_000 / fps.max(1) as u64;
        }

        // Render one frame.
        self.frames_rendered += 1;
        let mut cost = FRAME_RENDER_COST;

        // Run a game tick when the tick interval has elapsed.
        if now.saturating_sub(self.last_tick_us) >= self.cfg.tick_interval_us {
            self.last_tick_us = now;
            cost += self.game_tick(ctx);
        }
        GuestStep::Ran { cost }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.cfg.encode(&mut w);
        w.put_u64(self.now_us);
        w.put_u64(self.last_tick_us);
        w.put_u64(self.next_frame_us);
        w.put_u64(self.tick);
        w.put_i64(self.x);
        w.put_i64(self.y);
        w.put_i64(self.aim);
        w.put_u32(self.ammo);
        w.put_u32(self.health);
        w.put_i64(self.move_dx);
        w.put_i64(self.move_dy);
        w.put_bool(self.want_fire);
        w.put_u64(self.fire_cooldown);
        w.put_u64(self.frames_rendered);
        w.put_u64(self.shots_fired);
        w.put_u64(self.updates_sent);
        self.world.encode(&mut w);
        w.put_varint(self.delayed.len() as u64);
        for d in &self.delayed {
            w.put_bytes(d);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), VmError> {
        fn inner(r: &mut Reader<'_>) -> WireResult<GameClient> {
            let cfg = ClientConfig::decode(r)?;
            let mut c = GameClient::new(cfg);
            c.now_us = r.get_u64()?;
            c.last_tick_us = r.get_u64()?;
            c.next_frame_us = r.get_u64()?;
            c.tick = r.get_u64()?;
            c.x = r.get_i64()?;
            c.y = r.get_i64()?;
            c.aim = r.get_i64()?;
            c.ammo = r.get_u32()?;
            c.health = r.get_u32()?;
            c.move_dx = r.get_i64()?;
            c.move_dy = r.get_i64()?;
            c.want_fire = r.get_bool()?;
            c.fire_cooldown = r.get_u64()?;
            c.frames_rendered = r.get_u64()?;
            c.shots_fired = r.get_u64()?;
            c.updates_sent = r.get_u64()?;
            c.world = ServerState::decode(r)?;
            let n = r.get_varint()?;
            for _ in 0..n {
                c.delayed.push_back(r.get_bytes()?.to_vec());
            }
            Ok(c)
        }
        let mut r = Reader::new(bytes);
        let restored = inner(&mut r).map_err(|_| VmError::CorruptState("game client state"))?;
        if !r.is_empty() {
            return Err(VmError::CorruptState("trailing bytes in game client state"));
        }
        *self = restored;
        Ok(())
    }

    fn name(&self) -> &str {
        "game-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avm_vm::devices::{DeviceState, InputEvent};
    use avm_vm::mem::GuestMemory;

    fn drive(
        client: &mut GameClient,
        dev: &mut DeviceState,
        mem: &mut GuestMemory,
        time: u64,
    ) -> Vec<Vec<u8>> {
        // Run one kernel step with the clock pre-armed to `time`.
        let mut outputs = Vec::new();
        loop {
            let mut ctx = GuestCtx::new(mem, dev);
            match client.step(&mut ctx) {
                GuestStep::WaitingClock => {
                    outputs.extend(collect_packets(ctx.into_outputs()));
                    dev.clock.provide(time).unwrap();
                }
                _ => {
                    outputs.extend(collect_packets(ctx.into_outputs()));
                    break;
                }
            }
        }
        outputs
    }

    fn collect_packets(exits: Vec<avm_vm::VmExit>) -> Vec<Vec<u8>> {
        exits
            .into_iter()
            .filter_map(|e| match e {
                avm_vm::VmExit::NetTx(p) => Some(p),
                _ => None,
            })
            .collect()
    }

    fn new_env() -> (DeviceState, GuestMemory) {
        (DeviceState::new(b""), GuestMemory::new(4096))
    }

    #[test]
    fn honest_client_sends_updates_at_tick_rate() {
        let (mut dev, mut mem) = new_env();
        let mut client = GameClient::new(ClientConfig::new("alice", "server"));
        let mut packets = Vec::new();
        for i in 1..=10u64 {
            packets.extend(drive(&mut client, &mut dev, &mut mem, i * 40_000));
        }
        // One update per 40 ms step (interval is 38 ms).
        assert_eq!(packets.len(), 10);
        assert_eq!(client.updates_sent(), 10);
        assert_eq!(client.frames_rendered(), 10);
        let (dest, body) = parse_guest_packet(&packets[0]).unwrap();
        assert_eq!(dest, "server");
        let GameMessage::Update(u) = GameMessage::decode_exact(body).unwrap() else {
            panic!()
        };
        assert_eq!(u.player, "alice");
        assert_eq!(u.ammo, STARTING_AMMO);
    }

    #[test]
    fn input_events_steer_the_player_and_fire() {
        let (mut dev, mut mem) = new_env();
        let mut client = GameClient::new(ClientConfig::new("alice", "server"));
        dev.input.inject(InputEvent {
            device: 0,
            code: INPUT_MOVE_X,
            value: 1,
        });
        dev.input.inject(InputEvent {
            device: 0,
            code: INPUT_FIRE,
            value: 1,
        });
        let mut fired_count = 0;
        for i in 1..=8u64 {
            let pkts = drive(&mut client, &mut dev, &mut mem, i * 40_000);
            for p in pkts {
                let (_, body) = parse_guest_packet(&p).unwrap();
                if let Ok(GameMessage::Update(u)) = GameMessage::decode_exact(body) {
                    if u.fired {
                        fired_count += 1;
                    }
                    assert_eq!(u.x, i as i64 * LEGAL_SPEED);
                }
            }
        }
        // Cooldown limits the fire rate: 8 ticks with cooldown 3 → 2-3 shots.
        assert!((2..=3).contains(&fired_count), "fired {fired_count}");
        assert_eq!(
            client.shots_fired() as u32,
            STARTING_AMMO - clientammo(&client)
        );
        fn clientammo(c: &GameClient) -> u32 {
            c.ammo
        }
    }

    #[test]
    fn unlimited_ammo_cheat_reports_impossible_ammo() {
        let (mut dev, mut mem) = new_env();
        let cheat_id = crate::cheats::cheat_by_name("unlimited-ammo").unwrap().id;
        let mut client =
            GameClient::new(ClientConfig::new("cheater", "server").with_cheat(cheat_id));
        dev.input.inject(InputEvent {
            device: 0,
            code: INPUT_FIRE,
            value: 1,
        });
        let mut last_ammo = None;
        let mut fired_any = false;
        for i in 1..=20u64 {
            for p in drive(&mut client, &mut dev, &mut mem, i * 40_000) {
                let (_, body) = parse_guest_packet(&p).unwrap();
                if let Ok(GameMessage::Update(u)) = GameMessage::decode_exact(body) {
                    fired_any |= u.fired;
                    last_ammo = Some(u.ammo);
                }
            }
        }
        assert!(fired_any);
        // Despite firing, the reported ammunition never drops.
        assert_eq!(last_ammo, Some(STARTING_AMMO));
        assert!(client.shots_fired() > 0);
    }

    #[test]
    fn speed_and_rapid_fire_cheats_change_behaviour() {
        let (mut dev, mut mem) = new_env();
        let speed_id = crate::cheats::cheat_by_name("speedhack").unwrap().id;
        let mut cheater = GameClient::new(ClientConfig::new("c", "server").with_cheat(speed_id));
        dev.input.inject(InputEvent {
            device: 0,
            code: INPUT_MOVE_X,
            value: 1,
        });
        drive(&mut cheater, &mut dev, &mut mem, 40_000);
        assert_eq!(cheater.x, 5 * LEGAL_SPEED);

        let (mut dev2, mut mem2) = new_env();
        let rapid_id = crate::cheats::cheat_by_name("rapid-fire").unwrap().id;
        let mut rapid = GameClient::new(ClientConfig::new("r", "server").with_cheat(rapid_id));
        dev2.input.inject(InputEvent {
            device: 0,
            code: INPUT_FIRE,
            value: 1,
        });
        for i in 1..=6u64 {
            drive(&mut rapid, &mut dev2, &mut mem2, i * 40_000);
        }
        // Rapid fire ignores the cooldown: one shot per tick.
        assert_eq!(rapid.shots_fired(), 6);
    }

    #[test]
    fn frame_cap_busy_waits_between_frames() {
        let (mut dev, mut mem) = new_env();
        let mut client = GameClient::new(ClientConfig::new("alice", "server").with_frame_cap(72));
        // First step renders a frame and schedules the next one ~13.9 ms later.
        drive(&mut client, &mut dev, &mut mem, 1_000);
        assert_eq!(client.frames_rendered(), 1);
        // Time barely advances: the client busy-waits instead of rendering.
        for _ in 0..5 {
            drive(&mut client, &mut dev, &mut mem, 1_002);
        }
        assert_eq!(client.frames_rendered(), 1);
        assert!(
            dev.clock.reads_served >= 6,
            "busy-wait must keep reading the clock"
        );
        // Once the frame deadline passes, rendering resumes.
        drive(&mut client, &mut dev, &mut mem, 20_000);
        assert_eq!(client.frames_rendered(), 2);
    }

    #[test]
    fn server_state_updates_health_and_world() {
        let (mut dev, mut mem) = new_env();
        let mut client = GameClient::new(ClientConfig::new("alice", "server"));
        let state = ServerState {
            tick: 5,
            players: vec![crate::protocol::PlayerState {
                player: "alice".into(),
                x: 0,
                y: 0,
                health: 37,
                score: 2,
            }],
        };
        let body = GameMessage::State(state).encode_to_vec();
        dev.nic.inject(encode_guest_packet("alice", &body));
        drive(&mut client, &mut dev, &mut mem, 40_000);
        assert_eq!(client.health, 37);
        assert_eq!(client.world.tick, 5);
    }

    #[test]
    fn state_save_restore_roundtrip() {
        let (mut dev, mut mem) = new_env();
        let mut client = GameClient::new(ClientConfig::new("alice", "server"));
        dev.input.inject(InputEvent {
            device: 0,
            code: INPUT_MOVE_Y,
            value: -1,
        });
        for i in 1..=5u64 {
            drive(&mut client, &mut dev, &mut mem, i * 40_000);
        }
        let state = client.save_state();
        let mut restored = GameClient::new(ClientConfig::new("x", "y"));
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.save_state(), state);
        assert_eq!(restored.y, client.y);
        assert!(restored.restore_state(&state[..state.len() - 1]).is_err());
        assert!(restored.restore_state(&[]).is_err());
        assert_eq!(restored.name(), "game-client");
    }
}
